//! Lockstep differential test: the functional emulator (the model
//! fast-forward trusts) against the detailed pipeline, on every paper
//! kernel.
//!
//! Two layers of checking:
//!
//! 1. **Every commit** — the run executes with `cosim_check` enabled,
//!    so the pipeline itself asserts, instruction by instruction, that
//!    the committed PC, the written register value, the control-flow
//!    target and the touched memory word match a golden emulator
//!    stepping alongside. Any divergence panics with the offending PC.
//! 2. **End of run** — an *independent* emulator replays the same
//!    number of instructions from the same initial image, and the full
//!    architectural state is compared: all logical registers and every
//!    memory page either model touched (absent pages read as zero, so
//!    a page that exists but holds only zeros is equal to no page).
//!
//! If this passes, checkpointing architectural state out of the
//! emulator and resuming the detailed pipeline from it (what
//! `cfir-sample` does between windows) cannot drift.

use cfir_emu::{Emulator, MemImage};
use cfir_sim::{Mode, Pipeline, RunExit, SimConfig};
use cfir_workloads::{by_name, WorkloadSpec, NAMES};

const BUDGET: u64 = 6_000;

/// Compare two memory images word-for-word over the union of their
/// touched pages.
fn assert_same_memory(name: &str, sim: &MemImage, emu: &MemImage) {
    let a = sim.export_pages();
    let b = emu.export_pages();
    let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    const ZERO: [u64; MemImage::PAGE_WORDS] = [0; MemImage::PAGE_WORDS];
    for id in ids {
        let pa = a.iter().find(|(i, _)| *i == id).map(|(_, p)| &**p);
        let pb = b.iter().find(|(i, _)| *i == id).map(|(_, p)| &**p);
        let (pa, pb) = (pa.unwrap_or(&ZERO), pb.unwrap_or(&ZERO));
        if pa != pb {
            let word = pa.iter().zip(pb.iter()).position(|(x, y)| x != y).unwrap();
            panic!(
                "{name}: memory diverged at page {id:#x} word {word}: \
                 sim {:#x} vs emu {:#x}",
                pa[word], pb[word]
            );
        }
    }
}

fn lockstep(name: &str, mode: Mode) {
    let w = by_name(name, WorkloadSpec::default()).expect("known kernel");

    // Detailed pipeline with the per-commit golden-model check armed:
    // each committed instruction is verified against an internal
    // emulator (pc, register write, store address + stored word,
    // control target) as it retires.
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_max_insts(BUDGET);
    cfg.cosim_check = true;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    let halted = matches!(p.run(), RunExit::Halted);
    assert!(p.stats.committed > 0, "{name}: nothing committed");

    // Independent replay on a fresh emulator, then full-state diff.
    let mut emu = Emulator::new(w.mem.clone());
    emu.run(&w.prog, p.stats.committed);
    assert_eq!(
        emu.retired, p.stats.committed,
        "{name}: emulator stopped early"
    );
    assert_eq!(
        emu.halted, halted,
        "{name}: halt disagreement after {} instructions",
        p.stats.committed
    );
    for r in 0..cfir_isa::NUM_LOGICAL_REGS as u8 {
        assert_eq!(
            p.arch_reg(r),
            emu.reg(r),
            "{name}: r{r} diverged after {} instructions",
            p.stats.committed
        );
    }
    assert_same_memory(name, p.memory(), &emu.mem);
}

#[test]
fn all_kernels_lockstep_in_ci_mode() {
    for name in NAMES {
        lockstep(name, Mode::Ci);
    }
}

#[test]
fn all_kernels_lockstep_in_scalar_mode() {
    for name in NAMES {
        lockstep(name, Mode::Scalar);
    }
}
