//! Functional fast-forward with microarchitectural warming.
//!
//! The emulator retires instructions at architectural speed; alongside
//! it this module keeps the two pieces of *long-lived* detailed state
//! warm, mirroring exactly what the pipeline's committed path does:
//!
//! * **Branch predictor** — for every conditional branch, predict with
//!   the current speculative history, repair the history on a wrong
//!   prediction (the front end would), and train the counter with the
//!   history the prediction was made with. This is the same sequence
//!   `cfir-sim` performs at fetch + commit, so a fast-forwarded gshare
//!   is bit-compatible with one carried through detailed simulation of
//!   the same instruction stream (modulo wrong-path pollution, which
//!   the detailed warmup portion of each window re-creates).
//! * **Cache hierarchy** — one I-side access per retired instruction
//!   and one D-side access per load/store, at the same aligned
//!   addresses the detailed core would commit.
//!
//! Short-lived state (ROB, LSQ, rename, the indirect-jump BTB) is not
//! modelled; it re-forms within a few hundred detailed instructions
//! and is covered by the per-window warmup.

use crate::checkpoint::Checkpoint;
use cfir_emu::{Emulator, MemImage, Retired};
use cfir_isa::Program;
use cfir_mem::Hierarchy;
use cfir_predict::Gshare;
use cfir_sim::SimConfig;

/// The committed global-history mask the pipeline maintains (16 bits).
const GHIST_MASK: u64 = (1 << 16) - 1;

/// A functional emulator bundled with warming predictor + cache state.
#[derive(Debug, Clone)]
pub struct WarmingEmulator<'a> {
    prog: &'a Program,
    /// The architectural machine.
    pub emu: Emulator,
    /// Warming branch predictor (same geometry as the detailed run).
    pub gshare: Gshare,
    /// Warming cache hierarchy (same geometry as the detailed run).
    pub hier: Hierarchy,
    /// Committed 16-bit global history, as the pipeline's commit stage
    /// maintains it.
    ghist: u64,
}

impl<'a> WarmingEmulator<'a> {
    /// Build a warming emulator over `prog` with initial memory `mem`,
    /// sized to match the detailed configuration `cfg` (predictor
    /// entries, cache geometry).
    pub fn new(prog: &'a Program, mem: MemImage, cfg: &SimConfig) -> Self {
        WarmingEmulator {
            prog,
            emu: Emulator::new(mem),
            gshare: Gshare::new(cfg.gshare_entries),
            hier: Hierarchy::new(cfg.hierarchy.clone()),
            ghist: 0,
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.emu.retired
    }

    /// Whether the program has halted (or run off the end).
    pub fn done(&self) -> bool {
        self.emu.halted || self.prog.fetch(self.emu.pc).is_none()
    }

    /// Retire one instruction, warming the predictor and caches.
    /// Returns `None` once the program is done.
    pub fn step(&mut self) -> Option<Retired> {
        let r = self.emu.step(self.prog)?;
        self.hier.access_inst(Program::byte_pc(r.pc));
        if r.inst.is_cond_branch() {
            let byte = Program::byte_pc(r.pc);
            let h = self.gshare.history();
            let p = self.gshare.predict_and_update(byte);
            if p != r.taken {
                self.gshare.restore_history(h);
                self.gshare.push(r.taken);
            }
            self.gshare.train(byte, h, r.taken);
            self.ghist = ((self.ghist << 1) | r.taken as u64) & GHIST_MASK;
        }
        if let Some(addr) = r.addr {
            self.hier.access_data(addr, r.inst.is_store());
        }
        Some(r)
    }

    /// Fast-forward up to `n` instructions; returns how many actually
    /// retired (less than `n` only when the program finished).
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            if self.step().is_none() {
                break;
            }
            done += 1;
        }
        done
    }

    /// Capture the current architectural + warm state as a checkpoint.
    pub fn checkpoint(&self) -> Checkpoint {
        let (table, history) = self.gshare.export_warm();
        Checkpoint {
            regs: self.emu.regs,
            pc: self.emu.pc,
            retired: self.emu.retired,
            ghist: self.ghist,
            gshare_table: table,
            gshare_history: history,
            hier: self.hier.export_warm(),
            pages: self
                .emu
                .mem
                .export_pages()
                .into_iter()
                .map(|(id, words)| (id, *words))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_workloads::{by_name, WorkloadSpec};

    #[test]
    fn fast_forward_matches_plain_emulator() {
        let w = by_name("gzip", WorkloadSpec::default()).unwrap();
        let cfg = SimConfig::paper_baseline();
        let mut warm = WarmingEmulator::new(&w.prog, w.mem.clone(), &cfg);
        warm.fast_forward(10_000);

        let mut plain = Emulator::new(w.mem.clone());
        plain.run(&w.prog, 10_000);
        assert_eq!(warm.emu.retired, plain.retired);
        assert_eq!(warm.emu.pc, plain.pc);
        assert_eq!(
            warm.emu.regs, plain.regs,
            "warming must not perturb arch state"
        );
    }

    #[test]
    fn warming_trains_the_predictor() {
        let w = by_name("gzip", WorkloadSpec::default()).unwrap();
        let cfg = SimConfig::paper_baseline();
        let mut warm = WarmingEmulator::new(&w.prog, w.mem.clone(), &cfg);
        warm.fast_forward(20_000);
        assert!(warm.gshare.lookups > 0);
        assert!(warm.hier.l1d.accesses > 0);
        assert!(warm.hier.l1i.accesses > 0);
        // gzip's biased branches must be mostly learned by now.
        let trained_mispredict_rate = warm.gshare.mispredicts as f64 / warm.gshare.lookups as f64;
        assert!(
            trained_mispredict_rate < 0.5,
            "predictor not learning: {trained_mispredict_rate}"
        );
    }

    #[test]
    fn stops_at_halt() {
        let w = by_name(
            "gzip",
            WorkloadSpec {
                iters: 10,
                ..WorkloadSpec::default()
            },
        )
        .unwrap();
        let cfg = SimConfig::paper_baseline();
        let mut warm = WarmingEmulator::new(&w.prog, w.mem.clone(), &cfg);
        let n = warm.fast_forward(1 << 30);
        assert!(warm.done());
        assert_eq!(n, warm.retired());
    }
}
