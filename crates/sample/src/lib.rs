//! # cfir-sample
//!
//! Checkpointed statistical sampling for the CFIR evaluation, in the
//! SMARTS tradition: instead of simulating every instruction in the
//! cycle-accurate pipeline, interleave cheap *functional* execution
//! (the `cfir-emu` golden model, ~30× faster) with short *detailed*
//! measurement windows, and report per-metric means with 95%
//! confidence intervals.
//!
//! Three ingredients make the estimates trustworthy:
//!
//! 1. **Functional warming** ([`warm::WarmingEmulator`]): while
//!    fast-forwarding, every retired instruction still trains the
//!    gshare branch predictor and touches the cache hierarchy, so the
//!    long-lived microarchitectural state a window depends on is warm
//!    when the detailed pipeline takes over. Only the short-lived
//!    state (ROB, LSQ, indirect-jump BTB) starts cold, and the
//!    detailed *warmup* portion of each window absorbs it.
//! 2. **Architectural checkpoints** ([`checkpoint::Checkpoint`]): the
//!    full restart state — registers, PC, memory pages, predictor
//!    table, cache tags — serialized to a versioned, content-addressed
//!    on-disk format, so any window can be replayed later (or on
//!    another worker) as an independent job.
//! 3. **A systematic-sampling driver** ([`driver::run_sampled`]) and
//!    an estimator ([`estimate::mean_ci95`]) that aggregates
//!    per-window IPC, reuse rate and CI-exploited fraction into
//!    mean ± half-width pairs (Student-t for small window counts).
//!
//! ```
//! use cfir_sample::{run_sampled, SamplingConfig};
//! use cfir_workloads::{by_name, WorkloadSpec};
//!
//! let w = by_name("gzip", WorkloadSpec::default()).unwrap();
//! let cfg = cfir_sim::SimConfig::paper_baseline().with_max_insts(60_000);
//! let s = run_sampled(&w.prog, &w.mem, w.name, cfg, SamplingConfig {
//!     period: 10_000,
//!     warmup: 1_000,
//!     window: 1_000,
//!     ..Default::default()
//! });
//! assert!(s.windows.len() >= 4);
//! assert!(s.ipc.mean > 0.0);
//! ```

pub mod checkpoint;
pub mod driver;
pub mod estimate;
pub mod warm;

pub use checkpoint::{Checkpoint, FORMAT_VERSION};
pub use driver::{replay_window, run_sampled, SampledRun, SamplingConfig, WindowRow};
pub use estimate::{mean_ci95, Estimate};
pub use warm::WarmingEmulator;

/// FNV-1a over bytes — the same content-addressing hash the harness
/// uses for its result cache, reimplemented locally so the dependency
/// arrow stays harness → sample.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
