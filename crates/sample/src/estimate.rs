//! Mean ± 95% confidence-interval estimation over sampled windows.
//!
//! Windows are treated as (approximately) independent draws from the
//! program's steady-state behaviour; the interval is the classic
//! Student-t construction `mean ± t(df) * s / sqrt(n)` with the
//! two-sided 95% quantile. Degenerate cases are explicit rather than
//! silent: fewer than two windows cannot bound anything (`reliable()`
//! is false and the half-width is 0), and zero-variance windows yield
//! a zero-width interval.

/// Two-sided 95% Student-t quantiles for 1..=30 degrees of freedom;
/// beyond that the normal approximation (1.96) is used.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% quantile for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

/// A mean with its 95% confidence half-width over `n` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of samples (windows).
    pub n: usize,
    /// Sample mean (0 when `n == 0`).
    pub mean: f64,
    /// Half-width of the 95% CI (0 when `n < 2`: no bound exists).
    pub half_width: f64,
}

impl Estimate {
    /// Lower CI bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper CI bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `v` lies inside the interval. Always false when the
    /// estimate is not [`reliable`](Estimate::reliable) — an unbounded
    /// interval must not be mistaken for an all-covering one.
    pub fn contains(&self, v: f64) -> bool {
        self.reliable() && v >= self.lo() && v <= self.hi()
    }

    /// True when enough windows exist for the interval to mean
    /// anything (`n >= 2`).
    pub fn reliable(&self) -> bool {
        self.n >= 2
    }

    /// Relative error of the mean against a reference value.
    pub fn rel_error(&self, reference: f64) -> f64 {
        if reference == 0.0 {
            if self.mean == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.mean - reference).abs() / reference.abs()
        }
    }
}

/// Mean ± 95% CI of `samples` (Student-t; see the module docs for the
/// degenerate cases).
pub fn mean_ci95(samples: &[f64]) -> Estimate {
    let n = samples.len();
    if n == 0 {
        return Estimate {
            n: 0,
            mean: 0.0,
            half_width: 0.0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return Estimate {
            n,
            mean,
            half_width: 0.0,
        };
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let half_width = t95(n - 1) * (var / n as f64).sqrt();
    Estimate {
        n,
        mean,
        half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_interval() {
        // samples: 1, 2, 3, 4, 5 -> mean 3, s^2 = 2.5, s = 1.5811,
        // se = s/sqrt(5) = 0.70711, t(4) = 2.776 -> hw = 1.96294...
        let e = mean_ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.n, 5);
        assert!((e.mean - 3.0).abs() < 1e-12);
        let expected_hw = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!(
            (e.half_width - expected_hw).abs() < 1e-9,
            "{} vs {expected_hw}",
            e.half_width
        );
        assert!(e.contains(3.5));
        assert!(!e.contains(5.5));
    }

    #[test]
    fn two_sample_interval_uses_t_one_df() {
        // samples 10, 14: mean 12, s^2 = 8, se = 2, t(1) = 12.706.
        let e = mean_ci95(&[10.0, 14.0]);
        assert!((e.mean - 12.0).abs() < 1e-12);
        assert!((e.half_width - 12.706 * 2.0).abs() < 1e-9);
        assert!(e.reliable());
    }

    #[test]
    fn degenerate_single_window_is_flagged() {
        let e = mean_ci95(&[42.0]);
        assert_eq!(e.n, 1);
        assert_eq!(e.mean, 42.0);
        assert_eq!(e.half_width, 0.0);
        assert!(!e.reliable());
        assert!(
            !e.contains(42.0),
            "an unbounded interval must not claim coverage"
        );
    }

    #[test]
    fn degenerate_empty_is_flagged() {
        let e = mean_ci95(&[]);
        assert_eq!((e.n, e.mean, e.half_width), (0, 0.0, 0.0));
        assert!(!e.reliable());
    }

    #[test]
    fn zero_variance_gives_zero_width() {
        let e = mean_ci95(&[7.0; 10]);
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.half_width, 0.0);
        assert!(e.reliable());
        assert!(e.contains(7.0));
        assert!(!e.contains(7.0001));
    }

    #[test]
    fn interval_narrows_monotonically_with_more_windows() {
        // Repeat an alternating +/-1 pattern so the sample std stays
        // constant while n grows: hw = t(n-1)/sqrt(n) * s must shrink.
        let mut prev = f64::INFINITY;
        for n in [2usize, 4, 8, 16, 32, 64] {
            let samples: Vec<f64> = (0..n)
                .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
                .collect();
            let e = mean_ci95(&samples);
            assert!((e.mean - 10.0).abs() < 1e-12);
            assert!(
                e.half_width < prev,
                "hw {} at n={n} did not narrow (prev {prev})",
                e.half_width
            );
            prev = e.half_width;
        }
    }

    #[test]
    fn relative_error_helper() {
        let e = mean_ci95(&[2.0, 2.0]);
        assert!((e.rel_error(2.5) - 0.2).abs() < 1e-12);
        assert_eq!(e.rel_error(0.0), f64::INFINITY);
        assert_eq!(mean_ci95(&[]).rel_error(0.0), 0.0);
    }
}
