//! Versioned, content-addressed architectural checkpoints.
//!
//! A checkpoint is everything needed to restart execution mid-program
//! with warm microarchitectural state:
//!
//! * architectural registers + PC + retired-instruction position,
//! * every mapped memory page (sorted by page id, so serialization is
//!   deterministic),
//! * the gshare counter table + speculative history + the committed
//!   16-bit global history,
//! * the tag/LRU/dirty state of all four cache levels.
//!
//! The on-disk format is a little-endian binary layout behind an
//! 8-byte magic and a format version ([`FORMAT_VERSION`]); decoding
//! rejects unknown versions and truncated payloads. Files are named by
//! the FNV-1a hash of their payload (`<id:016x>.ckpt`), so a
//! checkpoint's name *is* its identity: any window job seeded from it
//! derives its randomness (and its cache key) from content, never from
//! worker/pool scheduling order.

use crate::fnv1a64;
use cfir_emu::MemImage;
use cfir_isa::NUM_LOGICAL_REGS;
use cfir_mem::{WarmCache, WarmHierarchy, WarmWay};
use cfir_sim::WarmStart;
use std::path::{Path, PathBuf};

/// Words per memory page (re-exported from the emulator's pager).
pub const PAGE_WORDS: usize = MemImage::PAGE_WORDS;

/// Magic bytes opening every serialized checkpoint.
pub const MAGIC: &[u8; 8] = b"CFIRCKPT";

/// On-disk format version. Bump on any layout change; decoding rejects
/// mismatches rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// A restartable mid-program machine state with warm predictor/cache
/// contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Architectural register values (`regs[0]` is always 0).
    pub regs: [u64; NUM_LOGICAL_REGS],
    /// Program counter (instruction index).
    pub pc: u32,
    /// Instructions retired before this point (position in the run).
    pub retired: u64,
    /// Committed 16-bit global branch history.
    pub ghist: u64,
    /// Gshare 2-bit counter table.
    pub gshare_table: Vec<u8>,
    /// Gshare speculative history at capture.
    pub gshare_history: u64,
    /// Warm state of all four cache levels.
    pub hier: WarmHierarchy,
    /// Mapped memory pages, sorted by page id.
    pub pages: Vec<(u64, [u64; PAGE_WORDS])>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_cache(out: &mut Vec<u8>, c: &WarmCache) {
    put_u64(out, c.ways.len() as u64);
    for w in &c.ways {
        put_u64(out, w.tag);
        out.push(w.valid as u8 | (w.dirty as u8) << 1);
        put_u64(out, w.stamp);
    }
    put_u64(out, c.clock);
}

/// Cursor-style reader over the serialized payload.
struct Rd<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Rd<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "checkpoint truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn cache(&mut self) -> Result<WarmCache, String> {
        let n = self.u64()? as usize;
        if n > (1 << 24) {
            return Err(format!("implausible cache way count {n}"));
        }
        let mut ways = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = self.u64()?;
            let flags = self.u8()?;
            let stamp = self.u64()?;
            ways.push(WarmWay {
                tag,
                valid: flags & 1 != 0,
                dirty: flags & 2 != 0,
                stamp,
            });
        }
        let clock = self.u64()?;
        Ok(WarmCache { ways, clock })
    }
}

impl Checkpoint {
    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.gshare_table.len() + self.pages.len() * (8 + PAGE_WORDS * 8),
        );
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        for r in self.regs {
            put_u64(&mut out, r);
        }
        put_u32(&mut out, self.pc);
        put_u64(&mut out, self.retired);
        put_u64(&mut out, self.ghist);
        put_u64(&mut out, self.gshare_table.len() as u64);
        out.extend_from_slice(&self.gshare_table);
        put_u64(&mut out, self.gshare_history);
        for c in [&self.hier.l1i, &self.hier.l1d, &self.hier.l2, &self.hier.l3] {
            put_cache(&mut out, c);
        }
        put_u64(&mut out, self.pages.len() as u64);
        for (id, words) in &self.pages {
            put_u64(&mut out, *id);
            for w in words {
                put_u64(&mut out, *w);
            }
        }
        out
    }

    /// Decode a serialized checkpoint, validating magic, version and
    /// length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err("not a CFIR checkpoint (bad magic)".into());
        }
        let mut rd = Rd { buf: bytes, pos: 8 };
        let ver = rd.u32()?;
        if ver != FORMAT_VERSION {
            return Err(format!(
                "checkpoint format v{ver} not supported (this build reads v{FORMAT_VERSION})"
            ));
        }
        let mut regs = [0u64; NUM_LOGICAL_REGS];
        for r in &mut regs {
            *r = rd.u64()?;
        }
        let pc = rd.u32()?;
        let retired = rd.u64()?;
        let ghist = rd.u64()?;
        let tlen = rd.u64()? as usize;
        if tlen > (1 << 28) {
            return Err(format!("implausible gshare table length {tlen}"));
        }
        let gshare_table = rd.take(tlen)?.to_vec();
        let gshare_history = rd.u64()?;
        let l1i = rd.cache()?;
        let l1d = rd.cache()?;
        let l2 = rd.cache()?;
        let l3 = rd.cache()?;
        let npages = rd.u64()? as usize;
        if npages > (1 << 24) {
            return Err(format!("implausible page count {npages}"));
        }
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let id = rd.u64()?;
            let mut words = [0u64; PAGE_WORDS];
            for w in &mut words {
                *w = rd.u64()?;
            }
            pages.push((id, words));
        }
        if rd.pos != bytes.len() {
            return Err(format!(
                "trailing garbage: {} bytes after the checkpoint payload",
                bytes.len() - rd.pos
            ));
        }
        Ok(Checkpoint {
            regs,
            pc,
            retired,
            ghist,
            gshare_table,
            gshare_history,
            hier: WarmHierarchy { l1i, l1d, l2, l3 },
            pages,
        })
    }

    /// Content hash of the serialized payload — the checkpoint's
    /// identity for file naming, window RNG seeding and cache keys.
    pub fn content_id(&self) -> u64 {
        fnv1a64(&self.to_bytes())
    }

    /// Content-addressed file name (`<id:016x>.ckpt`).
    pub fn file_name(&self) -> String {
        format!("{:016x}.ckpt", self.content_id())
    }

    /// Write to `dir` under the content-addressed name; returns the
    /// full path. Writing the same state twice is a no-op overwrite of
    /// identical bytes.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_bytes())?;
        Ok(path)
    }

    /// Read a checkpoint back from disk.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_bytes(&bytes)
    }

    /// Rebuild the memory image this checkpoint captured.
    pub fn memory(&self) -> MemImage {
        MemImage::from_pages(self.pages.iter().map(|(id, w)| (*id, *w)))
    }

    /// Convert to the pipeline's warm-start bundle.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart {
            regs: self.regs,
            pc: self.pc,
            mem: self.memory(),
            ghist: self.ghist,
            gshare_table: self.gshare_table.clone(),
            gshare_history: self.gshare_history,
            hier: self.hier.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warm::WarmingEmulator;
    use cfir_sim::SimConfig;
    use cfir_workloads::{by_name, WorkloadSpec};

    fn sample_checkpoint() -> Checkpoint {
        let w = by_name("bzip2", WorkloadSpec::default()).unwrap();
        let mut warm = WarmingEmulator::new(&w.prog, w.mem.clone(), &SimConfig::paper_baseline());
        warm.fast_forward(5_000);
        warm.checkpoint()
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let c = sample_checkpoint();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.content_id(), c.content_id());
    }

    #[test]
    fn content_id_is_stable_and_content_sensitive() {
        let c = sample_checkpoint();
        assert_eq!(c.content_id(), c.clone().content_id());
        let mut d = c.clone();
        d.regs[5] ^= 1;
        assert_ne!(d.content_id(), c.content_id());
        assert!(c.file_name().ends_with(".ckpt"));
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let c = sample_checkpoint();
        let bytes = c.to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Checkpoint::from_bytes(&bad).unwrap_err().contains("magic"));

        let mut vers = bytes.clone();
        vers[8] = 99;
        assert!(Checkpoint::from_bytes(&vers)
            .unwrap_err()
            .contains("format v99"));

        let trunc = &bytes[..bytes.len() - 3];
        assert!(Checkpoint::from_bytes(trunc)
            .unwrap_err()
            .contains("truncated"));

        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Checkpoint::from_bytes(&extra)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn save_load_round_trip() {
        let c = sample_checkpoint();
        let dir = std::env::temp_dir().join(format!("cfir-ckpt-test-{:x}", c.content_id()));
        let path = c.save(&dir).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_round_trips_through_pages() {
        let c = sample_checkpoint();
        let m = c.memory();
        assert_eq!(m.page_count(), c.pages.len());
        for (id, words) in &c.pages {
            let base = id << 12;
            assert_eq!(m.read(base), words[0]);
            assert_eq!(
                m.read(base + 8 * (PAGE_WORDS as u64 - 1)),
                words[PAGE_WORDS - 1]
            );
        }
    }
}
