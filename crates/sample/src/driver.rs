//! The systematic-sampling driver.
//!
//! The run is divided into fixed-length *periods*. The measured window
//! of period `k` starts at instruction `k * period`, preceded by
//! `warmup` detailed instructions (excluded from statistics) that
//! re-form short-lived pipeline state; everything between detailed
//! regions is covered functionally (with warming, see [`crate::warm`]).
//! Window 0 therefore measures the genuinely cold head of the run —
//! a checkpoint at instruction 0 *is* the cold machine — so the
//! cold-start transient a full detailed run pays is represented in the
//! estimate instead of being systematically skipped. Per-window IPC /
//! reuse rate / CI-exploited fraction feed the [`crate::estimate`]
//! aggregator.
//!
//! Determinism: a sampled run is a pure function of (program, memory,
//! `SimConfig`, [`SamplingConfig`]). The optional jitter offset of
//! each window is derived from the *content id of the previous
//! checkpoint*, never from wall clock or scheduling order, so the same
//! run replayed on any worker of the harness pool produces
//! byte-identical results.

use crate::checkpoint::Checkpoint;
use crate::estimate::{mean_ci95, Estimate};
use crate::fnv1a64;
use crate::warm::WarmingEmulator;
use cfir_emu::MemImage;
use cfir_isa::Program;
use cfir_obs::stall::ALL_CAUSES;
use cfir_sim::{
    run_json_sampled, Pipeline, RunExit, SampleEstimate, SampleWindow, SamplingInfo, SimConfig,
    SimStats,
};
use std::path::PathBuf;

/// Parameters of a sampled run. The defaults follow the SMARTS-style
/// recipe: long periods, a short detailed warmup, a slightly longer
/// measured window (~10% detailed coverage at the default ratio).
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Instructions between successive detailed regions.
    pub period: u64,
    /// Detailed instructions re-forming short-lived state before each
    /// measurement (excluded from statistics).
    pub warmup: u64,
    /// Measured detailed instructions per window.
    pub window: u64,
    /// Stop after this many windows (0 = bounded only by the
    /// instruction budget).
    pub max_windows: usize,
    /// Maximum backward jitter of each window start, in instructions
    /// (0 = purely systematic). The offset is seeded from the previous
    /// checkpoint's content id, so it is reproducible and independent
    /// of execution order.
    pub jitter: u64,
    /// When set, every window's checkpoint is also written here under
    /// its content-addressed name.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            period: 50_000,
            // 3.5k warmup / 4k windows: shorter warmups leave enough
            // cold short-lived state (ROB, in-flight branch patterns,
            // SRSMT fill) to measurably inflate misprediction — and
            // therefore reuse — rates inside the window; this ratio
            // is the smallest that held the exp_sampling accuracy
            // gate across all 12 kernels.
            warmup: 3_500,
            window: 4_000,
            max_windows: 0,
            jitter: 0,
            checkpoint_dir: None,
        }
    }
}

/// One measured window of a sampled run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Retired-instruction position of the checkpoint the window's
    /// pipeline started from (start of the warmup).
    pub start_inst: u64,
    /// Content id of that checkpoint.
    pub checkpoint_id: u64,
    /// Instructions committed inside the measured window.
    pub committed: u64,
    /// Cycles the measured window took.
    pub cycles: u64,
    /// Window IPC.
    pub ipc: f64,
    /// Window reuse rate (reused commits / commits).
    pub reuse_rate: f64,
    /// Window CI-exploited fraction (reused events / mispredictions).
    pub ci_exploited: f64,
}

/// The result of replaying one window from a checkpoint.
#[derive(Debug, Clone)]
pub struct WindowReplay {
    /// The window's measurements.
    pub row: WindowRow,
    /// Stats delta over the measured portion only (warmup excluded).
    pub delta: SimStats,
    /// Instructions the pipeline committed during the warmup portion.
    pub warmup_committed: u64,
    /// Whether the program halted inside this detailed region.
    pub halted: bool,
}

/// A completed sampled run: per-window rows, per-metric estimates and
/// the summed measured-portion statistics.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Workload name.
    pub name: String,
    /// Sampling parameters the run used.
    pub period: u64,
    /// Warmup instructions per window.
    pub warmup: u64,
    /// Measured instructions per window.
    pub window: u64,
    /// Measured windows, in sampling order.
    pub windows: Vec<WindowRow>,
    /// Total functionally executed (and warmed) instructions.
    pub ff_insts: u64,
    /// Total instructions committed by the detailed pipeline
    /// (warmup + measured).
    pub detailed_insts: u64,
    /// Measured (post-warmup) detailed instructions only.
    pub measured_insts: u64,
    /// Whether the program halted within the sampled budget.
    pub halted: bool,
    /// IPC estimate across windows. Aggregated SMARTS-style: the
    /// per-window *CPI* values (a per-instruction quantity over
    /// equal-instruction windows) are averaged and the mean inverted —
    /// averaging IPC directly would overweight fast windows and bias
    /// the estimate high on phase-heterogeneous programs.
    pub ipc: Estimate,
    /// Reuse-rate estimate across windows.
    pub reuse_rate: Estimate,
    /// CI-exploited-fraction estimate across windows.
    pub ci_exploited: Estimate,
    /// Summed stats deltas of all measured windows (counters only;
    /// histograms / per-branch scorecards stay empty — the sampling
    /// object is the sampled run's headline payload).
    pub stats: SimStats,
}

fn to_sample_estimate(e: &Estimate) -> SampleEstimate {
    SampleEstimate {
        n: e.n as u64,
        mean: e.mean,
        half_width: e.half_width,
    }
}

impl SampledRun {
    /// The schema-v7 `sampling` object for this run's snapshot.
    pub fn info(&self) -> SamplingInfo {
        SamplingInfo {
            period: self.period,
            warmup: self.warmup,
            window: self.window,
            ff_insts: self.ff_insts,
            detailed_insts: self.detailed_insts,
            halted: self.halted,
            ipc: to_sample_estimate(&self.ipc),
            reuse_rate: to_sample_estimate(&self.reuse_rate),
            ci_exploited: to_sample_estimate(&self.ci_exploited),
            windows: self
                .windows
                .iter()
                .map(|w| SampleWindow {
                    start_inst: w.start_inst,
                    checkpoint: w.checkpoint_id,
                    committed: w.committed,
                    cycles: w.cycles,
                    ipc: w.ipc,
                    reuse_rate: w.reuse_rate,
                    ci_exploited: w.ci_exploited,
                })
                .collect(),
        }
    }

    /// Render the run as a schema-v7 snapshot document.
    pub fn snapshot_json(&self, label: &str) -> String {
        run_json_sampled(&self.name, label, &self.stats, Some(&self.info()))
    }
}

/// The u64 counters that delta/accumulate window-wise. Histograms,
/// intervals, per-branch scorecards and the bottleneck report are not
/// meaningfully subtractable and stay at their defaults in window
/// deltas.
macro_rules! counter_fields {
    ($cb:ident) => {
        $cb!(
            cycles,
            committed,
            committed_reuse,
            squashed,
            replicas_executed,
            replicas_created,
            branches,
            mispredicts,
            validation_failures,
            commit_check_failures,
            stores,
            store_conflicts,
            loads,
            reg_occupancy_sum,
            strided_pc_dropped,
            strided_pc_sum,
            strided_pc_samples,
            vectorizations,
            l1d_accesses,
            l1d_misses,
            l1d_writebacks,
            l1i_accesses,
            l1i_misses,
            l2_accesses,
            l2_misses,
            l3_accesses,
            l3_misses,
            mem_accesses,
            fetched,
            specmem_copies,
            squash_reuse_hits,
            lifecycle_records,
            lifecycle_dropped
        );
    };
}

/// Counter-wise `after - before` of two stats snapshots of the *same*
/// pipeline (so every counter of `after` dominates `before`).
fn delta_stats(before: &SimStats, after: &SimStats) -> SimStats {
    let mut d = SimStats::default();
    macro_rules! sub {
        ($($f:ident),* $(,)?) => { $( d.$f = after.$f - before.$f; )* };
    }
    counter_fields!(sub);
    for (i, slot) in d.valfail_reasons.iter_mut().enumerate() {
        *slot = after.valfail_reasons[i] - before.valfail_reasons[i];
    }
    for cause in ALL_CAUSES {
        d.stall
            .charge(cause, after.stall.get(cause) - before.stall.get(cause));
    }
    d.reg_high_water = after.reg_high_water;
    d
}

/// Accumulate a window delta into the run total.
fn acc_stats(acc: &mut SimStats, d: &SimStats) {
    macro_rules! add {
        ($($f:ident),* $(,)?) => { $( acc.$f += d.$f; )* };
    }
    counter_fields!(add);
    for (i, slot) in acc.valfail_reasons.iter_mut().enumerate() {
        *slot += d.valfail_reasons[i];
    }
    for cause in ALL_CAUSES {
        acc.stall.charge(cause, d.stall.get(cause));
    }
    acc.reg_high_water = acc.reg_high_water.max(d.reg_high_water);
}

/// Replay one detailed region (warmup + measured window) from a
/// checkpoint. Public so a checkpoint written to disk can later be
/// replayed standalone — the CI round-trip check and the harness's
/// distributed window jobs both rely on this being a pure function of
/// `(prog, checkpoint, cfg, warmup, window)`.
pub fn replay_window(
    prog: &Program,
    ckpt: &Checkpoint,
    cfg: &SimConfig,
    warmup: u64,
    window: u64,
) -> WindowReplay {
    let mut wcfg = cfg.clone();
    wcfg.max_insts = warmup;
    let mut p = Pipeline::new(prog, ckpt.memory(), wcfg);
    p.restore_checkpoint(&ckpt.warm_start());
    let mut halted = matches!(p.run(), RunExit::Halted);
    let s0 = p.stats.clone();
    if !halted {
        p.cfg.max_insts = warmup + window;
        halted = matches!(p.run(), RunExit::Halted);
    }
    let s1 = p.stats.clone();
    let delta = delta_stats(&s0, &s1);
    let (_, _, reu0) = s0.events.counts();
    let (_, _, reu1) = s1.events.counts();
    let d_misp = s1.events.total_mispredictions - s0.events.total_mispredictions;
    let ci_exploited = if d_misp == 0 {
        0.0
    } else {
        (reu1 - reu0) as f64 / d_misp as f64
    };
    let row = WindowRow {
        start_inst: ckpt.retired,
        checkpoint_id: ckpt.content_id(),
        committed: delta.committed,
        cycles: delta.cycles,
        ipc: delta.ipc(),
        reuse_rate: delta.reuse_fraction(),
        ci_exploited,
    };
    WindowReplay {
        row,
        delta,
        warmup_committed: s0.committed,
        halted,
    }
}

/// Invert a CPI estimate into an IPC estimate. The mean maps through
/// `1/x`; the half-width uses the first-order delta method
/// (`|d(1/x)/dx| = 1/x^2`), accurate while the interval is narrow
/// relative to the mean.
fn invert_cpi(cpi: &Estimate) -> Estimate {
    if cpi.mean <= 0.0 {
        return Estimate {
            n: cpi.n,
            mean: 0.0,
            half_width: 0.0,
        };
    }
    Estimate {
        n: cpi.n,
        mean: 1.0 / cpi.mean,
        half_width: cpi.half_width / (cpi.mean * cpi.mean),
    }
}

/// Run `prog` under systematic sampling: functional fast-forward with
/// warming between detailed regions, one checkpointed window per
/// period, estimates across windows. `cfg.max_insts` is the total
/// instruction budget the sampled run covers (the same budget a full
/// detailed run would use).
pub fn run_sampled(
    prog: &Program,
    mem: &MemImage,
    name: &str,
    cfg: SimConfig,
    scfg: SamplingConfig,
) -> SampledRun {
    assert!(scfg.window > 0, "sampling window must be non-empty");
    assert!(
        scfg.period >= scfg.warmup + scfg.window + scfg.jitter,
        "sampling period ({}) must cover warmup + window + jitter ({} + {} + {})",
        scfg.period,
        scfg.warmup,
        scfg.window,
        scfg.jitter
    );
    let budget = cfg.max_insts;

    let mut warm = WarmingEmulator::new(prog, mem.clone(), &cfg);
    let mut windows = Vec::new();
    let mut acc = SimStats::default();
    let mut detailed_insts = 0u64;
    let mut halted = false;
    let mut shift = 0u64;

    for k in 0u64.. {
        if scfg.max_windows > 0 && windows.len() >= scfg.max_windows {
            break;
        }
        // Measurement k starts at `k * period` (jitter, if any, slides
        // it forward within the period); the detailed warmup precedes
        // it, clamped at instruction 0 — window 0 measures the cold
        // head of the run with no warmup, which is exact: the machine
        // really is cold there.
        let meas_start = k * scfg.period + shift;
        let warm_start = meas_start.saturating_sub(scfg.warmup);
        if meas_start + scfg.window > budget {
            break;
        }
        if warm.retired() < warm_start {
            warm.fast_forward(warm_start - warm.retired());
        }
        if warm.done() {
            halted = true;
            break;
        }
        let ckpt = warm.checkpoint();
        if let Some(dir) = &scfg.checkpoint_dir {
            ckpt.save(dir).expect("failed to write checkpoint");
        }
        // Next window's jitter offset, seeded from content (never from
        // scheduling order) so sampled runs are order-independent.
        if scfg.jitter > 0 {
            let mut seed = [0u8; 16];
            seed[..8].copy_from_slice(&ckpt.content_id().to_le_bytes());
            seed[8..].copy_from_slice(&(k + 1).to_le_bytes());
            shift = fnv1a64(&seed) % (scfg.jitter + 1);
        }
        let rep = replay_window(prog, &ckpt, &cfg, meas_start - warm_start, scfg.window);
        detailed_insts += rep.warmup_committed + rep.row.committed;
        if rep.row.committed > 0 {
            acc_stats(&mut acc, &rep.delta);
            windows.push(rep.row);
        }
        if rep.halted {
            halted = true;
            break;
        }
    }

    // Cover the remainder of the budget functionally so the sampled
    // run represents the same execution span a full run would.
    if !halted && warm.retired() < budget {
        warm.fast_forward(budget - warm.retired());
        halted = warm.done();
    }

    // SMARTS averages per-window CPI, not IPC: windows retire equal
    // instruction counts, so the arithmetic mean of CPI is unbiased
    // while a mean of IPC overweights fast windows (on mcf the
    // direct-IPC mean overshoots the full run by ~2x).
    let cpi = mean_ci95(
        &windows
            .iter()
            .map(|w| w.cycles as f64 / w.committed as f64)
            .collect::<Vec<_>>(),
    );
    let ipc = invert_cpi(&cpi);
    let reuse_rate = mean_ci95(&windows.iter().map(|w| w.reuse_rate).collect::<Vec<_>>());
    let ci_exploited = mean_ci95(&windows.iter().map(|w| w.ci_exploited).collect::<Vec<_>>());
    let measured_insts = windows.iter().map(|w| w.committed).sum();
    SampledRun {
        name: name.to_string(),
        period: scfg.period,
        warmup: scfg.warmup,
        window: scfg.window,
        windows,
        ff_insts: warm.retired(),
        detailed_insts,
        measured_insts,
        halted,
        ipc,
        reuse_rate,
        ci_exploited,
        stats: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_workloads::{by_name, WorkloadSpec};

    fn small_cfg(budget: u64) -> SimConfig {
        SimConfig::paper_baseline().with_max_insts(budget)
    }

    fn small_scfg() -> SamplingConfig {
        SamplingConfig {
            period: 10_000,
            warmup: 1_000,
            window: 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn sampled_estimate_tracks_the_full_run() {
        let w = by_name("gzip", WorkloadSpec::default()).unwrap();
        let budget = 60_000;

        let mut full = Pipeline::new(&w.prog, w.mem.clone(), small_cfg(budget));
        full.run();
        let full_ipc = full.stats.ipc();

        let s = run_sampled(&w.prog, &w.mem, w.name, small_cfg(budget), small_scfg());
        assert!(s.windows.len() >= 4, "expected several windows");
        assert!(
            s.detailed_insts < budget / 2,
            "sampling must simulate a minority of the budget in detail \
             ({} of {budget})",
            s.detailed_insts
        );
        assert!(s.ff_insts >= budget || s.halted);
        let err = s.ipc.rel_error(full_ipc);
        assert!(
            err < 0.15 || s.ipc.contains(full_ipc),
            "sampled IPC {} too far from full {} (err {err:.3})",
            s.ipc.mean,
            full_ipc
        );
    }

    #[test]
    fn ipc_estimate_averages_cpi_not_ipc() {
        // Two windows, 1000 insts each: one at 500 cycles (IPC 2) and
        // one at 2000 cycles (IPC 0.5). Aggregate IPC over the
        // measured instructions is 2000/2500 = 0.8 — exactly what the
        // CPI mean gives (mean CPI = (0.5 + 2.0)/2 = 1.25, 1/1.25 =
        // 0.8). A direct IPC mean would claim 1.25 — off by 56%.
        let cpi = mean_ci95(&[0.5, 2.0]);
        let ipc = invert_cpi(&cpi);
        assert!((ipc.mean - 0.8).abs() < 1e-12, "got {}", ipc.mean);
        // Delta method: hw(ipc) = hw(cpi) / mean(cpi)^2.
        assert!((ipc.half_width - cpi.half_width / (1.25 * 1.25)).abs() < 1e-12);
        assert_eq!(ipc.n, 2);
        // Degenerate input maps to a zero estimate, not a division.
        let z = invert_cpi(&mean_ci95(&[]));
        assert_eq!((z.mean, z.half_width), (0.0, 0.0));
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let w = by_name("bzip2", WorkloadSpec::default()).unwrap();
        let mut scfg = small_scfg();
        scfg.jitter = 500;
        let a = run_sampled(&w.prog, &w.mem, w.name, small_cfg(50_000), scfg.clone());
        let b = run_sampled(&w.prog, &w.mem, w.name, small_cfg(50_000), scfg);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.snapshot_json("scal"), b.snapshot_json("scal"));
    }

    #[test]
    fn windows_replay_identically_from_disk() {
        let w = by_name("gzip", WorkloadSpec::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("cfir-replay-test-{}", w.name));
        std::fs::remove_dir_all(&dir).ok();
        let scfg = SamplingConfig {
            checkpoint_dir: Some(dir.clone()),
            ..small_scfg()
        };
        let cfg = small_cfg(40_000);
        let s = run_sampled(&w.prog, &w.mem, w.name, cfg.clone(), scfg);
        assert!(!s.windows.is_empty());
        for (k, row) in s.windows.iter().enumerate() {
            let path = dir.join(format!("{:016x}.ckpt", row.checkpoint_id));
            let ckpt = Checkpoint::load(&path).expect("checkpoint on disk");
            // Effective warmup: measurement k sits at k*period; the
            // checkpoint is `warmup` before it (0 for the cold head).
            let warmup = k as u64 * 10_000 - row.start_inst;
            let rep = replay_window(&w.prog, &ckpt, &cfg, warmup, 1_000);
            assert_eq!(&rep.row, row, "replay from disk diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halting_workload_stops_cleanly() {
        let w = by_name(
            "gzip",
            WorkloadSpec {
                iters: 10,
                ..WorkloadSpec::default()
            },
        )
        .unwrap();
        let s = run_sampled(
            &w.prog,
            &w.mem,
            w.name,
            small_cfg(1 << 30),
            SamplingConfig {
                period: 2_000,
                warmup: 200,
                window: 200,
                ..Default::default()
            },
        );
        assert!(s.halted);
        for win in &s.windows {
            assert!(win.committed > 0);
        }
    }

    #[test]
    fn max_windows_caps_the_run() {
        let w = by_name("gzip", WorkloadSpec::default()).unwrap();
        let scfg = SamplingConfig {
            max_windows: 2,
            ..small_scfg()
        };
        let s = run_sampled(&w.prog, &w.mem, w.name, small_cfg(100_000), scfg);
        assert_eq!(s.windows.len(), 2);
    }
}
