//! Integration tests for the experiment matrix running through the
//! `cfir-harness` pool: parallel determinism, cache resume, and
//! failure isolation — the properties `cfir-suite` is built on.

use cfir_bench::runner;
use cfir_harness::{
    run_suite, Artifact, Experiment, ExperimentOutput, JobSpec, SuiteOptions, WorkloadRef,
};
use cfir_sim::Mode;
use cfir_sim::RegFileSize;
use cfir_workloads::WorkloadSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh scratch directory per call (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cfir-suite-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(name: &str, mode: Mode) -> JobSpec {
    JobSpec {
        workload: WorkloadRef::Named {
            name: name.into(),
            spec: WorkloadSpec {
                iters: 1 << 30,
                elems: 256,
                seed: 7,
            },
        },
        cfg: runner::config(mode, 1, RegFileSize::Finite(512)),
        max_insts: 3_000,
        sampling: None,
    }
}

/// A sampled job over the same kernel set (period sized so several
/// windows fit in the small test budget).
fn sampled_spec(name: &str, mode: Mode) -> JobSpec {
    JobSpec {
        max_insts: 40_000,
        sampling: Some(cfir_harness::SamplingParams {
            period: 10_000,
            warmup: 1_000,
            window: 1_000,
        }),
        ..spec(name, mode)
    }
}

/// 2 kernels × 2 modes, reduced to a CSV of raw counters and rates —
/// enough surface to catch any ordering or float drift.
fn small_experiment() -> Experiment {
    Experiment {
        name: "mini",
        title: "2 kernels x 2 modes",
        jobs: vec![
            spec("bzip2", Mode::Scalar),
            spec("bzip2", Mode::Ci),
            spec("gzip", Mode::Scalar),
            spec("gzip", Mode::Ci),
        ],
        aggregate: Box::new(|_ctx, results| {
            let mut csv = String::from("name,mode,cycles,committed,ipc,reuse\n");
            for r in results {
                csv.push_str(&format!(
                    "{},{},{},{},{:.6},{:.6}\n",
                    r.name,
                    r.mode_label,
                    r.cycles,
                    r.committed,
                    r.ipc(),
                    r.reuse_fraction()
                ));
            }
            Ok(ExperimentOutput {
                artifacts: vec![Artifact {
                    rel_path: "mini.csv".into(),
                    contents: csv,
                }],
                stdout: String::new(),
            })
        }),
    }
}

fn opts(out: &std::path::Path, cache: &std::path::Path, jobs: usize) -> SuiteOptions {
    SuiteOptions {
        jobs,
        out_dir: out.to_path_buf(),
        cache_dir: Some(cache.to_path_buf()),
        quiet: true,
        ..SuiteOptions::default()
    }
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let (out1, cache1) = (scratch("ser-out"), scratch("ser-cache"));
    let (out4, cache4) = (scratch("par-out"), scratch("par-cache"));

    let r1 = run_suite(vec![small_experiment()], &opts(&out1, &cache1, 1));
    let r4 = run_suite(vec![small_experiment()], &opts(&out4, &cache4, 4));
    assert!(r1.all_ok() && r4.all_ok());
    assert_eq!(r1.executed, 4);
    assert_eq!(r4.executed, 4);

    let a = std::fs::read(out1.join("mini.csv")).unwrap();
    let b = std::fs::read(out4.join("mini.csv")).unwrap();
    assert_eq!(
        a, b,
        "jobs=1 and jobs=4 must produce byte-identical artifacts"
    );
    assert!(String::from_utf8(a).unwrap().contains("bzip2,scal"));
}

/// Sampled points reduced to an artifact that exposes *all* window
/// detail (the full schema-v7 snapshots, checkpoint ids included), so
/// any scheduling-order dependence in the sampling driver would show
/// up as byte drift.
fn sampled_experiment() -> Experiment {
    Experiment {
        name: "mini-sampled",
        title: "2 kernels x 2 modes, sampled",
        jobs: vec![
            sampled_spec("bzip2", Mode::Scalar),
            sampled_spec("bzip2", Mode::Ci),
            sampled_spec("gzip", Mode::Scalar),
            sampled_spec("gzip", Mode::Ci),
        ],
        aggregate: Box::new(|_ctx, results| {
            let mut bundle = String::new();
            for r in results {
                bundle.push_str(&format!("## {}/{}\n{}\n", r.name, r.mode_label, r.snapshot));
            }
            Ok(ExperimentOutput {
                artifacts: vec![Artifact {
                    rel_path: "mini-sampled.txt".into(),
                    contents: bundle,
                }],
                stdout: String::new(),
            })
        }),
    }
}

#[test]
fn sampled_runs_are_byte_identical_across_pool_sizes() {
    let (out1, cache1) = (scratch("sam-ser-out"), scratch("sam-ser-cache"));
    let (out4, cache4) = (scratch("sam-par-out"), scratch("sam-par-cache"));

    let r1 = run_suite(vec![sampled_experiment()], &opts(&out1, &cache1, 1));
    let r4 = run_suite(vec![sampled_experiment()], &opts(&out4, &cache4, 4));
    assert!(r1.all_ok() && r4.all_ok());

    let a = std::fs::read(out1.join("mini-sampled.txt")).unwrap();
    let b = std::fs::read(out4.join("mini-sampled.txt")).unwrap();
    assert_eq!(
        a, b,
        "sampled runs must be byte-identical regardless of pool size"
    );
    let text = String::from_utf8(a).unwrap();
    assert!(
        text.contains("\"sampling\":"),
        "sampled snapshots carry the schema-v7 sampling object"
    );
    assert!(text.contains("\"checkpoint\":"));
}

#[test]
fn resume_serves_everything_from_cache() {
    let (out, cache) = (scratch("res-out"), scratch("res-cache"));
    let mut o = opts(&out, &cache, 2);
    o.resume = true;

    let first = run_suite(vec![small_experiment()], &o);
    assert!(first.all_ok());
    assert_eq!((first.executed, first.cached), (4, 0));
    let bytes = std::fs::read(out.join("mini.csv")).unwrap();

    // Second run: everything is a cache hit, zero jobs execute, and
    // the artifact is rewritten identically from cached results.
    std::fs::remove_file(out.join("mini.csv")).unwrap();
    let second = run_suite(vec![small_experiment()], &o);
    assert!(second.all_ok());
    assert_eq!(
        (second.executed, second.cached),
        (0, 4),
        "resume must execute nothing: {}",
        second.summary_line()
    );
    assert_eq!(std::fs::read(out.join("mini.csv")).unwrap(), bytes);

    // Without --resume the cache is ignored (but still written).
    let mut fresh = o.clone();
    fresh.resume = false;
    let third = run_suite(vec![small_experiment()], &fresh);
    assert_eq!((third.executed, third.cached), (4, 0));
}

#[test]
fn a_panicking_job_fails_its_experiment_only() {
    let (out, cache) = (scratch("iso-out"), scratch("iso-cache"));
    let bad = Experiment {
        name: "bad",
        title: "panics",
        jobs: vec![JobSpec {
            workload: WorkloadRef::SelfTest {
                panic: true,
                sleep_ms: 0,
            },
            cfg: runner::config(Mode::Scalar, 1, RegFileSize::Finite(512)),
            max_insts: 0,
            sampling: None,
        }],
        aggregate: Box::new(|_, _| Ok(ExperimentOutput::default())),
    };
    let report = run_suite(vec![bad, small_experiment()], &opts(&out, &cache, 2));

    assert!(!report.all_ok(), "suite must report the failure");
    assert_eq!(report.failed, 1);
    let bad_status = &report.experiments[0];
    assert!(bad_status.error.as_deref().unwrap().contains("panick"));
    // The healthy experiment still completed and wrote its artifact.
    let good = &report.experiments[1];
    assert!(good.ok(), "unrelated experiment must not be poisoned");
    assert!(out.join("mini.csv").exists());
}

#[test]
fn dedup_across_experiments_simulates_each_point_once() {
    let (out, cache) = (scratch("dedup-out"), scratch("dedup-cache"));
    // Two experiments over the same four points.
    let report = run_suite(
        vec![small_experiment(), small_experiment()],
        &opts(&out, &cache, 2),
    );
    assert!(report.all_ok());
    assert_eq!(report.total_jobs, 8);
    assert_eq!(report.unique_jobs, 4);
    assert_eq!(report.executed, 4);
}
