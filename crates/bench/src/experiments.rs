//! Every figure/table/ablation of the evaluation, expressed as data.
//!
//! Each function below builds one [`Experiment`]: the list of
//! (workload, configuration) points it needs, plus an aggregator that
//! reduces the finished [`JobResult`]s — in job-definition order —
//! into the same CSV artifacts and stdout blocks the original
//! single-threaded figure binaries produced. `cfir-suite` schedules
//! the union of these matrices on the harness pool; the figure
//! binaries are thin wrappers over [`standalone_main`].
//!
//! The aggregators recompute every derived rate from the raw counters
//! carried by [`JobResult`] with the exact `SimStats` formulas, so the
//! artifacts are byte-identical whether a point was simulated this run
//! or served from the on-disk cache — and identical to the output of
//! the retired serial binaries.

use crate::report::{f3, pct, report_json_checked, Table};
use crate::runner;
use cfir_core::{storage, MechConfig};
use cfir_harness::{
    run_suite, AggCtx, Artifact, Experiment, ExperimentOutput, JobResult, JobSpec, SuiteOptions,
    WorkloadRef,
};
use cfir_sim::{harmonic_mean, Mode, RegFileSize, SimConfig};
use cfir_workloads::{WorkloadSpec, NAMES};
use std::fmt::Write as _;

/// Run-size parameters shared by every job in a matrix. Read from the
/// environment **once**, when the matrix is built — job execution
/// never consults the environment, so fingerprints are stable and
/// worker threads are env-race-free.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Workload generation parameters (`CFIR_ELEMS`, `CFIR_SEED`).
    pub spec: WorkloadSpec,
    /// Committed-instruction budget per job (`CFIR_INSTS`).
    pub max_insts: u64,
}

impl Params {
    /// Parameters from `CFIR_INSTS` / `CFIR_ELEMS` / `CFIR_SEED`.
    pub fn from_env() -> Params {
        Params {
            spec: runner::default_spec(),
            max_insts: runner::max_insts(),
        }
    }
}

/// The paper's five register-file sizes, in figure order.
const REGS: [RegFileSize; 5] = [
    RegFileSize::Finite(128),
    RegFileSize::Finite(256),
    RegFileSize::Finite(512),
    RegFileSize::Finite(768),
    RegFileSize::Infinite,
];

/// Canonicalize a config for use as a job key: the budget lives in
/// [`JobSpec::max_insts`] and the cosim flag is forced off at
/// execution time, so neither may leak divergent values into the
/// fingerprint. Every job samples the interval time series at the
/// historical `--emit-json` cadence — sampling only reads state, so
/// the CSVs are unaffected, and one fingerprint serves both plain and
/// `--emit-json` invocations.
fn canon(mut cfg: SimConfig) -> SimConfig {
    cfg.max_insts = 0;
    cfg.cosim_check = false;
    if cfg.interval_cycles == 0 {
        cfg.interval_cycles = 10_000;
    }
    cfg
}

fn named_job(p: &Params, name: &str, cfg: SimConfig) -> JobSpec {
    JobSpec {
        workload: WorkloadRef::Named {
            name: name.to_string(),
            spec: p.spec,
        },
        cfg: canon(cfg),
        max_insts: p.max_insts,
        sampling: None,
    }
}

/// One job per suite benchmark, all under `cfg`.
fn suite_jobs(p: &Params, cfg: &SimConfig) -> Vec<JobSpec> {
    NAMES.iter().map(|n| named_job(p, n, cfg.clone())).collect()
}

/// CSV artifact, plus the validated JSON snapshot bundle when
/// `--emit-json` is in effect.
fn table_artifacts(
    ctx: &AggCtx,
    name: &str,
    t: &Table,
    runs: &[&JobResult],
) -> Result<Vec<Artifact>, String> {
    let mut v = vec![Artifact {
        rel_path: format!("{name}.csv"),
        contents: t.to_csv(),
    }];
    if ctx.emit_json {
        let labeled: Vec<(String, String)> = runs
            .iter()
            .map(|r| (format!("{}/{}", r.name, r.mode_label), r.snapshot.clone()))
            .collect();
        v.push(Artifact {
            rel_path: format!("{name}.json"),
            contents: report_json_checked(t, &labeled)?,
        });
    }
    Ok(v)
}

fn hmean_of(results: &[&JobResult]) -> f64 {
    let ipcs: Vec<f64> = results.iter().map(|r| r.ipc()).collect();
    harmonic_mean(&ipcs)
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

fn table1(_p: &Params) -> Experiment {
    Experiment {
        name: "table1",
        title: "Table 1: processor configuration + S3.1 extra-storage accounting",
        jobs: Vec::new(),
        aggregate: Box::new(|ctx, _results| {
            let c = SimConfig::paper_baseline();
            let mut t = Table::new("Table 1: processor configuration", &["parameter", "value"]);
            let rows: Vec<(&str, String)> = vec![
                (
                    "Fetch width",
                    format!("{} instructions (up to 1 taken branch)", c.fetch_width),
                ),
                ("I-Cache", "64Kb, 2-way, 64B lines, 1 cycle hit".into()),
                (
                    "Branch predictor",
                    format!("Gshare with {}K entries", c.gshare_entries / 1024),
                ),
                ("Inst. window size", format!("{} entries", c.window)),
                (
                    "Int ALUs / mult-div",
                    format!("{} (1) / {} (2,12)", c.int_alu, c.int_muldiv),
                ),
                (
                    "FP ALUs / mult-div",
                    format!("{} (2) / {} (4,14)", c.fp_alu, c.fp_muldiv),
                ),
                (
                    "Load/store queue",
                    format!("{} entries, store-load forwarding", c.lsq),
                ),
                (
                    "Issue mechanism",
                    format!("{}-way out of order", c.issue_width),
                ),
                (
                    "D-cache",
                    "64Kb, 2-way, 32B lines, 1 cycle hit, write-back, 16 MSHRs".into(),
                ),
                ("L2 cache", "256Kb, 4-way, 32B lines, 6 cycle hit".into()),
                (
                    "L3 cache",
                    "2Mb, 4-way, 64B lines, 18 cycle hit, 100 cycle memory".into(),
                ),
                ("Commit width", format!("{} instructions", c.commit_width)),
                (
                    "Stride predictor",
                    format!("{}-way x {} sets", c.mech.stride_ways, c.mech.stride_sets),
                ),
                (
                    "SRSMT",
                    format!("{}-way x {} sets", c.mech.srsmt_ways, c.mech.srsmt_sets),
                ),
                (
                    "MBS",
                    format!("{}-way x {} sets", c.mech.mbs_ways, c.mech.mbs_sets),
                ),
            ];
            for (k, v) in rows {
                t.row(vec![k.into(), v]);
            }

            let r = storage::report(&MechConfig::paper());
            let mut st = Table::new(
                "S3.1: extra storage of the mechanism",
                &["structure", "bytes"],
            );
            st.row(vec!["SRSMT".into(), r.srsmt.to_string()]);
            st.row(vec!["stride predictor".into(), r.stride.to_string()]);
            st.row(vec!["MBS".into(), r.mbs.to_string()]);
            st.row(vec!["NRBQ".into(), r.nrbq.to_string()]);
            st.row(vec!["CRP".into(), r.crp.to_string()]);
            st.row(vec!["rename extension".into(), r.rename_ext.to_string()]);
            st.row(vec![
                "TOTAL".into(),
                format!("{} ({} KB)", r.total(), r.total() / 1024),
            ]);

            let mut artifacts = table_artifacts(ctx, "table1", &t, &[])?;
            artifacts.extend(table_artifacts(ctx, "table1_storage", &st, &[])?);
            Ok(ExperimentOutput {
                stdout: format!("{}{}", t.render(), st.render()),
                artifacts,
            })
        }),
    }
}

// ---------------------------------------------------------------------------
// Figures 4, 5, 8–14
// ---------------------------------------------------------------------------

fn fig04(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for slots in [1usize, 2, 4] {
        let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
        cfg.mech.strided_pc_slots = slots;
        jobs.extend(suite_jobs(p, &cfg));
    }
    Experiment {
        name: "fig04",
        title: "Figure 4: IPC vs propagated stridedPCs per rename entry",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 4: IPC vs propagated stridedPCs per rename entry",
                &["bench", "1PC", "2PC", "4PC", "avg PCs/entry"],
            );
            let mut per_slots = vec![Vec::new(); 3];
            let mut rows: Vec<Vec<String>> = NAMES.iter().map(|n| vec![n.to_string()]).collect();
            let mut avg_col = vec![String::new(); rows.len()];
            for (si, slots) in [1usize, 2, 4].into_iter().enumerate() {
                for bi in 0..NAMES.len() {
                    let r = results[si * NAMES.len() + bi];
                    per_slots[si].push(r.ipc());
                    rows[bi].push(f3(r.ipc()));
                    if slots == 4 {
                        avg_col[bi] = format!("{:.2}", r.avg_strided_pcs());
                    }
                }
            }
            for (bi, mut row) in rows.into_iter().enumerate() {
                row.push(avg_col[bi].clone());
                t.row(row);
            }
            t.row(vec![
                "HMEAN".into(),
                f3(harmonic_mean(&per_slots[0])),
                f3(harmonic_mean(&per_slots[1])),
                f3(harmonic_mean(&per_slots[2])),
                String::new(),
            ]);
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: 1 vs 2 vs 4 PCs hardly changes IPC; ~1.7 PCs needed on average\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig04", &t, results)?,
            })
        }),
    }
}

fn fig05(p: &Params) -> Experiment {
    let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    Experiment {
        name: "fig05",
        title: "Figure 5: CI classification of mispredicted branches",
        jobs: suite_jobs(p, &cfg),
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 5: CI classification of mispredicted branches (ci)",
                &["bench", "not found", "no reuse", ">=1 reuse", "mispredicts"],
            );
            let mut sums = [0.0f64; 3];
            for r in results {
                let (nf, sel, reu) = r.event_fractions();
                sums[0] += nf;
                sums[1] += sel;
                sums[2] += reu;
                t.row(vec![
                    r.name.clone(),
                    pct(nf),
                    pct(sel),
                    pct(reu),
                    r.total_mispredictions.to_string(),
                ]);
            }
            let n = results.len() as f64;
            t.row(vec![
                "INT (avg)".into(),
                pct(sums[0] / n),
                pct(sums[1] / n),
                pct(sums[2] / n),
                String::new(),
            ]);
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: ~30% not found, ~21% selected w/o reuse, ~49% with reuse\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig05", &t, results)?,
            })
        }),
    }
}

fn fig08(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for ports in [1u32, 2] {
        for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
            jobs.extend(suite_jobs(
                p,
                &runner::config(mode, ports, RegFileSize::Finite(512)),
            ));
        }
    }
    Experiment {
        name: "fig08",
        title: "Figure 8: L1 D-cache accesses (scal/wb/ci x 1,2 ports)",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 8: L1 D-cache accesses",
                &["bench", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"],
            );
            let mut rows: Vec<Vec<String>> = NAMES.iter().map(|n| vec![n.to_string()]).collect();
            for (gi, chunk) in results.chunks(NAMES.len()).enumerate() {
                debug_assert!(gi < 6);
                for (bi, r) in chunk.iter().enumerate() {
                    rows[bi].push(r.l1d_accesses.to_string());
                }
            }
            for row in rows {
                t.row(row);
            }
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: wide bus cuts accesses; ci cuts further despite extra speculative loads\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig08", &t, results)?,
            })
        }),
    }
}

fn fig09(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for r in REGS {
        for ports in [1u32, 2] {
            for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
                jobs.extend(suite_jobs(p, &runner::config(mode, ports, r)));
            }
        }
    }
    Experiment {
        name: "fig09",
        title: "Figure 9: harmonic-mean IPC vs registers and L1 ports",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 9: harmonic-mean IPC vs registers and L1 ports",
                &["regs", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"],
            );
            let mut chunks = results.chunks(NAMES.len());
            for r in REGS {
                let mut row = vec![r.label()];
                for _ in 0..6 {
                    row.push(f3(hmean_of(chunks.next().expect("6 groups per reg"))));
                }
                t.row(row);
            }
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: ci needs >128 regs; beyond 256 regs ci pulls 14-17.8% ahead of wb\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig09", &t, results)?,
            })
        }),
    }
}

fn fig10(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for mode in [Mode::Scalar, Mode::WideBus, Mode::CiIw, Mode::Ci] {
        jobs.extend(suite_jobs(
            p,
            &runner::config(mode, 1, RegFileSize::Finite(512)),
        ));
    }
    Experiment {
        name: "fig10",
        title: "Figure 10: ci vs in-window-only squash reuse (1 port)",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 10: ci vs in-window-only squash reuse (1 port)",
                &["bench", "scal", "wb", "ci-iw", "ci"],
            );
            let mut rows: Vec<Vec<String>> = NAMES.iter().map(|n| vec![n.to_string()]).collect();
            let mut per_mode = vec![Vec::new(); 4];
            for (mi, chunk) in results.chunks(NAMES.len()).enumerate() {
                for (bi, r) in chunk.iter().enumerate() {
                    rows[bi].push(f3(r.ipc()));
                    per_mode[mi].push(r.ipc());
                }
            }
            for row in rows {
                t.row(row);
            }
            let mut hm = vec!["HMEAN".to_string()];
            for m in &per_mode {
                hm.push(f3(harmonic_mean(m)));
            }
            t.row(hm);
            let base = harmonic_mean(&per_mode[0]);
            let stdout = format!(
                "{}gains over scal: wb {:+.1}%  ci-iw {:+.1}%  ci {:+.1}%   (paper: ci-iw +9.1%, ci +17.8%)\n",
                t.render(),
                (harmonic_mean(&per_mode[1]) / base - 1.0) * 100.0,
                (harmonic_mean(&per_mode[2]) / base - 1.0) * 100.0,
                (harmonic_mean(&per_mode[3]) / base - 1.0) * 100.0,
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "fig10", &t, results)?,
            })
        }),
    }
}

fn fig11(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for r in REGS {
        for mode in [Mode::Scalar, Mode::WideBus] {
            jobs.extend(suite_jobs(p, &runner::config(mode, 1, r)));
        }
        for reps in [1u8, 2, 4, 8] {
            jobs.extend(suite_jobs(
                p,
                &runner::config(Mode::Ci, 1, r).with_replicas(reps),
            ));
        }
    }
    Experiment {
        name: "fig11",
        title: "Figure 11: IPC vs replicas per vectorized instruction",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 11: IPC vs replicas per vectorized instruction",
                &["regs", "sc", "wb", "1rep", "2rep", "4rep", "8rep"],
            );
            let mut chunks = results.chunks(NAMES.len());
            for r in REGS {
                let mut row = vec![r.label()];
                for _ in 0..6 {
                    row.push(f3(hmean_of(chunks.next().expect("6 groups per reg"))));
                }
                t.row(row);
            }
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: 2 or 4 replicas are the sweet spot; 8 helps only with many registers\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig11", &t, results)?,
            })
        }),
    }
}

fn fig12(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for reps in [2u8, 4] {
        jobs.extend(suite_jobs(
            p,
            &runner::config(Mode::Ci, 1, RegFileSize::Finite(512)).with_replicas(reps),
        ));
    }
    Experiment {
        name: "fig12",
        title: "Figure 12: instruction breakdown for 2 and 4 replicas",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 12: instruction breakdown for 2 (left) and 4 (right) replicas",
                &[
                    "bench", "noR/2", "Reuse/2", "specBP/2", "specCI/2", "noR/4", "Reuse/4",
                    "specBP/4", "specCI/4",
                ],
            );
            let mut rows: Vec<Vec<String>> = NAMES.iter().map(|n| vec![n.to_string()]).collect();
            let mut reuse_fraction = [0.0f64; 2];
            for (ri, chunk) in results.chunks(NAMES.len()).enumerate() {
                let mut tot_committed = 0u64;
                let mut tot_reuse = 0u64;
                for (bi, r) in chunk.iter().enumerate() {
                    rows[bi].push((r.committed - r.committed_reuse).to_string());
                    rows[bi].push(r.committed_reuse.to_string());
                    rows[bi].push(r.squashed.to_string());
                    rows[bi].push(r.replicas_created.to_string());
                    tot_committed += r.committed;
                    tot_reuse += r.committed_reuse;
                }
                reuse_fraction[ri] = tot_reuse as f64 / tot_committed as f64;
            }
            for row in rows {
                t.row(row);
            }
            let stdout = format!(
                "{}reuse fraction of committed: 2rep {}  4rep {}   (paper: 12.3% -> 14%)\n",
                t.render(),
                pct(reuse_fraction[0]),
                pct(reuse_fraction[1])
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "fig12", &t, results)?,
            })
        }),
    }
}

fn fig13(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for r in REGS {
        for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
            jobs.extend(suite_jobs(p, &runner::config(mode, 1, r)));
        }
        for positions in [128usize, 256, 512, 768] {
            let mut cfg = runner::config(Mode::Ci, 1, r);
            cfg.mech = MechConfig::paper_with_specmem(positions);
            jobs.extend(suite_jobs(p, &cfg));
        }
    }
    Experiment {
        name: "fig13",
        title: "Figure 13: speculative data memory (ci-h-N)",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 13: speculative data memory (ci-h-N)",
                &[
                    "regs", "scal", "wb", "ci", "ci-h-128", "ci-h-256", "ci-h-512", "ci-h-768",
                ],
            );
            let mut chunks = results.chunks(NAMES.len());
            for r in REGS {
                let mut row = vec![r.label()];
                for _ in 0..7 {
                    row.push(f3(hmean_of(chunks.next().expect("7 groups per reg"))));
                }
                t.row(row);
            }
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}paper: 256 regs + 768 spec positions ~= unbounded monolithic ci\n",
                    t.render()
                ),
                artifacts: table_artifacts(ctx, "fig13", &t, results)?,
            })
        }),
    }
}

fn fig14(p: &Params) -> Experiment {
    let mut jobs = Vec::new();
    for r in REGS {
        for mode in [Mode::Ci, Mode::Vect] {
            jobs.extend(suite_jobs(p, &runner::config(mode, 2, r)));
        }
    }
    Experiment {
        name: "fig14",
        title: "Figure 14: ci vs full-blown dynamic vectorization (2 ports)",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Figure 14: ci vs full-blown dynamic vectorization",
                &["regs", "ci", "vect"],
            );
            let mut activity: Vec<String> = Vec::new();
            let mut chunks = results.chunks(NAMES.len());
            for r in REGS {
                let mut row = vec![r.label()];
                for mode in [Mode::Ci, Mode::Vect] {
                    let runs = chunks.next().expect("2 groups per reg");
                    row.push(f3(hmean_of(runs)));
                    if matches!(r, RegFileSize::Finite(512)) {
                        let wrong: f64 = runs.iter().map(|x| x.wrong_path_fraction()).sum::<f64>()
                            / runs.len() as f64;
                        let reuse: f64 = runs.iter().map(|x| x.reuse_fraction()).sum::<f64>()
                            / runs.len() as f64;
                        activity.push(format!(
                            "{}: wrong-path activity {} of executed work, reuse {} of committed",
                            mode.label(),
                            pct(wrong),
                            pct(reuse)
                        ));
                    }
                }
                t.row(row);
            }
            let mut stdout = t.render();
            for a in activity {
                let _ = writeln!(stdout, "{a}");
            }
            let _ = writeln!(
                stdout,
                "paper: ci wins below ~700 regs; vect only wins unbounded. ci wastes 29.6% vs vect 48.5%"
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "fig14", &t, results)?,
            })
        }),
    }
}

// ---------------------------------------------------------------------------
// Beyond-the-paper experiments
// ---------------------------------------------------------------------------

fn exp_regs(p: &Params) -> Experiment {
    let occ_cfg = |daec: u8| {
        let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Infinite);
        cfg.mech.daec_threshold = daec;
        cfg
    };
    let mut jobs = Vec::new();
    for phase in [256i64, 1024] {
        for daec in [2u8, u8::MAX] {
            jobs.push(JobSpec {
                workload: WorkloadRef::MultiPhase { phase_len: phase },
                cfg: canon(occ_cfg(daec)),
                max_insts: p.max_insts,
                sampling: None,
            });
        }
    }
    jobs.extend(suite_jobs(p, &occ_cfg(2)));
    jobs.extend(suite_jobs(p, &occ_cfg(u8::MAX)));
    Experiment {
        name: "exp_regs",
        title: "S2.4.2: physical registers in use with/without DAEC",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "S2.4.2: physical registers in use (unbounded file, ci)",
                &[
                    "workload",
                    "avg DAEC on",
                    "avg DAEC off",
                    "peak on",
                    "peak off",
                ],
            );
            for (pi, phase) in [256i64, 1024].into_iter().enumerate() {
                let on = results[pi * 2];
                let off = results[pi * 2 + 1];
                t.row(vec![
                    format!("multi-phase/{phase}"),
                    format!("{:.0}", on.avg_regs_in_use()),
                    format!("{:.0}", off.avg_regs_in_use()),
                    on.reg_high_water.to_string(),
                    off.reg_high_water.to_string(),
                ]);
            }
            let runs_on = &results[4..4 + NAMES.len()];
            let runs_off = &results[4 + NAMES.len()..4 + 2 * NAMES.len()];
            let mut avg_on = 0.0;
            let mut avg_off = 0.0;
            for (a, b) in runs_on.iter().zip(runs_off) {
                avg_on += a.avg_regs_in_use();
                avg_off += b.avg_regs_in_use();
            }
            t.row(vec![
                "suite MEAN".into(),
                format!("{:.0}", avg_on / runs_on.len() as f64),
                format!("{:.0}", avg_off / runs_off.len() as f64),
                String::new(),
                String::new(),
            ]);
            let stdout = format!(
                "{}paper: 812 registers without DAEC vs 304 with DAEC (whole-suite averages)\n",
                t.render()
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "exp_regs", &t, results)?,
            })
        }),
    }
}

fn exp_coherence(p: &Params) -> Experiment {
    let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    Experiment {
        name: "exp_coherence",
        title: "S2.4.3: store-coherence conflicts",
        jobs: suite_jobs(p, &cfg),
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "S2.4.3: store-coherence conflicts (ci)",
                &["bench", "stores", "conflicts", "fraction"],
            );
            let mut st = 0u64;
            let mut cf = 0u64;
            for r in results {
                t.row(vec![
                    r.name.clone(),
                    r.stores.to_string(),
                    r.store_conflicts.to_string(),
                    pct(r.store_conflict_fraction()),
                ]);
                st += r.stores;
                cf += r.store_conflicts;
            }
            t.row(vec![
                "TOTAL".into(),
                st.to_string(),
                cf.to_string(),
                pct(if st == 0 { 0.0 } else { cf as f64 / st as f64 }),
            ]);
            Ok(ExperimentOutput {
                stdout: format!("{}paper: fewer than 3% of stores conflict\n", t.render()),
                artifacts: table_artifacts(ctx, "exp_coherence", &t, results)?,
            })
        }),
    }
}

fn ablations(p: &Params) -> Experiment {
    let base = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    let mut ungated = base.clone();
    ungated.mech.mbs_gating = false;
    let mut naive = base.clone();
    naive.mech.full_rcp_heuristic = false;
    let mut first = base.clone();
    first.mech.replicas_first = true;
    let wb = runner::config(Mode::WideBus, 1, RegFileSize::Finite(512));
    let mut big = wb.clone();
    big.hierarchy.l1d.size_bytes = 128 * 1024; // nearest pow-2 >= 64+39 KB

    // Group order (12 suite runs each). The aggregator below indexes
    // these groups, so keep the two lists in sync.
    let mut groups: Vec<SimConfig> = vec![base.clone(), ungated, naive];
    for thr in [1u8, 2, 4, u8::MAX] {
        let mut c = runner::config(Mode::Ci, 1, RegFileSize::Finite(256));
        c.mech.daec_threshold = thr;
        groups.push(c);
    }
    for hr in [0usize, 8, 16, 64] {
        let mut c = runner::config(Mode::Ci, 1, RegFileSize::Finite(256));
        c.mech.replica_headroom = hr;
        groups.push(c);
    }
    groups.push(first);
    groups.push(wb);
    groups.push(big);
    for thr in [4u8, 8, u8::MAX] {
        let mut c = base.clone();
        c.mech.misspec_blacklist = thr;
        groups.push(c);
    }

    let mut jobs = Vec::new();
    for g in &groups {
        jobs.extend(suite_jobs(p, g));
    }
    Experiment {
        name: "ablations",
        title: "Ablations: gating, RCP heuristics, DAEC, headroom, priority, L1 budget, blacklist",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let group = |i: usize| &results[i * NAMES.len()..(i + 1) * NAMES.len()];
            let hm = |i: usize| f3(hmean_of(group(i)));
            let mut stdout = String::new();
            let mut artifacts = Vec::new();
            let mut emit = |name: &str, t: &Table, runs: &[&JobResult]| -> Result<(), String> {
                stdout.push_str(&t.render());
                artifacts.extend(table_artifacts(ctx, name, t, runs)?);
                Ok(())
            };
            let concat = |idxs: &[usize]| -> Vec<&JobResult> {
                idxs.iter()
                    .flat_map(|&i| group(i).iter().copied())
                    .collect()
            };

            let mut t = Table::new("Ablation: MBS hard-branch gating", &["variant", "HM IPC"]);
            t.row(vec!["gated (paper)".into(), hm(0)]);
            t.row(vec!["ungated (every mispredict)".into(), hm(1)]);
            emit("abl_gating", &t, &concat(&[0, 1]))?;

            let mut t = Table::new(
                "Ablation: re-convergence heuristics",
                &["variant", "HM IPC"],
            );
            t.row(vec!["full Fig-2 heuristics".into(), hm(0)]);
            t.row(vec!["naive fall-through".into(), hm(2)]);
            emit("abl_rcp", &t, &concat(&[0, 2]))?;

            let mut t = Table::new(
                "Ablation: DAEC threshold (256 registers, where pressure bites)",
                &["threshold", "HM IPC"],
            );
            for (gi, thr) in [1u8, 2, 4, u8::MAX].into_iter().enumerate() {
                let label = if thr == u8::MAX {
                    "off".to_string()
                } else {
                    thr.to_string()
                };
                t.row(vec![label, hm(3 + gi)]);
            }
            emit("abl_daec", &t, &concat(&[3, 4, 5, 6]))?;

            let mut t = Table::new(
                "Ablation: replica register headroom (256 registers)",
                &["headroom", "HM IPC"],
            );
            for (gi, hr) in [0usize, 8, 16, 64].into_iter().enumerate() {
                t.row(vec![hr.to_string(), hm(7 + gi)]);
            }
            emit("abl_headroom", &t, &concat(&[7, 8, 9, 10]))?;

            let mut t = Table::new(
                "Ablation: replica issue priority (S2.4.1)",
                &["variant", "HM IPC"],
            );
            t.row(vec!["replicas last (paper)".into(), hm(0)]);
            t.row(vec!["replicas first".into(), hm(11)]);
            emit("abl_priority", &t, &concat(&[0, 11]))?;

            // §3.1: "using this amount of extra hardware in, i.e., the
            // L1 data cache only increases about 5% the performance" —
            // spend the 39 KB on a bigger L1 instead of the mechanism.
            let mut t = Table::new(
                "Ablation: spend the mechanism's 39 KB on the L1D instead (S3.1)",
                &["variant", "HM IPC"],
            );
            t.row(vec!["wb, 64 KB L1D".into(), hm(12)]);
            t.row(vec!["wb, 128 KB L1D".into(), hm(13)]);
            t.row(vec!["ci, 64 KB L1D".into(), hm(0)]);
            emit("abl_l1_budget", &t, &concat(&[12, 13, 0]))?;

            let mut t = Table::new(
                "Ablation: mis-speculation blacklist threshold",
                &["threshold", "HM IPC"],
            );
            for (gi, thr) in [4u8, 8, u8::MAX].into_iter().enumerate() {
                let label = if thr == u8::MAX {
                    "off (default)".to_string()
                } else {
                    thr.to_string()
                };
                t.row(vec![label, hm(14 + gi)]);
            }
            emit("abl_blacklist", &t, &concat(&[14, 15, 16]))?;

            Ok(ExperimentOutput { stdout, artifacts })
        }),
    }
}

fn exp_limit(p: &Params) -> Experiment {
    let wb = runner::config(Mode::WideBus, 1, RegFileSize::Finite(512));
    let ci = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    let mut perfect = wb.clone();
    perfect.perfect_branch_prediction = true;
    let mut jobs = Vec::new();
    for name in NAMES {
        jobs.push(named_job(p, name, wb.clone()));
        jobs.push(named_job(p, name, ci.clone()));
        jobs.push(named_job(p, name, perfect.clone()));
    }
    Experiment {
        name: "exp_limit",
        title: "Limit study: ci vs perfect branch prediction",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Limit study: ci vs perfect branch prediction (512 regs, 1 port)",
                &["bench", "wb", "ci", "perfect", "gap closed"],
            );
            let mut wbs = Vec::new();
            let mut cis = Vec::new();
            let mut perf = Vec::new();
            for (ni, name) in NAMES.iter().enumerate() {
                let wb = results[ni * 3];
                let ci = results[ni * 3 + 1];
                let p = results[ni * 3 + 2];
                let closed = if p.ipc() > wb.ipc() {
                    (ci.ipc() - wb.ipc()) / (p.ipc() - wb.ipc())
                } else {
                    0.0
                };
                t.row(vec![
                    name.to_string(),
                    f3(wb.ipc()),
                    f3(ci.ipc()),
                    f3(p.ipc()),
                    format!("{:4.0}%", closed * 100.0),
                ]);
                wbs.push(wb.ipc());
                cis.push(ci.ipc());
                perf.push(p.ipc());
            }
            let (hw, hc, hp) = (
                harmonic_mean(&wbs),
                harmonic_mean(&cis),
                harmonic_mean(&perf),
            );
            t.row(vec![
                "HMEAN".into(),
                f3(hw),
                f3(hc),
                f3(hp),
                format!("{:4.0}%", (hc - hw) / (hp - hw) * 100.0),
            ]);
            let stdout = format!(
                "{}note: on store-heavy kernels (twolf, vortex) 'perfect' can trail the\n\
                 baselines — with no squashes the window fills with in-flight stores and\n\
                 the Table-1 conservative disambiguation (loads wait for all prior store\n\
                 addresses) throttles deep windows harder than shallow mispredicted ones.\n",
                t.render()
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "exp_limit", &t, results)?,
            })
        }),
    }
}

/// The validation tolerance for the perfect-BP what-if projection vs a
/// real oracle-BP simulation, mirrored from `crates/sim/tests/
/// bottleneck.rs` (see DESIGN.md, "Bottleneck analysis", for the
/// measured ratios behind the choice). The projection re-walks the
/// recorded DAG with squash windows zeroed; the oracle re-times the
/// whole run. The gate is asymmetric because the two failure modes are
/// not symmetric:
///
/// - `ratio > HIGH` would *falsify* the speed limit — the real
///   oracle-BP machine went faster than the projection claims is
///   possible — so the upper bound is tight (measured max across the
///   12 kernels at CFIR_INSTS=20000: gzip at 0.885).
/// - `ratio < LOW` only means the projection is optimistic, a known
///   model limitation: it keeps each instruction's *observed* latency
///   from the polluted run, and on branchy kernels the squashed wrong
///   path prefetches right-path cache lines, shrinking the observed
///   latencies the oracle machine actually pays (worst: vortex 0.159,
///   twolf 0.180). The lower bound is therefore a loose sanity floor.
const BOTTLENECK_ORACLE_RATIO_HIGH: f64 = 1.25;
const BOTTLENECK_ORACLE_RATIO_LOW: f64 = 0.125;

/// The instruction budget cap for bottleneck jobs: lifecycle recording
/// keeps one record per dynamic instruction (unbounded ring, so
/// `dropped` stays 0), so the budget is clamped to keep the 48-run
/// matrix inside a sane memory envelope.
const BOTTLENECK_MAX_INSTS: u64 = 30_000;

fn exp_bottleneck(p: &Params) -> Experiment {
    let p = &Params {
        spec: p.spec,
        max_insts: p.max_insts.min(BOTTLENECK_MAX_INSTS),
    };
    let modes = [Mode::Scalar, Mode::WideBus, Mode::Ci, Mode::Vect];
    let mut jobs = Vec::new();
    for mode in modes {
        let mut cfg = runner::config(mode, 1, RegFileSize::Finite(512));
        cfg.record_lifecycle = true;
        jobs.extend(suite_jobs(p, &cfg));
    }
    // The oracle runs: the same wb machine with fetch-side perfect
    // branch prediction, no lifecycle — the measuring stick for the
    // perfect_bp projection.
    let mut oracle = runner::config(Mode::WideBus, 1, RegFileSize::Finite(512));
    oracle.perfect_branch_prediction = true;
    jobs.extend(suite_jobs(p, &oracle));
    Experiment {
        name: "exp_bottleneck",
        title: "Bottleneck: CPI stacks, critical paths and what-if speed limits",
        jobs,
        aggregate: Box::new(move |ctx, results| {
            use cfir_obs::critpath::{CPI_GROUPS, SCENARIOS};
            let parse = |r: &JobResult| cfir_obs::json::parse(&r.snapshot);
            let scen_keys: Vec<&str> = SCENARIOS.iter().map(|&(k, _)| k).collect();
            let mut header: Vec<&str> = vec!["bench", "mode", "cycles"];
            header.extend(CPI_GROUPS.iter().copied());
            header.extend(scen_keys.iter().copied());
            let mut t = Table::new("Bottleneck: CPI stacks and what-if speed limits", &header);
            // (bench -> perfect_bp projected cycles) from the wb rows.
            let mut projected_bp = vec![0u64; NAMES.len()];
            let mut measured_wb = vec![0u64; NAMES.len()];
            for (mi, mode) in modes.iter().enumerate() {
                for (bi, bench) in NAMES.iter().enumerate() {
                    let r = results[mi * NAMES.len() + bi];
                    let v = parse(r)?;
                    let dropped = v
                        .get("lifecycle")
                        .and_then(|lc| lc.get("dropped"))
                        .and_then(|d| d.as_u64())
                        .unwrap_or(0);
                    if dropped > 0 {
                        return Err(format!(
                            "{bench}/{}: {dropped} lifecycle records dropped — \
                             the bottleneck DAG is incomplete",
                            mode.label()
                        ));
                    }
                    let b = v
                        .get("bottleneck")
                        .ok_or_else(|| format!("{bench}/{}: no bottleneck object", mode.label()))?;
                    let cycles = v.get("cycles").and_then(|x| x.as_u64()).unwrap_or(0);
                    let mut row = vec![bench.to_string(), mode.label().into(), cycles.to_string()];
                    for key in CPI_GROUPS {
                        let slots = b
                            .get("cpi_stack")
                            .and_then(|s| s.get(key))
                            .and_then(|x| x.as_u64())
                            .unwrap_or(0);
                        row.push(slots.to_string());
                    }
                    for &scen in &scen_keys {
                        let projected = b
                            .get("whatif")
                            .and_then(|w| w.as_arr())
                            .and_then(|rows| {
                                rows.iter().find(|x| {
                                    x.get("scenario").and_then(|s| s.as_str()) == Some(scen)
                                })
                            })
                            .and_then(|x| x.get("projected_cycles"))
                            .and_then(|x| x.as_u64())
                            .ok_or_else(|| {
                                format!("{bench}/{}: missing what-if {scen}", mode.label())
                            })?;
                        if projected > cycles {
                            return Err(format!(
                                "{bench}/{}: what-if {scen} projects {projected} cycles, \
                                 above the measured {cycles} — not a speed limit",
                                mode.label()
                            ));
                        }
                        if scen == "perfect_bp" && *mode == Mode::WideBus {
                            projected_bp[bi] = projected;
                            measured_wb[bi] = cycles;
                        }
                        row.push(projected.to_string());
                    }
                    t.row(row);
                }
            }
            // Validation: the perfect-BP projection against the oracle
            // machine, per kernel, gated by the documented tolerance.
            let mut vt = Table::new(
                "Validation: perfect-BP projection vs oracle-BP simulation (wb)",
                &["bench", "measured", "projected_bp", "oracle_bp", "ratio"],
            );
            for (bi, bench) in NAMES.iter().enumerate() {
                let o = results[modes.len() * NAMES.len() + bi];
                let v = parse(o)?;
                let oracle = v.get("cycles").and_then(|x| x.as_u64()).unwrap_or(0);
                let ratio = projected_bp[bi] as f64 / oracle.max(1) as f64;
                vt.row(vec![
                    bench.to_string(),
                    measured_wb[bi].to_string(),
                    projected_bp[bi].to_string(),
                    oracle.to_string(),
                    format!("{ratio:.3}"),
                ]);
                let (lo, hi) = (BOTTLENECK_ORACLE_RATIO_LOW, BOTTLENECK_ORACLE_RATIO_HIGH);
                if !(lo..=hi).contains(&ratio) {
                    return Err(format!(
                        "{bench}: perfect-BP projection {} vs oracle {oracle} \
                         (ratio {ratio:.3}) outside documented tolerance [{lo}, {hi}]",
                        projected_bp[bi]
                    ));
                }
            }
            let mut artifacts = table_artifacts(ctx, "exp_bottleneck", &t, results)?;
            artifacts.extend(table_artifacts(ctx, "exp_bottleneck_validation", &vt, &[])?);
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}{}every what-if bounds its measured run; perfect-BP projections \
                     validated against real oracle runs.\n",
                    t.render(),
                    vt.render()
                ),
                artifacts,
            })
        }),
    }
}

/// Minimum aggregate static/dynamic agreement the CIDI oracle matrix
/// must reach: across every (kernel, mode) run, at least this fraction
/// of scored reuse outcomes must match the static verdict.
const CIDI_MIN_AGREEMENT: f64 = 0.85;

fn exp_cidi(p: &Params) -> Experiment {
    let modes = [Mode::Scalar, Mode::WideBus, Mode::Ci, Mode::Vect];
    let mut jobs = Vec::new();
    for mode in modes {
        let cfg = runner::config(mode, 1, RegFileSize::Finite(512));
        jobs.extend(suite_jobs(p, &cfg));
    }
    let spec = p.spec;
    Experiment {
        name: "exp_cidi",
        title: "CIDI oracle: static dataflow verdicts vs runtime reuse outcomes",
        jobs,
        aggregate: Box::new(move |ctx, results| {
            use cfir_analyze::LoadClass;
            // Static side, recomputed per kernel from the same programs
            // the jobs ran: the mean CIDI fraction of its hammocks, and
            // whether any load is pointer-chasing. Irregular kernels
            // are exempt from the zero-failure gate — the may-alias
            // channel deliberately clobbers load-derived addresses, so
            // their CI loads are never classified CIDI in the first
            // place, and stray attributions must not fail the suite.
            let mut static_frac = vec![0.0f64; NAMES.len()];
            let mut irregular = vec![false; NAMES.len()];
            for (bi, name) in NAMES.iter().enumerate() {
                let w = cfir_workloads::by_name(name, spec)
                    .ok_or_else(|| format!("unknown benchmark {name}"))?;
                let a = cfir_analyze::analyze(&w.prog);
                static_frac[bi] = a.cidi.mean_cidi_fraction();
                irregular[bi] = a
                    .strides
                    .loads
                    .iter()
                    .any(|&(_, c)| c == LoadClass::Irregular);
            }
            let mut t = Table::new(
                "CIDI oracle: static verdicts vs runtime reuse outcomes",
                &[
                    "bench",
                    "mode",
                    "cidi_checked",
                    "cidi_agreed",
                    "agreement",
                    "cidi_pred_failures",
                    "cidd_clean_reuses",
                    "mechanism_repairs",
                    "unclassified",
                ],
            );
            let mut total_checked = 0u64;
            let mut total_agreed = 0u64;
            let mut pred_failures = vec![0u64; NAMES.len()];
            for (mi, mode) in modes.iter().enumerate() {
                for (bi, bench) in NAMES.iter().enumerate() {
                    let r = results[mi * NAMES.len() + bi];
                    let v = cfir_obs::json::parse(&r.snapshot)?;
                    let d = v.get("dataflow_oracle").ok_or_else(|| {
                        format!("{bench}/{}: no dataflow_oracle object", mode.label())
                    })?;
                    let g = |k: &str| d.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                    let (checked, agreed) = (g("cidi_checked"), g("cidi_agreed"));
                    total_checked += checked;
                    total_agreed += agreed;
                    pred_failures[bi] += g("cidi_predicted_failures");
                    t.row(vec![
                        bench.to_string(),
                        mode.label().into(),
                        checked.to_string(),
                        agreed.to_string(),
                        f3(agreed as f64 / checked.max(1) as f64),
                        g("cidi_predicted_failures").to_string(),
                        g("cidd_clean_reuses").to_string(),
                        g("mechanism_repairs").to_string(),
                        g("unclassified").to_string(),
                    ]);
                }
            }
            // Validation: per-kernel static fraction, the zero-failure
            // gate verdict, and the matrix-wide agreement gate.
            let mut vt = Table::new(
                "Validation: static CIDI fraction and the zero-failure gate",
                &[
                    "bench",
                    "loads",
                    "mean_cidi_fraction",
                    "pred_failures",
                    "gate",
                ],
            );
            for (bi, bench) in NAMES.iter().enumerate() {
                vt.row(vec![
                    bench.to_string(),
                    if irregular[bi] {
                        "irregular"
                    } else {
                        "regular"
                    }
                    .into(),
                    f3(static_frac[bi]),
                    pred_failures[bi].to_string(),
                    if irregular[bi] { "exempt" } else { "gated" }.into(),
                ]);
                if !irregular[bi] && pred_failures[bi] > 0 {
                    return Err(format!(
                        "{bench}: {} CIDI-predicted reuses failed validation on a kernel \
                         with no pointer-chasing loads — the static classification is wrong",
                        pred_failures[bi]
                    ));
                }
            }
            if total_checked == 0 {
                return Err("no reuse outcomes were scored anywhere in the matrix".into());
            }
            let agreement = total_agreed as f64 / total_checked as f64;
            if agreement < CIDI_MIN_AGREEMENT {
                return Err(format!(
                    "static/dynamic agreement {agreement:.3} ({total_agreed}/{total_checked}) \
                     below the {CIDI_MIN_AGREEMENT} gate"
                ));
            }
            let mut artifacts = table_artifacts(ctx, "exp_cidi", &t, results)?;
            artifacts.extend(table_artifacts(ctx, "exp_cidi_validation", &vt, &[])?);
            Ok(ExperimentOutput {
                stdout: format!(
                    "{}{}aggregate agreement {:.1}% ({total_agreed}/{total_checked} outcomes); \
                     zero CIDI-predicted failures on regular-access kernels.\n",
                    t.render(),
                    vt.render(),
                    agreement * 100.0
                ),
                artifacts,
            })
        }),
    }
}

/// Accuracy gate for the sampled estimator: per kernel, the sampled
/// mean must land within ±3% of the full detailed run, **or** the full
/// value must lie inside the sampled 95% confidence interval.
const SAMPLING_MAX_REL_ERROR: f64 = 0.03;

/// Fixed run size of the `exp_sampling` accuracy check — deliberately
/// independent of `CFIR_INSTS` so the baselined CSV and the job
/// fingerprints are stable across environments.
const SAMPLING_FULL_INSTS: u64 = 150_000;
/// Sampling parameters of the gate: 12 windows across the 150k budget.
/// The warmup is sized for the slowest-forming detailed state — the
/// SRSMT reuse table, which only fills from observed mispredictions —
/// not just for the ROB/LSQ; a short warmup underestimates reuse.
const SAMPLING_PERIOD: u64 = 12_500;
const SAMPLING_WARMUP: u64 = 3_500;
const SAMPLING_WINDOW: u64 = 4_000;

fn exp_sampling(p: &Params) -> Experiment {
    let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    let mut jobs = Vec::new();
    for n in NAMES {
        let mut full = named_job(p, n, cfg.clone());
        full.max_insts = SAMPLING_FULL_INSTS;
        let mut sampled = full.clone();
        sampled.sampling = Some(cfir_harness::SamplingParams {
            period: SAMPLING_PERIOD,
            warmup: SAMPLING_WARMUP,
            window: SAMPLING_WINDOW,
        });
        jobs.push(full);
        jobs.push(sampled);
    }
    Experiment {
        name: "exp_sampling",
        title: "Statistical sampling: sampled estimates vs full detailed runs",
        jobs,
        aggregate: Box::new(|ctx, results| {
            let mut t = Table::new(
                "Sampling accuracy: checkpointed windows vs full detailed (ci, 512 regs)",
                &[
                    "bench",
                    "windows",
                    "detail%",
                    "full_IPC",
                    "samp_IPC",
                    "ipc_hw95",
                    "ipc_err%",
                    "full_reuse",
                    "samp_reuse",
                    "reuse_hw95",
                    "samp_ci_expl",
                    "gate",
                ],
            );
            // `mean ± hw` vs the full-run reference: pass on relative
            // error or on CI coverage; anything else fails the suite.
            let check = |bench: &str, metric: &str, full: f64, mean: f64, hw: f64, n: u64| {
                let err = if full.abs() < 1e-12 {
                    if mean.abs() < 1e-12 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (mean - full).abs() / full.abs()
                };
                let inside = n >= 2 && full >= mean - hw && full <= mean + hw;
                if err <= SAMPLING_MAX_REL_ERROR || inside {
                    Ok(err)
                } else {
                    Err(format!(
                        "{bench}: sampled {metric} {mean:.4} vs full {full:.4} — error \
                         {:.1}% exceeds ±{:.0}% and the 95% CI (±{hw:.4}, n={n}) \
                         does not cover the full value",
                        err * 100.0,
                        SAMPLING_MAX_REL_ERROR * 100.0
                    ))
                }
            };
            for (bi, bench) in NAMES.iter().enumerate() {
                let full = results[2 * bi];
                let samp = results[2 * bi + 1];
                let v = cfir_obs::json::parse(&samp.snapshot)?;
                let s = v
                    .get("sampling")
                    .ok_or_else(|| format!("{bench}: sampled snapshot has no sampling object"))?;
                let est = |k: &str| -> Result<(u64, f64, f64), String> {
                    let e = s
                        .get(k)
                        .ok_or_else(|| format!("{bench}: sampling object missing `{k}`"))?;
                    let f = |f: &str| e.get(f).and_then(|x| x.as_f64()).unwrap_or(0.0);
                    let n = e.get("n").and_then(|x| x.as_u64()).unwrap_or(0);
                    Ok((n, f("mean"), f("half_width")))
                };
                let (ni, ipc_mean, ipc_hw) = est("ipc")?;
                let (nr, reuse_mean, reuse_hw) = est("reuse_rate")?;
                let (_, ci_mean, _) = est("ci_exploited")?;
                let detailed = s
                    .get("detailed_insts")
                    .and_then(|x| x.as_u64())
                    .unwrap_or(0);
                let ipc_err = check(bench, "IPC", full.ipc(), ipc_mean, ipc_hw, ni)?;
                check(
                    bench,
                    "reuse rate",
                    full.reuse_fraction(),
                    reuse_mean,
                    reuse_hw,
                    nr,
                )?;
                t.row(vec![
                    bench.to_string(),
                    ni.to_string(),
                    format!(
                        "{:.1}",
                        100.0 * detailed as f64 / SAMPLING_FULL_INSTS as f64
                    ),
                    f3(full.ipc()),
                    f3(ipc_mean),
                    f3(ipc_hw),
                    format!("{:.2}", ipc_err * 100.0),
                    f3(full.reuse_fraction()),
                    f3(reuse_mean),
                    f3(reuse_hw),
                    f3(ci_mean),
                    "ok".into(),
                ]);
            }
            let stdout = format!(
                "{}gate: sampled IPC and reuse rate within ±{:.0}% of the full run \
                 (or full value inside the 95% CI) on all {} kernels.\n",
                t.render(),
                SAMPLING_MAX_REL_ERROR * 100.0,
                NAMES.len()
            );
            Ok(ExperimentOutput {
                stdout,
                artifacts: table_artifacts(ctx, "exp_sampling", &t, results)?,
            })
        }),
    }
}

fn exp_warmup(p: &Params) -> Experiment {
    let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    cfg.interval_cycles = 10_000;
    Experiment {
        name: "exp_warmup",
        title: "Warm-up/stationarity: interval time series (bzip2, gzip)",
        jobs: ["bzip2", "gzip"]
            .iter()
            .map(|n| named_job(p, n, cfg.clone()))
            .collect(),
        aggregate: Box::new(|ctx, results| {
            let mut stdout = String::new();
            let mut artifacts = Vec::new();
            for r in results {
                let mut t = Table::new(
                    format!("warm-up: {} (ci, 512 regs)", r.name),
                    &["cycle", "committed", "interval IPC", "cum. reuse%"],
                );
                for s in &r.intervals {
                    t.row(vec![
                        s.cycle.to_string(),
                        s.committed.to_string(),
                        format!("{:.3}", s.interval_ipc),
                        format!(
                            "{:.1}%",
                            100.0 * s.committed_reuse as f64 / s.committed.max(1) as f64
                        ),
                    ]);
                }
                stdout.push_str(&t.render());
                artifacts.extend(table_artifacts(
                    ctx,
                    &format!("exp_warmup_{}", r.name),
                    &t,
                    &[r],
                )?);
            }
            stdout
                .push_str("interval IPC should be flat after the first interval (cold caches).\n");
            Ok(ExperimentOutput { stdout, artifacts })
        }),
    }
}

/// The generic design-space sweeper as an experiment: cartesian
/// product of modes × register sizes × ports × replica counts over the
/// suite (or one benchmark).
pub fn sweep_experiment(
    p: &Params,
    modes: Vec<Mode>,
    regs: Vec<RegFileSize>,
    ports: Vec<u32>,
    replicas: Vec<u8>,
    bench: Option<String>,
) -> Experiment {
    let mut jobs = Vec::new();
    let mut points = Vec::new();
    for &mode in &modes {
        for &r in &regs {
            for &po in &ports {
                for &reps in &replicas {
                    let cfg = runner::config(mode, po, r).with_replicas(reps);
                    match &bench {
                        Some(name) => jobs.push(named_job(p, name, cfg)),
                        None => jobs.extend(suite_jobs(p, &cfg)),
                    }
                    points.push((mode, r, po, reps));
                }
            }
        }
    }
    let group = if bench.is_some() { 1 } else { NAMES.len() };
    Experiment {
        name: "sweep",
        title: "Design-space sweep (modes x regs x ports x replicas)",
        jobs,
        aggregate: Box::new(move |ctx, results| {
            let mut t = Table::new(
                "sweep",
                &[
                    "mode", "regs", "ports", "replicas", "IPC", "reuse%", "mispred%",
                ],
            );
            for (i, (mode, r, po, reps)) in points.iter().enumerate() {
                let runs = &results[i * group..(i + 1) * group];
                let (ipc, reuse, mr) = if group == 1 {
                    let s = runs[0];
                    (s.ipc(), s.reuse_fraction(), s.mispredict_rate())
                } else {
                    let reuse =
                        runs.iter().map(|x| x.reuse_fraction()).sum::<f64>() / runs.len() as f64;
                    let mr =
                        runs.iter().map(|x| x.mispredict_rate()).sum::<f64>() / runs.len() as f64;
                    (hmean_of(runs), reuse, mr)
                };
                t.row(vec![
                    mode.label().into(),
                    r.label(),
                    po.to_string(),
                    reps.to_string(),
                    f3(ipc),
                    format!("{:.1}", reuse * 100.0),
                    format!("{:.1}", mr * 100.0),
                ]);
            }
            Ok(ExperimentOutput {
                stdout: t.render(),
                artifacts: table_artifacts(ctx, "sweep", &t, results)?,
            })
        }),
    }
}

fn sweep_default(p: &Params) -> Experiment {
    sweep_experiment(
        p,
        vec![Mode::WideBus, Mode::Ci],
        vec![RegFileSize::Finite(512)],
        vec![1],
        vec![4],
        None,
    )
}

/// The five-mode smoke check on one benchmark, with the interval time
/// series sampled (the snapshot bundle is the perf-gate baseline).
pub fn smoke_experiment(p: &Params, bench: &str) -> Experiment {
    let mut jobs = Vec::new();
    for mode in [
        Mode::Scalar,
        Mode::WideBus,
        Mode::CiIw,
        Mode::Ci,
        Mode::Vect,
    ] {
        let mut cfg = runner::config(mode, 1, RegFileSize::Finite(512));
        cfg.interval_cycles = 10_000;
        // Whole-run lifecycle recording: the smoke snapshots carry the
        // full bottleneck object (critical path, what-if projections)
        // so CI can sanity-check it without extra jobs.
        cfg.record_lifecycle = true;
        jobs.push(named_job(p, bench, cfg));
    }
    let name = bench.to_string();
    Experiment {
        name: "smoke",
        title: "Smoke: one benchmark, all five machine modes",
        jobs,
        aggregate: Box::new(move |ctx, results| {
            let mut t = Table::new(
                format!("smoke: {name}"),
                &[
                    "mode",
                    "IPC",
                    "mispred%",
                    "reuse%",
                    "valfail",
                    "commitfail",
                    "replicas",
                    "squashed",
                    "l1dacc",
                    "l1dmiss",
                    "ev(nf/sel/reuse)",
                ],
            );
            for s in results {
                t.row(vec![
                    s.mode_label.clone(),
                    f3(s.ipc()),
                    pct(s.mispredict_rate()),
                    pct(s.reuse_fraction()),
                    s.validation_failures.to_string(),
                    s.commit_check_failures.to_string(),
                    s.replicas_executed.to_string(),
                    s.squashed.to_string(),
                    s.l1d_accesses.to_string(),
                    s.l1d_misses.to_string(),
                    format!("{}/{}/{}", s.ev_not_found, s.ev_selected, s.ev_reuse),
                ]);
            }
            let artifacts = if ctx.emit_json {
                let labeled: Vec<(String, String)> = results
                    .iter()
                    .map(|r| (format!("{}/{}", r.name, r.mode_label), r.snapshot.clone()))
                    .collect();
                vec![Artifact {
                    rel_path: "smoke.json".into(),
                    contents: report_json_checked(&t, &labeled)?,
                }]
            } else {
                Vec::new()
            };
            Ok(ExperimentOutput {
                stdout: t.render(),
                artifacts,
            })
        }),
    }
}

// ---------------------------------------------------------------------------
// Registry, profiles, and the standalone-wrapper entry point
// ---------------------------------------------------------------------------

/// Names of every registered experiment, in canonical (suite) order.
pub const EXPERIMENT_NAMES: [&str; 20] = [
    "table1",
    "fig04",
    "fig05",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "exp_regs",
    "exp_coherence",
    "ablations",
    "exp_limit",
    "exp_warmup",
    "exp_bottleneck",
    "exp_cidi",
    "exp_sampling",
    "sweep",
    "smoke",
];

/// Build one experiment by name (`sweep` and `smoke` get their
/// defaults: the committed-artifact sweep point, benchmark `bzip2`).
pub fn by_name(p: &Params, name: &str) -> Option<Experiment> {
    Some(match name {
        "table1" => table1(p),
        "fig04" => fig04(p),
        "fig05" => fig05(p),
        "fig08" => fig08(p),
        "fig09" => fig09(p),
        "fig10" => fig10(p),
        "fig11" => fig11(p),
        "fig12" => fig12(p),
        "fig13" => fig13(p),
        "fig14" => fig14(p),
        "exp_regs" => exp_regs(p),
        "exp_coherence" => exp_coherence(p),
        "ablations" => ablations(p),
        "exp_limit" => exp_limit(p),
        "exp_warmup" => exp_warmup(p),
        "exp_bottleneck" => exp_bottleneck(p),
        "exp_cidi" => exp_cidi(p),
        "exp_sampling" => exp_sampling(p),
        "sweep" => sweep_default(p),
        "smoke" => smoke_experiment(p, "bzip2"),
        _ => return None,
    })
}

/// Resolve a profile name to its experiment list.
///
/// * `smoke` — the CI fast path: `table1` (config drift gate) plus the
///   five-mode smoke matrix (perf gate baseline).
/// * `figures` — Table 1 and Figures 4–14.
/// * `ablations` — the seven design-choice ablations.
/// * `extras` — the beyond-the-paper experiments.
/// * `all` — everything, in canonical order.
pub fn profile(name: &str) -> Option<Vec<&'static str>> {
    Some(match name {
        "smoke" => vec!["table1", "smoke"],
        "figures" => vec![
            "table1", "fig04", "fig05", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14",
        ],
        "ablations" => vec!["ablations"],
        "extras" => vec![
            "exp_regs",
            "exp_coherence",
            "exp_limit",
            "exp_warmup",
            "exp_bottleneck",
            "exp_cidi",
            "exp_sampling",
            "sweep",
        ],
        "all" => EXPERIMENT_NAMES.to_vec(),
        _ => return None,
    })
}

/// Entry point for the thin per-figure wrapper binaries: run one named
/// experiment through the harness with the legacy flags (`--emit-json`
/// plus the new `--jobs N` / `--resume`). Exits non-zero when any job
/// or the aggregation failed.
pub fn standalone_main(name: &str) -> ! {
    let mut opts = SuiteOptions {
        emit_json: false,
        ..SuiteOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit-json" => opts.emit_json = true,
            "--resume" => opts.resume = true,
            "--jobs" => {
                opts.jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs wants a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other} (try --emit-json, --jobs N, --resume)");
                std::process::exit(2);
            }
        }
    }
    let p = Params::from_env();
    let exp = by_name(&p, name).expect("registered experiment");
    let report = run_suite(vec![exp], &opts);
    eprintln!("{}", report.summary_line());
    std::process::exit(if report.all_ok() { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        let p = Params {
            spec: WorkloadSpec::default(),
            max_insts: 1000,
        };
        for name in EXPERIMENT_NAMES {
            let e = by_name(&p, name).expect(name);
            assert_eq!(e.name, name);
        }
        assert!(by_name(&p, "nonsense").is_none());
    }

    #[test]
    fn profiles_resolve_to_registered_names() {
        for prof in ["smoke", "figures", "ablations", "extras", "all"] {
            let names = profile(prof).expect(prof);
            assert!(!names.is_empty());
            let p = Params {
                spec: WorkloadSpec::default(),
                max_insts: 1000,
            };
            for n in names {
                assert!(by_name(&p, n).is_some(), "{prof} references {n}");
            }
        }
        assert!(profile("bogus").is_none());
        assert_eq!(profile("all").unwrap().len(), EXPERIMENT_NAMES.len());
    }

    #[test]
    fn job_counts_match_the_serial_binaries() {
        let p = Params {
            spec: WorkloadSpec::default(),
            max_insts: 1000,
        };
        let count = |n: &str| by_name(&p, n).unwrap().jobs.len();
        assert_eq!(count("table1"), 0);
        assert_eq!(count("fig04"), 3 * 12);
        assert_eq!(count("fig05"), 12);
        assert_eq!(count("fig08"), 2 * 3 * 12);
        assert_eq!(count("fig09"), 5 * 2 * 3 * 12);
        assert_eq!(count("fig10"), 4 * 12);
        assert_eq!(count("fig11"), 5 * 6 * 12);
        assert_eq!(count("fig12"), 2 * 12);
        assert_eq!(count("fig13"), 5 * 7 * 12);
        assert_eq!(count("fig14"), 5 * 2 * 12);
        assert_eq!(count("exp_regs"), 4 + 2 * 12);
        assert_eq!(count("exp_coherence"), 12);
        assert_eq!(count("ablations"), 17 * 12);
        assert_eq!(count("exp_limit"), 3 * 12);
        assert_eq!(count("exp_warmup"), 2);
        assert_eq!(count("exp_bottleneck"), 4 * 12 + 12);
        assert_eq!(count("exp_cidi"), 4 * 12);
        assert_eq!(count("exp_sampling"), 2 * 12);
        assert_eq!(count("sweep"), 2 * 12);
        assert_eq!(count("smoke"), 5);
    }

    #[test]
    fn fingerprints_are_env_independent_after_build() {
        // Two matrices built with the same Params must produce the same
        // job keys even if the environment changes in between — the
        // env is read once, in Params::from_env.
        let p = Params {
            spec: WorkloadSpec::default(),
            max_insts: 5000,
        };
        let a = by_name(&p, "fig05").unwrap();
        let b = by_name(&p, "fig05").unwrap();
        let ka: Vec<u64> = a.jobs.iter().map(|j| j.key()).collect();
        let kb: Vec<u64> = b.jobs.iter().map(|j| j.key()).collect();
        assert_eq!(ka, kb);
    }
}
