//! Shared simulation-running helpers for the figure binaries.

use cfir_sim::{Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, Workload, WorkloadSpec, NAMES};
use std::sync::Mutex;

/// Per-run JSON snapshots accumulated while `--emit-json` is in effect
/// (one [`cfir_sim::run_json`] document per `run_one` call). Drained by
/// [`crate::report::write_csv`] into `results/<name>.json`, or directly
/// via [`take_snapshots`].
static SNAPSHOTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Drain every snapshot recorded since the last call.
pub fn take_snapshots() -> Vec<String> {
    std::mem::take(&mut *SNAPSHOTS.lock().unwrap())
}

/// Committed-instruction budget per (benchmark, configuration) run.
/// Override with `CFIR_INSTS`.
pub fn max_insts() -> u64 {
    std::env::var("CFIR_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}

/// Workload generation parameters (env-overridable).
pub fn default_spec() -> WorkloadSpec {
    let mut s = WorkloadSpec::default();
    if let Some(e) = std::env::var("CFIR_ELEMS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        s.elems = e;
    }
    if let Some(x) = std::env::var("CFIR_SEED").ok().and_then(|v| v.parse().ok()) {
        s.seed = x;
    }
    s
}

/// Names plus specs for the whole suite.
pub fn suite_specs() -> Vec<(&'static str, WorkloadSpec)> {
    NAMES.iter().map(|n| (*n, default_spec())).collect()
}

/// One (benchmark, config) result.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Config label (e.g. "ci2p").
    pub label: String,
    /// Collected statistics.
    pub stats: SimStats,
}

/// Run one workload under one configuration.
pub fn run_one(w: &Workload, mut cfg: SimConfig) -> SimStats {
    cfg.max_insts = max_insts();
    cfg.cosim_check = false; // benchmarking: the oracle is exercised in tests
    if crate::report::emit_json_requested() && cfg.interval_cycles == 0 {
        // Snapshots should carry the interval time series; callers that
        // set their own cadence keep it.
        cfg.interval_cycles = 10_000;
    }
    let label = cfg.mode.label();
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    if crate::report::emit_json_requested() {
        SNAPSHOTS
            .lock()
            .unwrap()
            .push(cfir_sim::run_json(w.name, label, &p.stats));
    }
    p.stats.clone()
}

/// Run every benchmark in the suite under `cfg` (same config each).
pub fn run_mode(cfg: &SimConfig, label: &str) -> Vec<RunRow> {
    suite_specs()
        .into_iter()
        .map(|(name, spec)| {
            let w = by_name(name, spec).expect("known benchmark");
            RunRow {
                name,
                label: label.to_string(),
                stats: run_one(&w, cfg.clone()),
            }
        })
        .collect()
}

/// Convenience: the paper's standard config for a mode/ports/regs point.
pub fn config(mode: Mode, dports: u32, regs: RegFileSize) -> SimConfig {
    SimConfig::paper_baseline()
        .with_mode(mode)
        .with_dports(dports)
        .with_regs(regs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_commits_the_budget() {
        std::env::remove_var("CFIR_INSTS");
        let w = by_name(
            "bzip2",
            WorkloadSpec {
                iters: 1 << 30,
                elems: 1024,
                seed: 1,
            },
        )
        .unwrap();
        let mut cfg = config(Mode::Scalar, 1, RegFileSize::Finite(256));
        cfg.max_insts = 20_000;
        let mut p = cfir_sim::Pipeline::new(&w.prog, w.mem.clone(), cfg);
        p.run();
        assert!(p.stats.committed >= 20_000);
        assert!(p.stats.ipc() > 0.1);
    }
}
