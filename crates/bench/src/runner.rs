//! Shared simulation-running helpers.
//!
//! The declarative experiment matrix in [`crate::experiments`] is the
//! primary way the evaluation runs now (via `cfir-suite`); these
//! helpers remain for ad-hoc runs and for building that matrix
//! (environment-derived run sizes, the standard config constructor).
//!
//! Snapshots are threaded through return values — [`run_one`] returns
//! the `run_json` document alongside the statistics — so concurrent
//! callers never share mutable state.

use cfir_sim::{Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, Workload, WorkloadSpec, NAMES};

/// Committed-instruction budget per (benchmark, configuration) run.
/// Override with `CFIR_INSTS`.
pub fn max_insts() -> u64 {
    std::env::var("CFIR_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}

/// Workload generation parameters (env-overridable).
pub fn default_spec() -> WorkloadSpec {
    let mut s = WorkloadSpec::default();
    if let Some(e) = std::env::var("CFIR_ELEMS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        s.elems = e;
    }
    if let Some(x) = std::env::var("CFIR_SEED").ok().and_then(|v| v.parse().ok()) {
        s.seed = x;
    }
    s
}

/// Names plus specs for the whole suite.
pub fn suite_specs() -> Vec<(&'static str, WorkloadSpec)> {
    NAMES.iter().map(|n| (*n, default_spec())).collect()
}

/// One (benchmark, config) result.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Config label (e.g. "ci2p").
    pub label: String,
    /// Collected statistics.
    pub stats: SimStats,
    /// The full `cfir_sim::run_json` snapshot for this run.
    pub snapshot: String,
}

/// Run one workload under one configuration; returns the statistics
/// plus the per-run JSON snapshot (no shared accumulator).
pub fn run_one(w: &Workload, mut cfg: SimConfig) -> (SimStats, String) {
    cfg.max_insts = max_insts();
    cfg.cosim_check = false; // benchmarking: the oracle is exercised in tests
    let label = cfg.mode.label();
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    let snapshot = cfir_sim::run_json(w.name, label, &p.stats);
    (p.stats.clone(), snapshot)
}

/// Run every benchmark in the suite under `cfg` (same config each).
pub fn run_mode(cfg: &SimConfig, label: &str) -> Vec<RunRow> {
    suite_specs()
        .into_iter()
        .map(|(name, spec)| {
            let w = by_name(name, spec).expect("known benchmark");
            let (stats, snapshot) = run_one(&w, cfg.clone());
            RunRow {
                name,
                label: label.to_string(),
                stats,
                snapshot,
            }
        })
        .collect()
}

/// Convenience: the paper's standard config for a mode/ports/regs point.
pub fn config(mode: Mode, dports: u32, regs: RegFileSize) -> SimConfig {
    SimConfig::paper_baseline()
        .with_mode(mode)
        .with_dports(dports)
        .with_regs(regs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_commits_the_budget_and_returns_a_snapshot() {
        std::env::remove_var("CFIR_INSTS");
        let w = by_name(
            "bzip2",
            WorkloadSpec {
                iters: 1 << 30,
                elems: 1024,
                seed: 1,
            },
        )
        .unwrap();
        let mut cfg = config(Mode::Scalar, 1, RegFileSize::Finite(256));
        cfg.max_insts = 20_000;
        let mut p = cfir_sim::Pipeline::new(&w.prog, w.mem.clone(), cfg);
        p.run();
        assert!(p.stats.committed >= 20_000);
        assert!(p.stats.ipc() > 0.1);

        // The snapshot comes back to the caller, not a global buffer.
        let w2 = by_name("gzip", default_spec()).unwrap();
        let (stats, snapshot) = run_one(&w2, config(Mode::Ci, 1, RegFileSize::Finite(512)));
        assert!(stats.committed >= 20_000);
        let v = cfir_obs::json::parse(&snapshot).expect("snapshot is valid JSON");
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("gzip"));
    }
}
