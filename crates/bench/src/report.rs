//! Aligned text tables and CSV output for the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a title.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(s, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(s, "  {:>w$}", c, w = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Print the table and also write it as `results/<name>.csv`.
///
/// This is the ad-hoc path; the experiment matrix (`cfir-suite`)
/// produces the same artifacts through each experiment's aggregator,
/// which also bundles the per-run snapshots as `<name>.json` when
/// `--emit-json` is in effect.
pub fn write_csv(table: &Table, name: &str) {
    print!("{}", table.render());
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("(could not write {}: {e})", path.display());
        } else {
            println!("[csv written to {}]\n", path.display());
        }
    }
}

/// True when the process was invoked with an `--emit-json` argument.
pub fn emit_json_requested() -> bool {
    std::env::args().any(|a| a == "--emit-json")
}

/// The explicit output path given after `--emit-json`, if any. The
/// next argument is taken as the path when it ends in `.json` (so a
/// positional benchmark name after the flag is not mistaken for one):
/// `smoke bzip2 --emit-json results/smoke.json`.
pub fn emit_json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--emit-json")?;
    args.get(i + 1)
        .filter(|a| a.ends_with(".json"))
        .map(|a| a.to_string())
}

/// Write `doc` to `path` (creating parent directories), or print it to
/// stdout when no path was given — the shared `--emit-json [path]`
/// behaviour of `smoke` and `cfir-run`.
pub fn write_json_doc(path: Option<&str>, doc: &str) {
    match path {
        Some(p) => {
            let p = Path::new(p);
            if let Some(dir) = p.parent() {
                let _ = fs::create_dir_all(dir);
            }
            if let Err(e) = fs::write(p, doc) {
                eprintln!("(could not write {}: {e})", p.display());
            } else {
                println!("[json written to {}]", p.display());
            }
        }
        None => println!("{doc}"),
    }
}

/// A versioned JSON document bundling the rendered table (header +
/// rows, as strings) with the full per-run statistics snapshots.
pub fn report_json(table: &Table, runs: &[String]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":{},\"title\":",
        cfir_sim::SCHEMA_VERSION
    );
    cfir_obs::json::write_escaped(&mut out, &table.title);
    out.push_str(",\"table\":{\"header\":[");
    for (i, h) in table.header.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        cfir_obs::json::write_escaped(&mut out, h);
    }
    out.push_str("],\"rows\":[");
    for (i, r) in table.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, c) in r.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            cfir_obs::json::write_escaped(&mut out, c);
        }
        out.push(']');
    }
    out.push_str("]},\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    out.push_str("]}");
    out
}

/// Like [`report_json`], but each snapshot is validated before it is
/// embedded: `runs` pairs a context label (benchmark/mode) with the
/// snapshot document, and a malformed snapshot produces an error
/// naming the offending run instead of a corrupt (or panicking)
/// bundle. Used by the experiment aggregators so one bad snapshot
/// fails one experiment, never the whole suite.
pub fn report_json_checked(table: &Table, runs: &[(String, String)]) -> Result<String, String> {
    for (ctx, doc) in runs {
        cfir_obs::json::parse(doc)
            .map_err(|e| format!("snapshot for run `{ctx}` is malformed: {e}"))?;
    }
    let docs: Vec<String> = runs.iter().map(|(_, d)| d.clone()).collect();
    Ok(report_json(table, &docs))
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_csv_escapes() {
        let mut t = Table::new("T", &["name", "x"]);
        t.row(vec!["a,b".into(), "1.5".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("long-name"));
        let c = t.to_csv();
        assert!(c.starts_with("name,x\n"));
        assert!(c.contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("M", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### M"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn report_json_parses_and_embeds_runs() {
        let mut t = Table::new("T \"quoted\"", &["mode", "IPC"]);
        t.row(vec!["scal".into(), "1.5".into()]);
        let doc = report_json(
            &t,
            &["{\"ipc\":1.5}".to_string(), "{\"ipc\":2.0}".to_string()],
        );
        let v = cfir_obs::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(|x| x.as_u64()),
            Some(cfir_sim::SCHEMA_VERSION as u64)
        );
        assert_eq!(
            v.get("title").and_then(|x| x.as_str()),
            Some("T \"quoted\"")
        );
        let rows = v
            .get("table")
            .and_then(|t| t.get("rows"))
            .and_then(|r| r.as_arr())
            .unwrap();
        assert_eq!(rows.len(), 1);
        let runs = v.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("ipc").and_then(|x| x.as_f64()), Some(2.0));
    }

    #[test]
    fn checked_report_names_the_offending_run() {
        let mut t = Table::new("T", &["mode", "IPC"]);
        t.row(vec!["ci".into(), "1.5".into()]);
        let ok = report_json_checked(&t, &[("bzip2/ci".to_string(), "{\"ipc\":1.5}".to_string())])
            .expect("valid snapshots pass");
        assert!(cfir_obs::json::parse(&ok).is_ok());

        let err = report_json_checked(
            &t,
            &[
                ("bzip2/ci".to_string(), "{\"ipc\":1.5}".to_string()),
                ("gzip/wb".to_string(), "{broken".to_string()),
            ],
        )
        .unwrap_err();
        assert!(err.contains("gzip/wb"), "must name the run: {err}");
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.4567), "45.7%");
    }
}
