//! Generic design-space sweeper: cartesian product of modes × register
//! sizes × ports × replica counts over the suite (or one benchmark),
//! CSV out. The figure binaries cover the paper's specific plots; this
//! is the "explore anything" tool.
//!
//! ```sh
//! sweep --modes scal,ci --regs 128,256,512 --ports 1,2 --replicas 4 \
//!       [--bench crafty] [--insts 100000]
//! ```

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};
use cfir_workloads::by_name;

fn parse_list<T>(s: &str, f: impl Fn(&str) -> Option<T>) -> Vec<T> {
    s.split(',')
        .map(|x| f(x.trim()).unwrap_or_else(|| panic!("bad value `{x}`")))
        .collect()
}

fn main() {
    let mut modes = vec![Mode::WideBus, Mode::Ci];
    let mut regs = vec![RegFileSize::Finite(512)];
    let mut ports = vec![1u32];
    let mut replicas = vec![4u8];
    let mut bench: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--emit-json" {
            continue; // valueless flag, handled inside write_csv
        }
        let v = it.next().unwrap_or_default();
        match a.as_str() {
            "--modes" => modes = parse_list(&v, Mode::from_label),
            "--regs" => {
                regs = parse_list(&v, |r| {
                    if r == "inf" {
                        Some(RegFileSize::Infinite)
                    } else {
                        r.parse().ok().map(RegFileSize::Finite)
                    }
                })
            }
            "--ports" => ports = parse_list(&v, |p| p.parse().ok()),
            "--replicas" => replicas = parse_list(&v, |r| r.parse().ok()),
            "--bench" => bench = Some(v),
            "--insts" => std::env::set_var("CFIR_INSTS", v),
            _ => {
                eprintln!("unknown flag {a}");
                std::process::exit(2);
            }
        }
    }

    let mut t = Table::new(
        "sweep",
        &[
            "mode", "regs", "ports", "replicas", "IPC", "reuse%", "mispred%",
        ],
    );
    for &mode in &modes {
        for &r in &regs {
            for &p in &ports {
                for &reps in &replicas {
                    let cfg = runner::config(mode, p, r).with_replicas(reps);
                    let (ipc, reuse, mr) = match &bench {
                        Some(name) => {
                            let w = by_name(name, runner::default_spec()).expect("benchmark");
                            let s = runner::run_one(&w, cfg);
                            (s.ipc(), s.reuse_fraction(), s.mispredict_rate())
                        }
                        None => {
                            let runs = runner::run_mode(&cfg, mode.label());
                            let ipcs: Vec<f64> = runs.iter().map(|x| x.stats.ipc()).collect();
                            let reuse = runs.iter().map(|x| x.stats.reuse_fraction()).sum::<f64>()
                                / runs.len() as f64;
                            let mr = runs.iter().map(|x| x.stats.mispredict_rate()).sum::<f64>()
                                / runs.len() as f64;
                            (harmonic_mean(&ipcs), reuse, mr)
                        }
                    };
                    t.row(vec![
                        mode.label().into(),
                        r.label(),
                        p.to_string(),
                        reps.to_string(),
                        f3(ipc),
                        format!("{:.1}", reuse * 100.0),
                        format!("{:.1}", mr * 100.0),
                    ]);
                }
            }
        }
    }
    cfir_bench::write_csv(&t, "sweep");
}
