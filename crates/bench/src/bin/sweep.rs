//! Generic design-space sweeper: cartesian product of modes × register
//! sizes × ports × replica counts over the suite (or one benchmark),
//! CSV out. The figure experiments cover the paper's specific plots;
//! this is the "explore anything" tool. Points run through the
//! `cfir-harness` pool, so `--jobs`/`--resume` work here too.
//!
//! ```sh
//! sweep --modes scal,ci --regs 128,256,512 --ports 1,2 --replicas 4 \
//!       [--bench crafty] [--insts 100000] [--jobs 4] [--resume]
//! ```

use cfir_bench::experiments::{sweep_experiment, Params};
use cfir_harness::{run_suite, SuiteOptions};
use cfir_sim::{Mode, RegFileSize};

fn parse_list<T>(s: &str, f: impl Fn(&str) -> Option<T>) -> Vec<T> {
    s.split(',')
        .map(|x| f(x.trim()).unwrap_or_else(|| panic!("bad value `{x}`")))
        .collect()
}

fn main() {
    let mut modes = vec![Mode::WideBus, Mode::Ci];
    let mut regs = vec![RegFileSize::Finite(512)];
    let mut ports = vec![1u32];
    let mut replicas = vec![4u8];
    let mut bench: Option<String> = None;
    let mut opts = SuiteOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit-json" => {
                opts.emit_json = true;
                continue;
            }
            "--resume" => {
                opts.resume = true;
                continue;
            }
            _ => {}
        }
        let v = it.next().unwrap_or_default();
        match a.as_str() {
            "--modes" => modes = parse_list(&v, Mode::from_label),
            "--regs" => {
                regs = parse_list(&v, |r| {
                    if r == "inf" {
                        Some(RegFileSize::Infinite)
                    } else {
                        r.parse().ok().map(RegFileSize::Finite)
                    }
                })
            }
            "--ports" => ports = parse_list(&v, |p| p.parse().ok()),
            "--replicas" => replicas = parse_list(&v, |r| r.parse().ok()),
            "--bench" => bench = Some(v),
            "--insts" => std::env::set_var("CFIR_INSTS", v),
            "--jobs" => {
                opts.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs wants a number");
                    std::process::exit(2);
                })
            }
            _ => {
                eprintln!("unknown flag {a}");
                std::process::exit(2);
            }
        }
    }

    let p = Params::from_env();
    let exp = sweep_experiment(&p, modes, regs, ports, replicas, bench);
    let report = run_suite(vec![exp], &opts);
    eprintln!("{}", report.summary_line());
    std::process::exit(if report.all_ok() { 0 } else { 1 })
}
