//! Quick mechanism smoke check: one benchmark, all five machine modes.
//! Usage: `cargo run -p cfir-bench --bin smoke [benchmark] [--emit-json]`
//!
//! With `--emit-json` the table is suppressed and a single versioned
//! JSON document (one full statistics snapshot per mode) is printed to
//! stdout instead.

use cfir_bench::report::{emit_json_requested, f3, pct};
use cfir_bench::{run_one, take_snapshots, Table};
use cfir_sim::{Mode, RegFileSize, SimConfig};
use cfir_workloads::by_name;

fn main() {
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "bzip2".into());
    let emit_json = emit_json_requested();
    let w = by_name(&name, cfir_bench::default_spec()).expect("unknown benchmark");
    let mut t = Table::new(
        format!("smoke: {name}"),
        &[
            "mode",
            "IPC",
            "mispred%",
            "reuse%",
            "valfail",
            "commitfail",
            "replicas",
            "squashed",
            "l1dacc",
            "l1dmiss",
            "ev(nf/sel/reuse)",
        ],
    );
    for mode in [
        Mode::Scalar,
        Mode::WideBus,
        Mode::CiIw,
        Mode::Ci,
        Mode::Vect,
    ] {
        let cfg = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_dports(1)
            .with_regs(RegFileSize::Finite(512));
        let s = run_one(&w, cfg);
        let (nf, sel, reu) = s.events.counts();
        t.row(vec![
            mode.label().into(),
            f3(s.ipc()),
            pct(s.mispredict_rate()),
            pct(s.reuse_fraction()),
            s.validation_failures.to_string(),
            s.commit_check_failures.to_string(),
            s.replicas_executed.to_string(),
            s.squashed.to_string(),
            s.l1d_accesses.to_string(),
            s.l1d_misses.to_string(),
            format!("{nf}/{sel}/{reu}"),
        ]);
    }
    if emit_json {
        // `run_one` recorded a full snapshot per mode; print the bundle
        // as the sole stdout output so callers can pipe it to a parser.
        println!("{}", cfir_bench::report::report_json(&t, &take_snapshots()));
    } else {
        print!("{}", t.render());
    }
}
