//! Quick mechanism smoke check: one benchmark, all five machine modes.
//! Usage: `cargo run -p cfir-bench --bin smoke [benchmark] [--emit-json [path]]`
//!
//! With `--emit-json` a single versioned JSON document (one full
//! statistics snapshot per mode, with the interval time series) is
//! written to the given `.json` path — or printed to stdout, table
//! suppressed, when no path follows the flag.
//!
//! The five simulation points come from the `cfir_bench::experiments`
//! matrix (the same jobs `cfir-suite --profile smoke` schedules); this
//! binary executes them serially to keep the legacy stdout contract.

use cfir_bench::experiments::{smoke_experiment, Params};
use cfir_bench::report::{emit_json_path, emit_json_requested, write_json_doc};
use cfir_harness::AggCtx;

fn usage() -> ! {
    eprintln!(
        "usage: smoke [benchmark] [--emit-json [path.json]]\n\
         \x20 benchmark    workload name (default bzip2); see cfir-workloads\n\
         \x20 --emit-json  emit the versioned snapshot bundle; with a path\n\
         \x20              ending in .json, write it there (stdout otherwise)\n\
         env: CFIR_INSTS, CFIR_ELEMS, CFIR_SEED"
    );
    std::process::exit(2)
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let json_path = emit_json_path();
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && Some(a.as_str()) != json_path.as_deref())
        .unwrap_or_else(|| "bzip2".into());
    let emit_json = emit_json_requested();

    let exp = smoke_experiment(&Params::from_env(), &name);
    let mut results = Vec::new();
    for spec in &exp.jobs {
        match spec.execute() {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("smoke: job {} failed: {e}", spec.display_name());
                std::process::exit(1);
            }
        }
    }
    let refs: Vec<&cfir_harness::JobResult> = results.iter().collect();
    let ctx = AggCtx { emit_json };
    let out = match (exp.aggregate)(&ctx, &refs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("smoke: {e}");
            std::process::exit(1);
        }
    };
    if emit_json {
        let doc = out
            .artifacts
            .iter()
            .find(|a| a.rel_path == "smoke.json")
            .map(|a| a.contents.as_str())
            .expect("smoke aggregator emits smoke.json under --emit-json");
        if json_path.is_some() {
            print!("{}", out.stdout);
        }
        write_json_doc(json_path.as_deref(), doc);
    } else {
        print!("{}", out.stdout);
    }
}
