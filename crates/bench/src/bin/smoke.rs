//! Quick mechanism smoke check: one benchmark, all five machine modes.
//! Usage: `cargo run -p cfir-bench --bin smoke [benchmark] [--emit-json [path]]`
//!
//! With `--emit-json` a single versioned JSON document (one full
//! statistics snapshot per mode, with the interval time series) is
//! written to the given `.json` path — or printed to stdout, table
//! suppressed, when no path follows the flag.

use cfir_bench::report::{emit_json_path, emit_json_requested, f3, pct, write_json_doc};
use cfir_bench::{run_one, take_snapshots, Table};
use cfir_sim::{Mode, RegFileSize, SimConfig};
use cfir_workloads::by_name;

fn usage() -> ! {
    eprintln!(
        "usage: smoke [benchmark] [--emit-json [path.json]]\n\
         \x20 benchmark    workload name (default bzip2); see cfir-workloads\n\
         \x20 --emit-json  emit the versioned snapshot bundle; with a path\n\
         \x20              ending in .json, write it there (stdout otherwise)\n\
         env: CFIR_INSTS, CFIR_ELEMS, CFIR_SEED"
    );
    std::process::exit(2)
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let json_path = emit_json_path();
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && Some(a.as_str()) != json_path.as_deref())
        .unwrap_or_else(|| "bzip2".into());
    let emit_json = emit_json_requested();
    let w = by_name(&name, cfir_bench::default_spec()).expect("unknown benchmark");
    let mut t = Table::new(
        format!("smoke: {name}"),
        &[
            "mode",
            "IPC",
            "mispred%",
            "reuse%",
            "valfail",
            "commitfail",
            "replicas",
            "squashed",
            "l1dacc",
            "l1dmiss",
            "ev(nf/sel/reuse)",
        ],
    );
    for mode in [
        Mode::Scalar,
        Mode::WideBus,
        Mode::CiIw,
        Mode::Ci,
        Mode::Vect,
    ] {
        let cfg = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_dports(1)
            .with_regs(RegFileSize::Finite(512));
        let s = run_one(&w, cfg);
        let (nf, sel, reu) = s.events.counts();
        t.row(vec![
            mode.label().into(),
            f3(s.ipc()),
            pct(s.mispredict_rate()),
            pct(s.reuse_fraction()),
            s.validation_failures.to_string(),
            s.commit_check_failures.to_string(),
            s.replicas_executed.to_string(),
            s.squashed.to_string(),
            s.l1d_accesses.to_string(),
            s.l1d_misses.to_string(),
            format!("{nf}/{sel}/{reu}"),
        ]);
    }
    if emit_json {
        // `run_one` recorded a full snapshot per mode; write the bundle
        // to the requested path, or print it as the sole stdout output
        // so callers can pipe it to a parser.
        let doc = cfir_bench::report::report_json(&t, &take_snapshots());
        if json_path.is_some() {
            print!("{}", t.render());
        }
        write_json_doc(json_path.as_deref(), &doc);
    } else {
        print!("{}", t.render());
    }
}
