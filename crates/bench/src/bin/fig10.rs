//! Figure 10 — per-benchmark IPC for the scalar baseline, wide bus,
//! in-window-only control independence (squash reuse, ci-iw) and the
//! proposed scheme (ci). One L1 port. Thin wrapper over the
//! `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig10")
}
