//! Figure 10 — per-benchmark IPC for the scalar baseline, wide bus,
//! in-window-only control independence (squash reuse, ci-iw) and the
//! proposed scheme (ci). One L1 port.

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "Figure 10: ci vs in-window-only squash reuse (1 port)",
        &["bench", "scal", "wb", "ci-iw", "ci"],
    );
    let mut rows: Vec<Vec<String>> = runner::suite_specs()
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    let mut per_mode = vec![Vec::new(); 4];
    for (mi, mode) in [Mode::Scalar, Mode::WideBus, Mode::CiIw, Mode::Ci]
        .into_iter()
        .enumerate()
    {
        let cfg = runner::config(mode, 1, RegFileSize::Finite(512));
        for (bi, r) in runner::run_mode(&cfg, mode.label()).into_iter().enumerate() {
            rows[bi].push(f3(r.stats.ipc()));
            per_mode[mi].push(r.stats.ipc());
        }
    }
    for row in rows {
        t.row(row);
    }
    let mut hm = vec!["HMEAN".to_string()];
    for m in &per_mode {
        hm.push(f3(harmonic_mean(m)));
    }
    t.row(hm);
    cfir_bench::write_csv(&t, "fig10");
    let base = harmonic_mean(&per_mode[0]);
    println!(
        "gains over scal: wb {:+.1}%  ci-iw {:+.1}%  ci {:+.1}%   (paper: ci-iw +9.1%, ci +17.8%)",
        (harmonic_mean(&per_mode[1]) / base - 1.0) * 100.0,
        (harmonic_mean(&per_mode[2]) / base - 1.0) * 100.0,
        (harmonic_mean(&per_mode[3]) / base - 1.0) * 100.0,
    );
}
