//! Figure 13 — performance with the small speculative data memory
//! (ci-h-128/256/512/768) against the scalar, wide-bus and monolithic
//! ci machines, across register-file sizes.

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_core::MechConfig;
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let regs = [
        RegFileSize::Finite(128),
        RegFileSize::Finite(256),
        RegFileSize::Finite(512),
        RegFileSize::Finite(768),
        RegFileSize::Infinite,
    ];
    let mut t = Table::new(
        "Figure 13: speculative data memory (ci-h-N)",
        &[
            "regs", "scal", "wb", "ci", "ci-h-128", "ci-h-256", "ci-h-512", "ci-h-768",
        ],
    );
    for r in regs {
        let mut row = vec![r.label()];
        for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
            let cfg = runner::config(mode, 1, r);
            let ipcs: Vec<f64> = runner::run_mode(&cfg, mode.label())
                .iter()
                .map(|x| x.stats.ipc())
                .collect();
            row.push(f3(harmonic_mean(&ipcs)));
        }
        for positions in [128usize, 256, 512, 768] {
            let mut cfg = runner::config(Mode::Ci, 1, r);
            cfg.mech = MechConfig::paper_with_specmem(positions);
            let ipcs: Vec<f64> = runner::run_mode(&cfg, "ci-h")
                .iter()
                .map(|x| x.stats.ipc())
                .collect();
            row.push(f3(harmonic_mean(&ipcs)));
        }
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig13");
    println!("paper: 256 regs + 768 spec positions ~= unbounded monolithic ci");
}
