//! Figure 13 — performance with the small speculative data memory
//! (ci-h-128/256/512/768) against the scalar, wide-bus and monolithic
//! ci machines, across register-file sizes. Thin wrapper over the
//! `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig13")
}
