//! Limit study (beyond the paper, motivated by its [10] citation):
//! how much of the branch-misprediction penalty does the CI mechanism
//! recover, relative to oracle (perfect) branch prediction?
//!
//! Prints, per benchmark: baseline IPC, ci IPC, perfect-prediction IPC,
//! and the fraction of the baseline→perfect gap that ci closes.

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, Pipeline, RegFileSize};
use cfir_workloads::by_name;

fn main() {
    let mut t = Table::new(
        "Limit study: ci vs perfect branch prediction (512 regs, 1 port)",
        &["bench", "wb", "ci", "perfect", "gap closed"],
    );
    let mut wbs = Vec::new();
    let mut cis = Vec::new();
    let mut perf = Vec::new();
    for (name, spec) in runner::suite_specs() {
        let w = by_name(name, spec).unwrap();
        let wb = runner::run_one(
            &w,
            runner::config(Mode::WideBus, 1, RegFileSize::Finite(512)),
        );
        let ci = runner::run_one(&w, runner::config(Mode::Ci, 1, RegFileSize::Finite(512)));
        let mut pcfg = runner::config(Mode::WideBus, 1, RegFileSize::Finite(512));
        pcfg.perfect_branch_prediction = true;
        pcfg.max_insts = runner::max_insts();
        pcfg.cosim_check = false;
        let mut pp = Pipeline::new(&w.prog, w.mem.clone(), pcfg);
        pp.run();
        let p = pp.stats.clone();
        let closed = if p.ipc() > wb.ipc() {
            (ci.ipc() - wb.ipc()) / (p.ipc() - wb.ipc())
        } else {
            0.0
        };
        t.row(vec![
            name.into(),
            f3(wb.ipc()),
            f3(ci.ipc()),
            f3(p.ipc()),
            format!("{:4.0}%", closed * 100.0),
        ]);
        wbs.push(wb.ipc());
        cis.push(ci.ipc());
        perf.push(p.ipc());
    }
    let (hw, hc, hp) = (
        harmonic_mean(&wbs),
        harmonic_mean(&cis),
        harmonic_mean(&perf),
    );
    t.row(vec![
        "HMEAN".into(),
        f3(hw),
        f3(hc),
        f3(hp),
        format!("{:4.0}%", (hc - hw) / (hp - hw) * 100.0),
    ]);
    cfir_bench::write_csv(&t, "exp_limit");
    println!(
        "note: on store-heavy kernels (twolf, vortex) 'perfect' can trail the\n\
         baselines — with no squashes the window fills with in-flight stores and\n\
         the Table-1 conservative disambiguation (loads wait for all prior store\n\
         addresses) throttles deep windows harder than shallow mispredicted ones."
    );
}
