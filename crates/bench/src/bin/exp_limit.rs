//! Limit study (beyond the paper, motivated by its [10] citation):
//! how much of the branch-misprediction penalty does the CI mechanism
//! recover, relative to oracle (perfect) branch prediction?
//!
//! Prints, per benchmark: baseline IPC, ci IPC, perfect-prediction IPC,
//! and the fraction of the baseline→perfect gap that ci closes.
//! Thin wrapper over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("exp_limit")
}
