//! Figure 11 — suite harmonic-mean IPC depending on the number of
//! replicas per vectorized instruction (1/2/4/8) and registers, against
//! the scalar and wide-bus baselines. Thin wrapper over the
//! `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig11")
}
