//! Figure 11 — suite harmonic-mean IPC depending on the number of
//! replicas per vectorized instruction (1/2/4/8) and registers, against
//! the scalar and wide-bus baselines.

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let regs = [
        RegFileSize::Finite(128),
        RegFileSize::Finite(256),
        RegFileSize::Finite(512),
        RegFileSize::Finite(768),
        RegFileSize::Infinite,
    ];
    let mut t = Table::new(
        "Figure 11: IPC vs replicas per vectorized instruction",
        &["regs", "sc", "wb", "1rep", "2rep", "4rep", "8rep"],
    );
    for r in regs {
        let mut row = vec![r.label()];
        for mode in [Mode::Scalar, Mode::WideBus] {
            let cfg = runner::config(mode, 1, r);
            let ipcs: Vec<f64> = runner::run_mode(&cfg, mode.label())
                .iter()
                .map(|x| x.stats.ipc())
                .collect();
            row.push(f3(harmonic_mean(&ipcs)));
        }
        for reps in [1u8, 2, 4, 8] {
            let cfg = runner::config(Mode::Ci, 1, r).with_replicas(reps);
            let ipcs: Vec<f64> = runner::run_mode(&cfg, "ci")
                .iter()
                .map(|x| x.stats.ipc())
                .collect();
            row.push(f3(harmonic_mean(&ipcs)));
        }
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig11");
    println!("paper: 2 or 4 replicas are the sweet spot; 8 helps only with many registers");
}
