//! Figure 4 — IPC depending on the number of propagated stridedPCs per
//! rename entry (1, 2, 4), per benchmark, plus the average PCs/entry
//! statistic (the paper measures 1.7).

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "Figure 4: IPC vs propagated stridedPCs per rename entry",
        &["bench", "1PC", "2PC", "4PC", "avg PCs/entry"],
    );
    let mut per_slots = vec![Vec::new(); 3];
    let mut rows: Vec<Vec<String>> = runner::suite_specs()
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    let mut avg_col = vec![String::new(); rows.len()];
    for (si, slots) in [1usize, 2, 4].into_iter().enumerate() {
        let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
        cfg.mech.strided_pc_slots = slots;
        for (bi, r) in runner::run_mode(&cfg, &format!("{slots}PC"))
            .into_iter()
            .enumerate()
        {
            per_slots[si].push(r.stats.ipc());
            rows[bi].push(f3(r.stats.ipc()));
            if slots == 4 {
                avg_col[bi] = format!("{:.2}", r.stats.avg_strided_pcs());
            }
        }
    }
    for (bi, mut row) in rows.into_iter().enumerate() {
        row.push(avg_col[bi].clone());
        t.row(row);
    }
    t.row(vec![
        "HMEAN".into(),
        f3(harmonic_mean(&per_slots[0])),
        f3(harmonic_mean(&per_slots[1])),
        f3(harmonic_mean(&per_slots[2])),
        String::new(),
    ]);
    cfir_bench::write_csv(&t, "fig04");
    println!("paper: 1 vs 2 vs 4 PCs hardly changes IPC; ~1.7 PCs needed on average");
}
