//! Figure 4 — IPC depending on the number of propagated stridedPCs per
//! rename entry (1, 2, 4), per benchmark, plus the average PCs/entry
//! statistic (the paper measures 1.7). Thin wrapper over the
//! `cfir_bench::experiments` matrix; `cfir-suite` runs the same jobs.

fn main() {
    cfir_bench::experiments::standalone_main("fig04")
}
