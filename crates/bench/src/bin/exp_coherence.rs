//! §2.4.3 — fraction of committed stores whose address hits a
//! speculatively-loaded range (the paper reports < 3%).

use cfir_bench::report::pct;
use cfir_bench::{runner, Table};
use cfir_sim::{Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "S2.4.3: store-coherence conflicts (ci)",
        &["bench", "stores", "conflicts", "fraction"],
    );
    let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    let mut st = 0u64;
    let mut cf = 0u64;
    for r in runner::run_mode(&cfg, "ci") {
        t.row(vec![
            r.name.into(),
            r.stats.stores.to_string(),
            r.stats.store_conflicts.to_string(),
            pct(r.stats.store_conflict_fraction()),
        ]);
        st += r.stats.stores;
        cf += r.stats.store_conflicts;
    }
    t.row(vec![
        "TOTAL".into(),
        st.to_string(),
        cf.to_string(),
        pct(if st == 0 { 0.0 } else { cf as f64 / st as f64 }),
    ]);
    cfir_bench::write_csv(&t, "exp_coherence");
    println!("paper: fewer than 3% of stores conflict");
}
