//! §2.4.3 — fraction of committed stores whose address hits a
//! speculatively-loaded range (the paper reports < 3%). Thin wrapper
//! over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("exp_coherence")
}
