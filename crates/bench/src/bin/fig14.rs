//! Figure 14 — the proposed control-independence scheme (ci) against
//! the full-blown speculative dynamic vectorization of reference [12]
//! (vect), with 2 wide L1 ports, across register-file sizes. Also
//! prints the S4 activity comparison (wrong-path work and reuse).
//! Thin wrapper over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig14")
}
