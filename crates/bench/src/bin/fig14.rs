//! Figure 14 — the proposed control-independence scheme (ci) against
//! the full-blown speculative dynamic vectorization of reference [12]
//! (vect), with 2 wide L1 ports, across register-file sizes. Also
//! prints the S4 activity comparison (wrong-path work and reuse).

use cfir_bench::report::{f3, pct};
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let regs = [
        RegFileSize::Finite(128),
        RegFileSize::Finite(256),
        RegFileSize::Finite(512),
        RegFileSize::Finite(768),
        RegFileSize::Infinite,
    ];
    let mut t = Table::new(
        "Figure 14: ci vs full-blown dynamic vectorization",
        &["regs", "ci", "vect"],
    );
    let mut activity: Vec<String> = Vec::new();
    for r in regs {
        let mut row = vec![r.label()];
        for mode in [Mode::Ci, Mode::Vect] {
            let cfg = runner::config(mode, 2, r);
            let runs = runner::run_mode(&cfg, mode.label());
            let ipcs: Vec<f64> = runs.iter().map(|x| x.stats.ipc()).collect();
            row.push(f3(harmonic_mean(&ipcs)));
            if matches!(r, RegFileSize::Finite(512)) {
                let wrong: f64 = runs
                    .iter()
                    .map(|x| x.stats.wrong_path_fraction())
                    .sum::<f64>()
                    / runs.len() as f64;
                let reuse: f64 =
                    runs.iter().map(|x| x.stats.reuse_fraction()).sum::<f64>() / runs.len() as f64;
                activity.push(format!(
                    "{}: wrong-path activity {} of executed work, reuse {} of committed",
                    mode.label(),
                    pct(wrong),
                    pct(reuse)
                ));
            }
        }
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig14");
    for a in activity {
        println!("{a}");
    }
    println!(
        "paper: ci wins below ~700 regs; vect only wins unbounded. ci wastes 29.6% vs vect 48.5%"
    );
}
