//! Ablations of the mechanism's design choices (the DESIGN.md list):
//!
//! * **MBS gating** (§2.3.1) — restrict the scheme to hard-to-predict
//!   branches vs activating on every misprediction;
//! * **re-convergence heuristics** (§2.3.1, Figure 2) — the full
//!   backward/forward/hammock rules vs naive fall-through;
//! * **DAEC** (§2.4.2) — early release of dead replica registers at
//!   thresholds 1/2/4/off;
//! * **replica register headroom** — how many free registers the
//!   replica engine must leave to scalar rename;
//! * plus replica issue priority, the §3.1 L1-budget comparison and the
//!   mis-speculation blacklist.
//!
//! Thin wrapper over the `cfir_bench::experiments` matrix.
//! Run: `cargo run --release -p cfir-bench --bin ablations`

fn main() {
    cfir_bench::experiments::standalone_main("ablations")
}
