//! Ablations of the mechanism's design choices (the DESIGN.md list):
//!
//! * **MBS gating** (§2.3.1) — restrict the scheme to hard-to-predict
//!   branches vs activating on every misprediction;
//! * **re-convergence heuristics** (§2.3.1, Figure 2) — the full
//!   backward/forward/hammock rules vs naive fall-through;
//! * **DAEC** (§2.4.2) — early release of dead replica registers at
//!   thresholds 1/2/4/off;
//! * **replica register headroom** — how many free registers the
//!   replica engine must leave to scalar rename.
//!
//! Run: `cargo run --release -p cfir-bench --bin ablations`

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize, SimConfig};

fn hmean_ipc(cfg: &SimConfig) -> f64 {
    let ipcs: Vec<f64> = runner::run_mode(cfg, "abl")
        .iter()
        .map(|r| r.stats.ipc())
        .collect();
    harmonic_mean(&ipcs)
}

fn main() {
    let base = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));

    let mut t = Table::new("Ablation: MBS hard-branch gating", &["variant", "HM IPC"]);
    t.row(vec!["gated (paper)".into(), f3(hmean_ipc(&base))]);
    let mut un = base.clone();
    un.mech.mbs_gating = false;
    t.row(vec![
        "ungated (every mispredict)".into(),
        f3(hmean_ipc(&un)),
    ]);
    cfir_bench::write_csv(&t, "abl_gating");

    let mut t = Table::new(
        "Ablation: re-convergence heuristics",
        &["variant", "HM IPC"],
    );
    t.row(vec!["full Fig-2 heuristics".into(), f3(hmean_ipc(&base))]);
    let mut naive = base.clone();
    naive.mech.full_rcp_heuristic = false;
    t.row(vec!["naive fall-through".into(), f3(hmean_ipc(&naive))]);
    cfir_bench::write_csv(&t, "abl_rcp");

    let mut t = Table::new(
        "Ablation: DAEC threshold (256 registers, where pressure bites)",
        &["threshold", "HM IPC"],
    );
    for thr in [1u8, 2, 4, u8::MAX] {
        let mut c = runner::config(Mode::Ci, 1, RegFileSize::Finite(256));
        c.mech.daec_threshold = thr;
        let label = if thr == u8::MAX {
            "off".to_string()
        } else {
            thr.to_string()
        };
        t.row(vec![label, f3(hmean_ipc(&c))]);
    }
    cfir_bench::write_csv(&t, "abl_daec");

    let mut t = Table::new(
        "Ablation: replica register headroom (256 registers)",
        &["headroom", "HM IPC"],
    );
    for hr in [0usize, 8, 16, 64] {
        let mut c = runner::config(Mode::Ci, 1, RegFileSize::Finite(256));
        c.mech.replica_headroom = hr;
        t.row(vec![hr.to_string(), f3(hmean_ipc(&c))]);
    }
    cfir_bench::write_csv(&t, "abl_headroom");

    let mut t = Table::new(
        "Ablation: replica issue priority (S2.4.1)",
        &["variant", "HM IPC"],
    );
    t.row(vec!["replicas last (paper)".into(), f3(hmean_ipc(&base))]);
    let mut first = base.clone();
    first.mech.replicas_first = true;
    t.row(vec!["replicas first".into(), f3(hmean_ipc(&first))]);
    cfir_bench::write_csv(&t, "abl_priority");

    // §3.1: "using this amount of extra hardware in, i.e., the L1 data
    // cache only increases about 5% the performance" — spend the 39 KB
    // on a bigger L1 instead of the mechanism.
    let mut t = Table::new(
        "Ablation: spend the mechanism's 39 KB on the L1D instead (S3.1)",
        &["variant", "HM IPC"],
    );
    let wb = runner::config(Mode::WideBus, 1, RegFileSize::Finite(512));
    t.row(vec!["wb, 64 KB L1D".into(), f3(hmean_ipc(&wb))]);
    let mut big = wb.clone();
    big.hierarchy.l1d.size_bytes = 128 * 1024; // nearest pow-2 >= 64+39 KB
    t.row(vec!["wb, 128 KB L1D".into(), f3(hmean_ipc(&big))]);
    t.row(vec!["ci, 64 KB L1D".into(), f3(hmean_ipc(&base))]);
    cfir_bench::write_csv(&t, "abl_l1_budget");

    let mut t = Table::new(
        "Ablation: mis-speculation blacklist threshold",
        &["threshold", "HM IPC"],
    );
    for thr in [4u8, 8, u8::MAX] {
        let mut c = base.clone();
        c.mech.misspec_blacklist = thr;
        let label = if thr == u8::MAX {
            "off (default)".to_string()
        } else {
            thr.to_string()
        };
        t.row(vec![label, f3(hmean_ipc(&c))]);
    }
    cfir_bench::write_csv(&t, "abl_blacklist");
}
