//! §2.4.2 — average physical registers in use with an unbounded
//! register file, with and without the DAEC early-release rule
//! (the paper reports 812 without vs 304 with).
//!
//! DAEC targets *dead associations*: replica registers of entries whose
//! code stopped executing. Single-loop kernels never abandon their
//! entries, so alongside the suite this binary runs a two-phase
//! microbenchmark that alternates between two independent loops — each
//! phase change strands the other phase's replica registers until DAEC
//! (or nothing) reclaims them.

use cfir_bench::{runner, Table};
use cfir_isa::{AluOp, Cond, ProgramBuilder};
use cfir_sim::{Mode, Pipeline, RegFileSize};
use cfir_workloads::Workload;

/// `NPHASES` independent strided-reduction loops with hard hammocks;
/// the active loop switches every `phase_len` iterations. While one
/// phase runs, the other phases' SRSMT entries sit idle holding replica
/// registers — exactly the dead associations DAEC exists to reclaim.
fn multi_phase(phase_len: i64) -> Workload {
    const NPHASES: i64 = 16;
    let mut mem = cfir_emu::MemImage::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    for ph in 0..NPHASES as u64 {
        for i in 0..2048u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write(0x1_0000 + ph * 0x8000 + i * 8, x & 1);
        }
    }
    let mut b = ProgramBuilder::new("multi-phase");
    b.li(2, 0); // global iteration counter
    b.li(3, 1 << 30);
    b.li(4, 2047);
    b.li(9, phase_len);
    let top = b.label_here();
    b.alu(AluOp::Div, 11, 2, 9);
    b.alui(AluOp::And, 11, 11, NPHASES - 1);
    // Wrapped element index, shared by all phases.
    b.alu(AluOp::And, 1, 2, 4);
    b.alui(AluOp::Mul, 10, 1, 8);
    let done = b.label();
    let mut next = b.label();
    for ph in 0..NPHASES {
        if ph > 0 {
            b.bind(next);
            next = b.label();
        }
        b.alui(AluOp::Seq, 12, 11, ph);
        b.br(Cond::Eq, 12, 0, next);
        // This phase's own strided load (distinct PC, distinct array).
        b.li(13, 0x1_0000 + ph * 0x8000);
        b.alu(AluOp::Add, 13, 13, 10);
        b.ld(14, 13, 0);
        let els = b.label();
        let join = b.label();
        b.br(Cond::Eq, 14, 0, els);
        b.alui(AluOp::Add, 20, 20, 1);
        b.jmp(join);
        b.bind(els);
        b.alui(AluOp::Add, 21, 21, 1);
        b.bind(join);
        b.alu(AluOp::Add, 22, 22, 14);
        b.jmp(done);
    }
    b.bind(next); // unreachable fall-through
    b.bind(done);
    b.alui(AluOp::Add, 2, 2, 1);
    b.br(Cond::Lt, 2, 3, top);
    b.halt();
    Workload {
        name: "multi-phase",
        prog: b.finish(),
        mem,
    }
}

fn occupancy(w: &Workload, daec: u8) -> (f64, u64) {
    let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Infinite);
    cfg.mech.daec_threshold = daec;
    cfg.max_insts = runner::max_insts();
    cfg.cosim_check = false;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    (p.stats.avg_regs_in_use(), p.stats.reg_high_water)
}

fn main() {
    let mut t = Table::new(
        "S2.4.2: physical registers in use (unbounded file, ci)",
        &[
            "workload",
            "avg DAEC on",
            "avg DAEC off",
            "peak on",
            "peak off",
        ],
    );
    for phase in [256i64, 1024] {
        let w = multi_phase(phase);
        let (on_avg, on_peak) = occupancy(&w, 2);
        let (off_avg, off_peak) = occupancy(&w, u8::MAX);
        t.row(vec![
            format!("multi-phase/{phase}"),
            format!("{on_avg:.0}"),
            format!("{off_avg:.0}"),
            on_peak.to_string(),
            off_peak.to_string(),
        ]);
    }
    // The regular suite for context.
    let on = runner::config(Mode::Ci, 1, RegFileSize::Infinite);
    let mut off = on.clone();
    off.mech.daec_threshold = u8::MAX;
    let runs_on = runner::run_mode(&on, "daec-on");
    let runs_off = runner::run_mode(&off, "daec-off");
    let mut avg_on = 0.0;
    let mut avg_off = 0.0;
    for (a, b) in runs_on.iter().zip(&runs_off) {
        avg_on += a.stats.avg_regs_in_use();
        avg_off += b.stats.avg_regs_in_use();
    }
    t.row(vec![
        "suite MEAN".into(),
        format!("{:.0}", avg_on / runs_on.len() as f64),
        format!("{:.0}", avg_off / runs_off.len() as f64),
        String::new(),
        String::new(),
    ]);
    cfir_bench::write_csv(&t, "exp_regs");
    println!("paper: 812 registers without DAEC vs 304 with DAEC (whole-suite averages)");
}
