//! §2.4.2 — average physical registers in use with an unbounded
//! register file, with and without the DAEC early-release rule
//! (the paper reports 812 without vs 304 with). Runs the
//! `cfir_workloads::micro::multi_phase` microbenchmark (whose phase
//! changes strand replica registers) alongside the regular suite.
//! Thin wrapper over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("exp_regs")
}
