//! Table 1 — processor configuration — plus the §3.1 extra-storage
//! accounting of the mechanism. Thin wrapper over the
//! `cfir_bench::experiments` matrix (this experiment runs no jobs).

fn main() {
    cfir_bench::experiments::standalone_main("table1")
}
