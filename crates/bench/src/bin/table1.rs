//! Table 1 — processor configuration — plus the §3.1 extra-storage
//! accounting (the 39 KB figure).

use cfir_bench::Table;
use cfir_core::{storage, MechConfig};
use cfir_sim::SimConfig;

fn main() {
    let c = SimConfig::paper_baseline();
    let mut t = Table::new("Table 1: processor configuration", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        (
            "Fetch width",
            format!("{} instructions (up to 1 taken branch)", c.fetch_width),
        ),
        ("I-Cache", "64Kb, 2-way, 64B lines, 1 cycle hit".into()),
        (
            "Branch predictor",
            format!("Gshare with {}K entries", c.gshare_entries / 1024),
        ),
        ("Inst. window size", format!("{} entries", c.window)),
        (
            "Int ALUs / mult-div",
            format!("{} (1) / {} (2,12)", c.int_alu, c.int_muldiv),
        ),
        (
            "FP ALUs / mult-div",
            format!("{} (2) / {} (4,14)", c.fp_alu, c.fp_muldiv),
        ),
        (
            "Load/store queue",
            format!("{} entries, store-load forwarding", c.lsq),
        ),
        (
            "Issue mechanism",
            format!("{}-way out of order", c.issue_width),
        ),
        (
            "D-cache",
            "64Kb, 2-way, 32B lines, 1 cycle hit, write-back, 16 MSHRs".into(),
        ),
        ("L2 cache", "256Kb, 4-way, 32B lines, 6 cycle hit".into()),
        (
            "L3 cache",
            "2Mb, 4-way, 64B lines, 18 cycle hit, 100 cycle memory".into(),
        ),
        ("Commit width", format!("{} instructions", c.commit_width)),
        (
            "Stride predictor",
            format!("{}-way x {} sets", c.mech.stride_ways, c.mech.stride_sets),
        ),
        (
            "SRSMT",
            format!("{}-way x {} sets", c.mech.srsmt_ways, c.mech.srsmt_sets),
        ),
        (
            "MBS",
            format!("{}-way x {} sets", c.mech.mbs_ways, c.mech.mbs_sets),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    cfir_bench::write_csv(&t, "table1");

    let r = storage::report(&MechConfig::paper());
    let mut t = Table::new(
        "S3.1: extra storage of the mechanism",
        &["structure", "bytes"],
    );
    t.row(vec!["SRSMT".into(), r.srsmt.to_string()]);
    t.row(vec!["stride predictor".into(), r.stride.to_string()]);
    t.row(vec!["MBS".into(), r.mbs.to_string()]);
    t.row(vec!["NRBQ".into(), r.nrbq.to_string()]);
    t.row(vec!["CRP".into(), r.crp.to_string()]);
    t.row(vec!["rename extension".into(), r.rename_ext.to_string()]);
    t.row(vec![
        "TOTAL".into(),
        format!("{} ({} KB)", r.total(), r.total() / 1024),
    ]);
    cfir_bench::write_csv(&t, "table1_storage");
}
