//! Figure 9 — suite harmonic-mean IPC for scal/wb/ci with 1 and 2 L1
//! ports across register-file sizes 128, 256, 512, 768 and infinite.
//! Thin wrapper over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig09")
}
