//! Figure 9 — suite harmonic-mean IPC for scal/wb/ci with 1 and 2 L1
//! ports across register-file sizes 128, 256, 512, 768 and infinite.

use cfir_bench::report::f3;
use cfir_bench::{runner, Table};
use cfir_sim::{harmonic_mean, Mode, RegFileSize};

fn main() {
    let regs = [
        RegFileSize::Finite(128),
        RegFileSize::Finite(256),
        RegFileSize::Finite(512),
        RegFileSize::Finite(768),
        RegFileSize::Infinite,
    ];
    let mut t = Table::new(
        "Figure 9: harmonic-mean IPC vs registers and L1 ports",
        &["regs", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"],
    );
    for r in regs {
        let mut row = vec![r.label()];
        for ports in [1u32, 2] {
            for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
                let cfg = runner::config(mode, ports, r);
                let ipcs: Vec<f64> = runner::run_mode(&cfg, mode.label())
                    .iter()
                    .map(|x| x.stats.ipc())
                    .collect();
                row.push(f3(harmonic_mean(&ipcs)));
            }
        }
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig09");
    println!("paper: ci needs >128 regs; beyond 256 regs ci pulls 14-17.8% ahead of wb");
}
