//! Figure 12 — committed instructions that do not reuse (noR), that
//! reuse (Reuse), wrong-path fetched-but-squashed (specBP), and
//! speculative instructions created by the CI scheme (specCI), for 2
//! and 4 replicas per vectorized instruction.

use cfir_bench::report::pct;
use cfir_bench::{runner, Table};
use cfir_sim::{Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "Figure 12: instruction breakdown for 2 (left) and 4 (right) replicas",
        &[
            "bench", "noR/2", "Reuse/2", "specBP/2", "specCI/2", "noR/4", "Reuse/4", "specBP/4",
            "specCI/4",
        ],
    );
    let mut rows: Vec<Vec<String>> = runner::suite_specs()
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    let mut reuse_fraction = [0.0f64; 2];
    for (ri, reps) in [2u8, 4].into_iter().enumerate() {
        let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512)).with_replicas(reps);
        let mut tot_committed = 0u64;
        let mut tot_reuse = 0u64;
        for (bi, r) in runner::run_mode(&cfg, "ci").into_iter().enumerate() {
            let s = &r.stats;
            rows[bi].push((s.committed - s.committed_reuse).to_string());
            rows[bi].push(s.committed_reuse.to_string());
            rows[bi].push(s.squashed.to_string());
            rows[bi].push(s.replicas_created.to_string());
            tot_committed += s.committed;
            tot_reuse += s.committed_reuse;
        }
        reuse_fraction[ri] = tot_reuse as f64 / tot_committed as f64;
    }
    for row in rows {
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig12");
    println!(
        "reuse fraction of committed: 2rep {}  4rep {}   (paper: 12.3% -> 14%)",
        pct(reuse_fraction[0]),
        pct(reuse_fraction[1])
    );
}
