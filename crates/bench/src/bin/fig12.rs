//! Figure 12 — committed instructions that do not reuse (noR), that
//! reuse (Reuse), wrong-path fetched-but-squashed (specBP), and
//! speculative instructions created by the CI scheme (specCI), for 2
//! and 4 replicas per vectorized instruction. Thin wrapper over the
//! `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig12")
}
