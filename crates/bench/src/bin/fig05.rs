//! Figure 5 — fraction of mispredicted branches for which the
//! mechanism finds no CI instruction / selects CI instructions without
//! reuse / successfully reuses at least one precomputed instance.
//! Thin wrapper over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig05")
}
