//! Figure 5 — fraction of mispredicted branches for which the
//! mechanism finds no CI instruction / selects CI instructions without
//! reuse / successfully reuses at least one precomputed instance.

use cfir_bench::report::pct;
use cfir_bench::{runner, Table};
use cfir_sim::{Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "Figure 5: CI classification of mispredicted branches (ci)",
        &["bench", "not found", "no reuse", ">=1 reuse", "mispredicts"],
    );
    let cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for r in runner::run_mode(&cfg, "ci") {
        let (nf, sel, reu) = r.stats.events.fractions();
        sums[0] += nf;
        sums[1] += sel;
        sums[2] += reu;
        n += 1;
        t.row(vec![
            r.name.into(),
            pct(nf),
            pct(sel),
            pct(reu),
            r.stats.events.total_mispredictions.to_string(),
        ]);
    }
    let n = n as f64;
    t.row(vec![
        "INT (avg)".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        String::new(),
    ]);
    cfir_bench::write_csv(&t, "fig05");
    println!("paper: ~30% not found, ~21% selected w/o reuse, ~49% with reuse");
}
