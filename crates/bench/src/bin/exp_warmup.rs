//! Measurement-window stationarity check: do the statistics of
//! interest (interval IPC, cumulative reuse fraction) stabilise within
//! the 150k-instruction windows EXPERIMENTS.md records? Prints the
//! interval time series for two contrasting benchmarks. Thin wrapper
//! over the `cfir_bench::experiments` matrix.

fn main() {
    cfir_bench::experiments::standalone_main("exp_warmup")
}
