//! Measurement-window stationarity check: do the statistics of
//! interest (interval IPC, cumulative reuse fraction) stabilise within
//! the 150k-instruction windows EXPERIMENTS.md records? Prints the
//! interval time series for two contrasting benchmarks.

use cfir_bench::{runner, Table};
use cfir_sim::{Mode, Pipeline, RegFileSize};
use cfir_workloads::by_name;

fn main() {
    for name in ["bzip2", "gzip"] {
        let w = by_name(name, runner::default_spec()).unwrap();
        let mut cfg = runner::config(Mode::Ci, 1, RegFileSize::Finite(512));
        cfg.max_insts = runner::max_insts();
        cfg.interval_cycles = 10_000;
        cfg.cosim_check = false;
        let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
        p.run();
        let mut t = Table::new(
            format!("warm-up: {name} (ci, 512 regs)"),
            &["cycle", "committed", "interval IPC", "cum. reuse%"],
        );
        for s in &p.stats.intervals {
            t.row(vec![
                s.cycle.to_string(),
                s.committed.to_string(),
                format!("{:.3}", s.interval_ipc),
                format!(
                    "{:.1}%",
                    100.0 * s.committed_reuse as f64 / s.committed.max(1) as f64
                ),
            ]);
        }
        cfir_bench::write_csv(&t, &format!("exp_warmup_{name}"));
    }
    println!("interval IPC should be flat after the first interval (cold caches).");
}
