//! Figure 8 — number of accesses to the L1 data cache for the scalar
//! baseline (scalxp), the wide bus (wbxp) and the CI mechanism (cixp),
//! with 1 and 2 ports.

use cfir_bench::{runner, Table};
use cfir_sim::{Mode, RegFileSize};

fn main() {
    let mut t = Table::new(
        "Figure 8: L1 D-cache accesses",
        &["bench", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"],
    );
    let mut rows: Vec<Vec<String>> = runner::suite_specs()
        .iter()
        .map(|(n, _)| vec![n.to_string()])
        .collect();
    for ports in [1u32, 2] {
        for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
            let cfg = runner::config(mode, ports, RegFileSize::Finite(512));
            for (bi, r) in runner::run_mode(&cfg, mode.label()).into_iter().enumerate() {
                rows[bi].push(r.stats.l1d_accesses.to_string());
            }
        }
    }
    for row in rows {
        t.row(row);
    }
    cfir_bench::write_csv(&t, "fig08");
    println!("paper: wide bus cuts accesses; ci cuts further despite extra speculative loads");
}
