//! Figure 8 — number of accesses to the L1 data cache for the scalar
//! baseline (scalxp), the wide bus (wbxp) and the CI mechanism (cixp),
//! with 1 and 2 ports. Thin wrapper over the `cfir_bench::experiments`
//! matrix.

fn main() {
    cfir_bench::experiments::standalone_main("fig08")
}
