//! # cfir-bench
//!
//! The figure/table regeneration harness. One binary per experiment
//! (`table1`, `fig04`, `fig05`, `fig08`–`fig14`, `exp_regs`,
//! `exp_coherence`) prints the same rows/series the paper reports,
//! both as an aligned text table and as CSV (written to `results/`).
//!
//! Run sizes are controlled by environment variables so the same
//! binaries serve quick smoke runs and full reproductions:
//!
//! * `CFIR_INSTS` — committed instructions per benchmark per config
//!   (default 300_000);
//! * `CFIR_ELEMS` — data-array elements (default 16384);
//! * `CFIR_SEED` — workload data seed (default 0xC0FFEE).
//!
//! Every binary also understands `--emit-json`: the figure binaries
//! additionally write `results/<name>.json` (versioned table + one
//! full statistics snapshot per run), and `smoke` prints the JSON
//! document to stdout instead of the table.

pub mod report;
pub mod runner;

pub use report::{emit_json_requested, report_json, write_csv, Table};
pub use runner::{default_spec, max_insts, run_mode, run_one, suite_specs, take_snapshots, RunRow};
