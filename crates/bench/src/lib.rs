//! # cfir-bench
//!
//! The figure/table regeneration library. Every experiment of the
//! evaluation (`table1`, `fig04`, `fig05`, `fig08`–`fig14`, the
//! ablations and the beyond-the-paper studies) is described as data in
//! [`experiments`]: a job matrix plus an aggregator that renders the
//! same rows/series the paper reports, as an aligned text table, CSV
//! (written to `results/`), and optionally a JSON snapshot bundle.
//!
//! `cfir-suite` (the orchestrator binary at the workspace root) runs
//! any subset of the matrix in parallel with caching and resume; the
//! per-figure binaries in `src/bin` are thin wrappers that run their
//! single experiment through the same harness.
//!
//! Run sizes are controlled by environment variables so the same
//! binaries serve quick smoke runs and full reproductions:
//!
//! * `CFIR_INSTS` — committed instructions per benchmark per config
//!   (default 150_000);
//! * `CFIR_ELEMS` — data-array elements (default 16384);
//! * `CFIR_SEED` — workload data seed (default 0xC0FFEE).
//!
//! Every binary also understands `--emit-json`: the figure binaries
//! additionally write `results/<name>.json` (versioned table + one
//! full statistics snapshot per run), and `smoke` prints the JSON
//! document to stdout instead of the table.

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::{emit_json_requested, report_json, report_json_checked, write_csv, Table};
pub use runner::{default_spec, max_insts, run_mode, run_one, suite_specs, RunRow};
