//! Std-only work-stealing thread pool with per-job fault isolation.
//!
//! Jobs are dealt round-robin onto per-worker deques; a worker pops
//! from the front of its own deque and steals from the back of the
//! others when idle, so stragglers rebalance without a central lock on
//! the hot path. Each job runs under `catch_unwind`: a panicking
//! simulation marks that job failed and the suite continues. Failed
//! jobs are retried up to a bound, and a wall-clock watchdog marks
//! jobs that exceed a per-job budget as timed out (their worker thread
//! is abandoned, not joined, so a wedged simulation cannot hang the
//! suite).
//!
//! Completion order is **not** deterministic; callers that need
//! determinism must reduce results by job index (as
//! [`crate::suite::run_suite`] does), never by arrival order.

use crate::job::{JobResult, JobSpec};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Execution knobs for one pool run.
#[derive(Debug, Clone, Default)]
pub struct PoolOptions {
    /// Worker threads. 0 = available parallelism.
    pub jobs: usize,
    /// Extra attempts after a failed/panicked run.
    pub retries: u32,
    /// Per-job wall-clock budget (`None` = no watchdog).
    pub timeout: Option<Duration>,
}

impl PoolOptions {
    /// Resolved worker count (at least 1).
    pub fn worker_count(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The run completed and reduced to a result (boxed: a `JobResult`
    /// is much larger than the other variants).
    Done(Box<JobResult>),
    /// Every attempt failed (error or panic); the message carries the
    /// last failure.
    Failed {
        /// Last error or panic payload.
        error: String,
        /// Attempts consumed (1 + retries that ran).
        attempts: u32,
    },
    /// The watchdog expired the job; its thread was abandoned.
    TimedOut {
        /// The budget that was exceeded.
        limit: Duration,
    },
}

impl JobOutcome {
    /// Whether this outcome carries a usable result.
    pub fn is_done(&self) -> bool {
        matches!(self, JobOutcome::Done(_))
    }
}

enum SlotState {
    /// Waiting in some deque (attempt number of the *next* run).
    Queued(u32),
    /// Executing on a worker since the instant.
    Running(Instant),
    /// Outcome delivered (by the worker or the watchdog).
    Decided,
}

struct Shared {
    specs: Vec<JobSpec>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    slots: Vec<Mutex<SlotState>>,
    undecided: AtomicUsize,
    retries: u32,
    tx: mpsc::Sender<(usize, JobOutcome, Duration)>,
    /// Jobs executing right now / the high-water mark of that count
    /// (reported as [`PoolStats::peak_workers`]).
    running: AtomicUsize,
    peak: AtomicUsize,
}

impl Shared {
    fn pop_task(&self, me: usize) -> Option<usize> {
        if let Some(t) = self.queues[me].lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let q = &self.queues[(me + off) % n];
            if let Some(t) = q.lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Move a slot to Decided and report it (with the wall-clock time
    /// the deciding run took), unless the watchdog got there first.
    /// Returns whether *we* decided it.
    fn decide(&self, idx: usize, outcome: JobOutcome, wall: Duration) -> bool {
        let mut st = self.slots[idx].lock().unwrap();
        if matches!(*st, SlotState::Decided) {
            return false; // watchdog already expired this job
        }
        *st = SlotState::Decided;
        drop(st);
        self.undecided.fetch_sub(1, Ordering::SeqCst);
        let _ = self.tx.send((idx, outcome, wall));
        true
    }

    fn run_task(&self, me: usize, idx: usize) {
        let started = Instant::now();
        let attempt = {
            let mut st = self.slots[idx].lock().unwrap();
            match *st {
                SlotState::Queued(a) => {
                    *st = SlotState::Running(started);
                    a
                }
                _ => return, // decided (or racing); nothing to do
            }
        };
        let spec = &self.specs[idx];
        let cur = self.running.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(cur, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| spec.execute()));
        self.running.fetch_sub(1, Ordering::SeqCst);
        let error = match outcome {
            Ok(Ok(result)) => {
                self.decide(idx, JobOutcome::Done(Box::new(result)), started.elapsed());
                return;
            }
            Ok(Err(e)) => e,
            Err(payload) => format!("panicked: {}", panic_message(&*payload)),
        };
        if attempt < self.retries {
            let mut st = self.slots[idx].lock().unwrap();
            if matches!(*st, SlotState::Decided) {
                return;
            }
            *st = SlotState::Queued(attempt + 1);
            drop(st);
            eprintln!(
                "cfir-suite: job {} failed (attempt {}): {error}; retrying",
                spec.display_name(),
                attempt + 1
            );
            self.queues[me].lock().unwrap().push_front(idx);
        } else {
            self.decide(
                idx,
                JobOutcome::Failed {
                    error,
                    attempts: attempt + 1,
                },
                started.elapsed(),
            );
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Occupancy bookkeeping of one pool run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Most jobs observed executing simultaneously (the pool's actual
    /// high-water occupancy, ≤ the worker-thread count).
    pub peak_workers: usize,
}

/// Run every spec to a terminal outcome, invoking `on_done(index,
/// outcome, wall)` on the **calling thread** as jobs finish (in
/// completion order); `wall` is the wall-clock time of the deciding
/// attempt, for throughput accounting. Workers steal from each other;
/// panics are isolated per job; `opts.timeout` bounds each job's wall
/// clock.
pub fn execute(
    specs: Vec<JobSpec>,
    opts: &PoolOptions,
    mut on_done: impl FnMut(usize, JobOutcome, Duration),
) -> PoolStats {
    let n = specs.len();
    if n == 0 {
        return PoolStats::default();
    }
    let workers = opts.worker_count().min(n);
    let (tx, rx) = mpsc::channel();
    let shared = Arc::new(Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        slots: (0..n).map(|_| Mutex::new(SlotState::Queued(0))).collect(),
        undecided: AtomicUsize::new(n),
        retries: opts.retries,
        specs,
        tx,
        running: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
    });
    for (i, q) in (0..n).zip((0..workers).cycle()) {
        shared.queues[q].lock().unwrap().push_back(i);
    }

    let mut handles = Vec::with_capacity(workers);
    for me in 0..workers {
        let sh = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name(format!("cfir-suite-worker-{me}"))
                .spawn(move || {
                    while sh.undecided.load(Ordering::SeqCst) > 0 {
                        match sh.pop_task(me) {
                            Some(idx) => sh.run_task(me, idx),
                            None => std::thread::park_timeout(Duration::from_millis(1)),
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }

    // The calling thread doubles as the watchdog: drain completions,
    // and on every tick expire jobs that overran the budget.
    let mut decided = 0usize;
    let mut timed_out = false;
    while decided < n {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((idx, outcome, wall)) => {
                decided += 1;
                on_done(idx, outcome, wall);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(limit) = opts.timeout {
                    for idx in 0..n {
                        let mut st = shared.slots[idx].lock().unwrap();
                        if let SlotState::Running(since) = *st {
                            if since.elapsed() > limit {
                                *st = SlotState::Decided;
                                drop(st);
                                shared.undecided.fetch_sub(1, Ordering::SeqCst);
                                timed_out = true;
                                decided += 1;
                                on_done(idx, JobOutcome::TimedOut { limit }, since.elapsed());
                            }
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    if !timed_out {
        for h in handles {
            let _ = h.join();
        }
    }
    // else: abandon workers — one of them may be wedged inside a
    // timed-out simulation, and joining it would hang the suite.
    PoolStats {
        peak_workers: shared.peak.load(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadRef;
    use cfir_sim::SimConfig;

    fn selftest(panic: bool, sleep_ms: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadRef::SelfTest { panic, sleep_ms },
            cfg: SimConfig::paper_baseline(),
            max_insts: sleep_ms + panic as u64, // distinct fingerprints
            sampling: None,
        }
    }

    fn run(specs: Vec<JobSpec>, opts: &PoolOptions) -> Vec<Option<JobOutcome>> {
        let mut out: Vec<Option<JobOutcome>> = specs.iter().map(|_| None).collect();
        execute(specs, opts, |i, o, _| out[i] = Some(o));
        out
    }

    #[test]
    fn all_jobs_reach_an_outcome() {
        let specs: Vec<_> = (0..8).map(|i| selftest(false, i % 3)).collect();
        let out = run(
            specs,
            &PoolOptions {
                jobs: 4,
                ..Default::default()
            },
        );
        assert!(out.iter().all(|o| matches!(o, Some(JobOutcome::Done(_)))));
    }

    #[test]
    fn panic_fails_alone() {
        let specs = vec![selftest(false, 0), selftest(true, 0), selftest(false, 1)];
        let out = run(
            specs,
            &PoolOptions {
                jobs: 2,
                ..Default::default()
            },
        );
        assert!(out[0].as_ref().unwrap().is_done());
        assert!(out[2].as_ref().unwrap().is_done());
        match out[1].as_ref().unwrap() {
            JobOutcome::Failed { error, attempts } => {
                assert_eq!(*attempts, 1);
                assert!(error.contains("panick"), "{error}");
            }
            o => panic!("expected Failed, got {o:?}"),
        }
    }

    #[test]
    fn retries_are_bounded() {
        let out = run(
            vec![selftest(true, 0)],
            &PoolOptions {
                jobs: 1,
                retries: 2,
                ..Default::default()
            },
        );
        match out[0].as_ref().unwrap() {
            JobOutcome::Failed { attempts, .. } => assert_eq!(*attempts, 3),
            o => panic!("expected Failed, got {o:?}"),
        }
    }

    #[test]
    fn peak_occupancy_is_observed_and_bounded() {
        let specs: Vec<_> = (0..6).map(|_| selftest(false, 30)).collect();
        let stats = execute(
            specs,
            &PoolOptions {
                jobs: 3,
                ..Default::default()
            },
            |_, _, _| {},
        );
        assert!(
            (1..=3).contains(&stats.peak_workers),
            "peak {} outside 1..=3",
            stats.peak_workers
        );
    }

    #[test]
    fn watchdog_expires_overrunning_jobs() {
        let specs = vec![selftest(false, 2_000), selftest(false, 0)];
        let out = run(
            specs,
            &PoolOptions {
                jobs: 2,
                timeout: Some(Duration::from_millis(200)),
                ..Default::default()
            },
        );
        assert!(
            matches!(out[0], Some(JobOutcome::TimedOut { .. })),
            "sleeper must be expired, got {:?}",
            out[0]
        );
        assert!(out[1].as_ref().unwrap().is_done());
    }
}
