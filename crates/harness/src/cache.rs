//! Content-addressed on-disk result cache.
//!
//! One file per job, named by the FNV-1a hash of the job fingerprint:
//! `<dir>/<key>.json` holding `{"fingerprint": …, "result": …}`. The
//! full fingerprint is stored alongside the result and re-checked on
//! every read, so hash collisions and stale entries (a version bump
//! changes the fingerprint) read as misses, never as wrong results.

use crate::job::{JobResult, JobSpec};
use cfir_obs::json;
use cfir_obs::JsonWriter;
use std::path::{Path, PathBuf};

/// Handle to a cache directory (created lazily on first write).
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// A cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache { dir: dir.into() }
    }

    /// The default location: `target/cfir-suite-cache/` next to the
    /// build artifacts, so `cargo clean` clears it.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/cfir-suite-cache")
    }

    fn path_for(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.json", spec.key()))
    }

    /// Look up a completed result for `spec`.
    ///
    /// `Ok(None)` is a plain miss (no file, or a different fingerprint
    /// behind the same hash). `Err` means the entry exists but is
    /// malformed — the message names the job and the offending file so
    /// the caller can warn and re-run instead of aborting the suite.
    pub fn get(&self, spec: &JobSpec) -> Result<Option<JobResult>, String> {
        let path = self.path_for(spec);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(format!(
                    "cache entry {} for {}: unreadable: {e}",
                    path.display(),
                    spec.display_name()
                ))
            }
        };
        let ctx = |what: &str| {
            format!(
                "cache entry {} for {}: {what}",
                path.display(),
                spec.display_name()
            )
        };
        let v = json::parse(&text).map_err(|e| ctx(&format!("invalid JSON: {e}")))?;
        let fp = v
            .get("fingerprint")
            .and_then(|x| x.as_str())
            .ok_or_else(|| ctx("missing `fingerprint`"))?;
        if fp != spec.fingerprint() {
            return Ok(None); // stale entry or hash collision: miss
        }
        let result = v
            .get("result")
            .and_then(|x| x.as_str())
            .ok_or_else(|| ctx("missing `result`"))?;
        JobResult::from_json(result)
            .map(Some)
            .map_err(|e| ctx(&format!("malformed result: {e}")))
    }

    /// Store a completed result. Best-effort: a write failure is
    /// reported but must not fail the job that produced the result.
    pub fn put(&self, spec: &JobSpec, result: &JobResult) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cache dir {}: {e}", self.dir.display()))?;
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("fingerprint", &spec.fingerprint());
        w.field_str("result", &result.to_json());
        w.end_obj();
        let path = self.path_for(spec);
        // Write-then-rename so a concurrent reader never sees a torn
        // entry; concurrent writers of the same key race benignly (the
        // content is identical by construction).
        let tmp = self
            .dir
            .join(format!("{:016x}.tmp.{}", spec.key(), std::process::id()));
        std::fs::write(&tmp, w.finish()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename to {}: {e}", path.display()))
    }

    /// Where this cache lives (for log messages).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadRef;
    use cfir_sim::SimConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cfir-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn selftest_spec() -> JobSpec {
        JobSpec {
            workload: WorkloadRef::SelfTest {
                panic: false,
                sleep_ms: 0,
            },
            cfg: SimConfig::paper_baseline(),
            max_insts: 10,
            sampling: None,
        }
    }

    #[test]
    fn roundtrip_hit_and_stale_miss() {
        let cache = Cache::new(tmpdir("roundtrip"));
        let spec = selftest_spec();
        assert_eq!(cache.get(&spec).unwrap(), None, "cold cache misses");
        let r = spec.execute().unwrap();
        cache.put(&spec, &r).unwrap();
        assert_eq!(
            cache.get(&spec).unwrap(),
            Some(r.clone()),
            "warm cache hits"
        );

        // Same key on disk, different fingerprint (simulated version
        // bump): must read as a miss, not as a wrong result.
        let path = cache.dir().join(format!("{:016x}.json", spec.key()));
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, doc.replace("cfir-suite v", "cfir-suite OLD v")).unwrap();
        assert_eq!(cache.get(&spec).unwrap(), None, "stale entries miss");
    }

    #[test]
    fn malformed_entry_names_job_and_file() {
        let cache = Cache::new(tmpdir("malformed"));
        let spec = selftest_spec();
        cache.put(&spec, &spec.execute().unwrap()).unwrap();
        let path = cache.dir().join(format!("{:016x}.json", spec.key()));
        std::fs::write(&path, "{not json").unwrap();
        let err = cache.get(&spec).unwrap_err();
        assert!(err.contains("selftest"), "names the job: {err}");
        assert!(err.contains(".json"), "names the file: {err}");
    }
}
