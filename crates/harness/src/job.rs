//! One simulation point as data: the schedulable, cacheable job.

use cfir_obs::json::{self, JsonValue};
use cfir_obs::JsonWriter;
use cfir_sim::{Pipeline, SimConfig};
use cfir_workloads::{by_name, micro, Workload, WorkloadSpec};

/// Which program a job simulates.
#[derive(Debug, Clone)]
pub enum WorkloadRef {
    /// A named suite kernel (`cfir_workloads::by_name`).
    Named {
        /// Benchmark name (`bzip2` … `vpr`).
        name: String,
        /// Generation parameters (iterations, elements, seed).
        spec: WorkloadSpec,
    },
    /// The §2.4.2 multi-phase DAEC microbenchmark
    /// (`cfir_workloads::micro::multi_phase`).
    MultiPhase {
        /// Iterations before the active loop switches.
        phase_len: i64,
    },
    /// A synthetic job for harness self-tests: sleeps, then either
    /// returns a stub result or panics. Never part of a real matrix.
    SelfTest {
        /// Panic instead of returning (exercises panic isolation).
        panic: bool,
        /// Wall-clock stall before finishing (exercises the watchdog).
        sleep_ms: u64,
    },
}

impl WorkloadRef {
    /// Canonical text used inside the job fingerprint.
    fn fingerprint(&self) -> String {
        match self {
            WorkloadRef::Named { name, spec } => format!(
                "named:{name} iters={} elems={} seed={}",
                spec.iters, spec.elems, spec.seed
            ),
            WorkloadRef::MultiPhase { phase_len } => format!("multi-phase:{phase_len}"),
            WorkloadRef::SelfTest { panic, sleep_ms } => {
                format!("selftest:panic={panic},sleep={sleep_ms}")
            }
        }
    }

    /// Workload name as it appears in results and snapshots.
    pub fn display_name(&self) -> &str {
        match self {
            WorkloadRef::Named { name, .. } => name,
            WorkloadRef::MultiPhase { .. } => "multi-phase",
            WorkloadRef::SelfTest { .. } => "selftest",
        }
    }
}

/// Statistical-sampling parameters of a job (see `cfir_sample`).
/// `None` in a [`JobSpec`] means a conventional full detailed run;
/// `Some` routes the job through the checkpointed sampling driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingParams {
    /// Instructions between successive detailed regions.
    pub period: u64,
    /// Detailed warmup instructions per window (excluded from stats).
    pub warmup: u64,
    /// Measured detailed instructions per window.
    pub window: u64,
}

/// One (workload, configuration) simulation point.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program to run.
    pub workload: WorkloadRef,
    /// Full simulator configuration (mode, registers, ports, mechanism
    /// knobs, interval cadence — everything that shapes the run).
    pub cfg: SimConfig,
    /// Committed-instruction budget.
    pub max_insts: u64,
    /// `Some` = run under checkpointed statistical sampling instead of
    /// full detailed simulation. Part of the fingerprint either way,
    /// so sampled and full runs of the same point never share a cache
    /// entry.
    pub sampling: Option<SamplingParams>,
}

impl JobSpec {
    /// Canonical encoding of everything that affects this job's
    /// result. Two jobs with equal fingerprints are the same point;
    /// the on-disk cache stores the fingerprint next to the result and
    /// rejects entries whose fingerprint no longer matches, so a
    /// version bump (or any config drift) invalidates stale results
    /// instead of silently reusing them.
    pub fn fingerprint(&self) -> String {
        format!(
            "cfir-suite v{} schema{} | {} | max_insts={} | sampling={:?} | {:?}",
            env!("CARGO_PKG_VERSION"),
            cfir_sim::SCHEMA_VERSION,
            self.workload.fingerprint(),
            self.max_insts,
            self.sampling,
            self.cfg,
        )
    }

    /// Content address: FNV-1a of the fingerprint.
    pub fn key(&self) -> u64 {
        crate::fnv1a64(self.fingerprint().as_bytes())
    }

    /// Short human label for progress and error messages, e.g.
    /// `bzip2/ci [3fa94c2b]`.
    pub fn display_name(&self) -> String {
        format!(
            "{}/{} [{:08x}]",
            self.workload.display_name(),
            self.cfg.mode.label(),
            self.key() >> 32,
        )
    }

    fn build_workload(&self) -> Result<Workload, String> {
        match &self.workload {
            WorkloadRef::Named { name, spec } => {
                by_name(name, *spec).ok_or_else(|| format!("unknown benchmark `{name}`"))
            }
            WorkloadRef::MultiPhase { phase_len } => Ok(micro::multi_phase(*phase_len)),
            WorkloadRef::SelfTest { .. } => unreachable!("selftest jobs never build a workload"),
        }
    }

    /// Run the simulation and reduce it to a [`JobResult`].
    ///
    /// Called on a pool worker thread; panics are caught by the pool,
    /// not here, so a crashing run fails this job alone.
    pub fn execute(&self) -> Result<JobResult, String> {
        if let WorkloadRef::SelfTest { panic, sleep_ms } = self.workload {
            if sleep_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            }
            if panic {
                panic!("selftest job panicking on request");
            }
            return Ok(JobResult {
                name: "selftest".into(),
                mode_label: self.cfg.mode.label().into(),
                cycles: 1,
                snapshot: "{}".into(),
                ..JobResult::default()
            });
        }
        let w = self.build_workload()?;
        let mut cfg = self.cfg.clone();
        cfg.max_insts = self.max_insts;
        cfg.cosim_check = false; // benchmarking: the oracle is exercised in tests
        let mode = cfg.mode;
        if let Some(sp) = self.sampling {
            let s = cfir_sample::run_sampled(
                &w.prog,
                &w.mem,
                w.name,
                cfg,
                cfir_sample::SamplingConfig {
                    period: sp.period,
                    warmup: sp.warmup,
                    window: sp.window,
                    ..Default::default()
                },
            );
            let snapshot = s.snapshot_json(mode.label());
            return Ok(JobResult::from_stats(
                w.name,
                mode.label(),
                &s.stats,
                snapshot,
            ));
        }
        let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
        // Scope any env-configured trace sink to this job so parallel
        // jobs do not clobber one another's trace files.
        p.scope_trace(&format!("{:016x}", self.key()));
        p.run();
        let snapshot = cfir_sim::run_json(w.name, mode.label(), &p.stats);
        Ok(JobResult::from_stats(
            w.name,
            mode.label(),
            &p.stats,
            snapshot,
        ))
    }
}

/// One interval sample carried through the cache (the columns
/// `exp_warmup` reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalRow {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Reused instructions committed so far.
    pub committed_reuse: u64,
    /// IPC over the last interval only.
    pub interval_ipc: f64,
}

/// The reduced, cacheable result of one job: every counter the
/// aggregators consume, plus the full `run_json` snapshot for
/// `--emit-json` bundles. Rates are recomputed from raw counters (same
/// formulas as `SimStats`) so cached and fresh results format
/// identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobResult {
    /// Workload name.
    pub name: String,
    /// Machine-mode label (`scal`, `wb`, `ci-iw`, `ci`, `vect`).
    pub mode_label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed instructions that reused a precomputed value.
    pub committed_reuse: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Wrong-path instructions squashed.
    pub squashed: u64,
    /// Replica instructions created by the vectorizer.
    pub replicas_created: u64,
    /// Replica instructions executed.
    pub replicas_executed: u64,
    /// Reuse validations that failed at decode.
    pub validation_failures: u64,
    /// Reuse validations that failed the commit-time check.
    pub commit_check_failures: u64,
    /// L1 D-cache accesses.
    pub l1d_accesses: u64,
    /// L1 D-cache misses.
    pub l1d_misses: u64,
    /// Stores committed.
    pub stores: u64,
    /// Stores conflicting with a speculatively-loaded range (§2.4.3).
    pub store_conflicts: u64,
    /// Sum of propagated-stridedPC set sizes (Figure 4's 1.7 average).
    pub strided_pc_sum: u64,
    /// Samples backing `strided_pc_sum`.
    pub strided_pc_samples: u64,
    /// Per-cycle register-occupancy integral (§2.4.2).
    pub reg_occupancy_sum: u64,
    /// High-water mark of physical registers in use.
    pub reg_high_water: u64,
    /// Figure-5 classification: mispredictions with no CI found.
    pub ev_not_found: u64,
    /// Figure-5 classification: CI selected but nothing reused.
    pub ev_selected: u64,
    /// Figure-5 classification: at least one instance reused.
    pub ev_reuse: u64,
    /// All dynamic conditional-branch mispredictions.
    pub total_mispredictions: u64,
    /// Interval time series (empty unless the config sampled).
    pub intervals: Vec<IntervalRow>,
    /// The full `cfir_sim::run_json` snapshot document.
    pub snapshot: String,
}

impl JobResult {
    /// Reduce finished-run statistics (the counters above plus the
    /// snapshot document rendered by the caller).
    pub fn from_stats(
        name: &str,
        mode_label: &str,
        s: &cfir_sim::SimStats,
        snapshot: String,
    ) -> JobResult {
        let (nf, sel, reu) = s.events.counts();
        JobResult {
            name: name.to_string(),
            mode_label: mode_label.to_string(),
            cycles: s.cycles,
            committed: s.committed,
            committed_reuse: s.committed_reuse,
            branches: s.branches,
            mispredicts: s.mispredicts,
            squashed: s.squashed,
            replicas_created: s.replicas_created,
            replicas_executed: s.replicas_executed,
            validation_failures: s.validation_failures,
            commit_check_failures: s.commit_check_failures,
            l1d_accesses: s.l1d_accesses,
            l1d_misses: s.l1d_misses,
            stores: s.stores,
            store_conflicts: s.store_conflicts,
            strided_pc_sum: s.strided_pc_sum,
            strided_pc_samples: s.strided_pc_samples,
            reg_occupancy_sum: s.reg_occupancy_sum,
            reg_high_water: s.reg_high_water,
            ev_not_found: nf,
            ev_selected: sel,
            ev_reuse: reu,
            total_mispredictions: s.events.total_mispredictions,
            intervals: s
                .intervals
                .iter()
                .map(|i| IntervalRow {
                    cycle: i.cycle,
                    committed: i.committed,
                    committed_reuse: i.committed_reuse,
                    interval_ipc: i.interval_ipc,
                })
                .collect(),
            snapshot,
        }
    }

    /// Instructions per cycle (same formula as `SimStats::ipc`).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of committed instructions that reused a value.
    pub fn reuse_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.committed_reuse as f64 / self.committed as f64
        }
    }

    /// Fraction of committed stores that hit a speculative load range.
    pub fn store_conflict_fraction(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.store_conflicts as f64 / self.stores as f64
        }
    }

    /// Average propagated stridedPCs per propagating rename write.
    pub fn avg_strided_pcs(&self) -> f64 {
        if self.strided_pc_samples == 0 {
            0.0
        } else {
            self.strided_pc_sum as f64 / self.strided_pc_samples as f64
        }
    }

    /// Average physical registers in use per cycle.
    pub fn avg_regs_in_use(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.reg_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Wrong-path activity as a fraction of all executed work (§4).
    pub fn wrong_path_fraction(&self) -> f64 {
        let wasted = self.squashed + self.replicas_executed;
        let total = self.committed + wasted;
        if total == 0 {
            0.0
        } else {
            wasted as f64 / total as f64
        }
    }

    /// Figure-5 classification fractions of `total_mispredictions`
    /// (not-found, selected-without-reuse, reused).
    pub fn event_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_mispredictions.max(1) as f64;
        (
            self.ev_not_found as f64 / t,
            self.ev_selected as f64 / t,
            self.ev_reuse as f64 / t,
        )
    }

    /// Serialize for the on-disk cache.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("result_version", 1)
            .field_str("name", &self.name)
            .field_str("mode", &self.mode_label);
        for (k, v) in self.u64_fields() {
            w.field_u64(k, v);
        }
        w.key("intervals").begin_arr();
        for i in &self.intervals {
            w.begin_arr()
                .u64_val(i.cycle)
                .u64_val(i.committed)
                .u64_val(i.committed_reuse)
                .f64_val(i.interval_ipc)
                .end_arr();
        }
        w.end_arr();
        w.field_str("snapshot", &self.snapshot);
        w.end_obj();
        w.finish()
    }

    /// Parse a cached result; the error names what is malformed.
    pub fn from_json(doc: &str) -> Result<JobResult, String> {
        let v = json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing or non-integer field `{k}`"))
        };
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{k}`"))
        };
        if u("result_version")? != 1 {
            return Err("unsupported result_version".into());
        }
        let mut intervals = Vec::new();
        for (n, row) in interval_rows(&v)?.iter().enumerate() {
            let arr = row
                .as_arr()
                .filter(|a| a.len() == 4)
                .ok_or_else(|| format!("interval {n}: expected a 4-element array"))?;
            intervals.push(IntervalRow {
                cycle: arr[0].as_u64().ok_or("interval cycle")?,
                committed: arr[1].as_u64().ok_or("interval committed")?,
                committed_reuse: arr[2].as_u64().ok_or("interval committed_reuse")?,
                interval_ipc: arr[3].as_f64().ok_or("interval ipc")?,
            });
        }
        let mut r = JobResult {
            name: s("name")?,
            mode_label: s("mode")?,
            intervals,
            snapshot: s("snapshot")?,
            ..JobResult::default()
        };
        for (k, slot) in r.u64_fields_mut() {
            *slot = u(k)?;
        }
        Ok(r)
    }

    fn u64_fields(&self) -> Vec<(&'static str, u64)> {
        let mut c = self.clone();
        c.u64_fields_mut()
            .into_iter()
            .map(|(k, v)| (k, *v))
            .collect()
    }

    /// One list of (key, field) pairs driving both serialization
    /// directions, so the two can never drift apart.
    fn u64_fields_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![
            ("cycles", &mut self.cycles),
            ("committed", &mut self.committed),
            ("committed_reuse", &mut self.committed_reuse),
            ("branches", &mut self.branches),
            ("mispredicts", &mut self.mispredicts),
            ("squashed", &mut self.squashed),
            ("replicas_created", &mut self.replicas_created),
            ("replicas_executed", &mut self.replicas_executed),
            ("validation_failures", &mut self.validation_failures),
            ("commit_check_failures", &mut self.commit_check_failures),
            ("l1d_accesses", &mut self.l1d_accesses),
            ("l1d_misses", &mut self.l1d_misses),
            ("stores", &mut self.stores),
            ("store_conflicts", &mut self.store_conflicts),
            ("strided_pc_sum", &mut self.strided_pc_sum),
            ("strided_pc_samples", &mut self.strided_pc_samples),
            ("reg_occupancy_sum", &mut self.reg_occupancy_sum),
            ("reg_high_water", &mut self.reg_high_water),
            ("ev_not_found", &mut self.ev_not_found),
            ("ev_selected", &mut self.ev_selected),
            ("ev_reuse", &mut self.ev_reuse),
            ("total_mispredictions", &mut self.total_mispredictions),
        ]
    }
}

fn interval_rows(v: &JsonValue) -> Result<&[JsonValue], String> {
    v.get("intervals")
        .and_then(|x| x.as_arr())
        .ok_or_else(|| "missing `intervals` array".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_sim::{Mode, RegFileSize};

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            workload: WorkloadRef::Named {
                name: name.into(),
                spec: WorkloadSpec {
                    iters: 1 << 30,
                    elems: 256,
                    seed: 7,
                },
            },
            cfg: cfir_sim::SimConfig::paper_baseline()
                .with_mode(Mode::Ci)
                .with_dports(1)
                .with_regs(RegFileSize::Finite(512)),
            max_insts: 2_000,
            sampling: None,
        }
    }

    #[test]
    fn fingerprint_distinguishes_points() {
        let a = spec("bzip2");
        let mut b = spec("bzip2");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.key(), b.key());
        b.cfg.mech.strided_pc_slots = 4;
        assert_ne!(a.fingerprint(), b.fingerprint(), "mech knobs must key");
        let c = spec("gzip");
        assert_ne!(a.key(), c.key());
        let mut d = spec("bzip2");
        d.max_insts += 1;
        assert_ne!(a.key(), d.key());
        let mut e = spec("bzip2");
        e.sampling = Some(SamplingParams {
            period: 10_000,
            warmup: 1_000,
            window: 1_000,
        });
        assert_ne!(
            a.key(),
            e.key(),
            "sampled and full runs must not share a cache entry"
        );
    }

    #[test]
    fn sampled_job_executes_and_carries_the_sampling_object() {
        let mut s = spec("bzip2");
        s.max_insts = 40_000;
        s.sampling = Some(SamplingParams {
            period: 10_000,
            warmup: 1_000,
            window: 1_000,
        });
        let r = s.execute().expect("sampled job runs");
        assert!(r.cycles > 0);
        assert!(r.committed > 0, "measured windows commit instructions");
        let v = json::parse(&r.snapshot).expect("snapshot parses");
        let samp = v.get("sampling").expect("sampling object present");
        assert!(samp.get("windows").unwrap().as_arr().unwrap().len() >= 2);
        // Determinism across executions holds for sampled jobs too.
        let r2 = s.execute().unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn execute_and_roundtrip() {
        let r = spec("bzip2").execute().expect("runs");
        assert!(r.committed >= 2_000);
        assert!(r.ipc() > 0.1);
        assert!(!r.snapshot.is_empty());
        let back = JobResult::from_json(&r.to_json()).expect("roundtrips");
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_result_names_the_field() {
        let r = spec("bzip2").execute().unwrap();
        let doc = r.to_json().replace("\"cycles\"", "\"cycles_gone\"");
        let err = JobResult::from_json(&doc).unwrap_err();
        assert!(err.contains("cycles"), "error must name the field: {err}");
    }

    #[test]
    fn deterministic_across_executions() {
        let a = spec("gcc").execute().unwrap();
        let b = spec("gcc").execute().unwrap();
        assert_eq!(a, b, "same job must reduce to identical results");
    }
}
