//! # cfir-harness
//!
//! Parallel, resumable experiment orchestration for the CFIR
//! evaluation suite.
//!
//! The paper's evaluation is a large grid — 12 benchmarks × machine
//! modes × register/port/latency sweeps. This crate treats every
//! (workload, configuration) point as a schedulable, cacheable,
//! fault-isolated **job**:
//!
//! * [`job::JobSpec`] — one simulation point, fully described by data
//!   (workload reference + `SimConfig` + instruction budget). Its
//!   [`fingerprint`](job::JobSpec::fingerprint) canonically encodes
//!   everything that affects the result, so identical points are
//!   deduplicated across experiments and content-addressed on disk.
//! * [`pool`] — a std-only work-stealing thread pool (`--jobs N`) with
//!   per-job panic isolation (`catch_unwind`; a panicking run fails
//!   alone), bounded retries and a wall-clock watchdog per job.
//! * [`cache`] — a content-addressed on-disk result cache keyed by
//!   `hash(workload spec, sim config, sim version)`; `--resume` skips
//!   completed points after a crash or an interrupted sweep.
//! * [`suite`] — declarative [`Experiment`](suite::Experiment)s (jobs
//!   plus an aggregation function) reduced **deterministically**:
//!   aggregation consumes results in job-definition order, never in
//!   completion order, so `--jobs 1` and `--jobs 16` produce
//!   byte-identical artifacts.
//!
//! The experiment definitions themselves (every figure, table and
//! ablation of the paper expressed as data) live in
//! `cfir_bench::experiments`; the `cfir-suite` binary is the driver.

pub mod cache;
pub mod job;
pub mod pool;
pub mod suite;

pub use cache::Cache;
pub use job::{IntervalRow, JobResult, JobSpec, SamplingParams, WorkloadRef};
pub use pool::{JobOutcome, PoolOptions};
pub use suite::{
    run_suite, AggCtx, Artifact, Experiment, ExperimentOutput, ExperimentStatus, JobPerf,
    SuiteOptions, SuiteReport,
};

/// FNV-1a 64-bit hash (the content address of a job fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        // Regression pin so cache file names never silently change.
        assert_eq!(fnv1a64(b"cfir"), fnv1a64(b"cfir"));
    }
}
