//! Declarative experiments and the suite runner.
//!
//! An [`Experiment`] is a named list of [`JobSpec`]s plus an
//! aggregation function that reduces the finished results — **in job
//! definition order, never completion order** — into artifacts
//! (CSV/JSON files under the output directory) and a human-readable
//! stdout block. [`run_suite`] deduplicates identical points across
//! experiments (same fingerprint → simulated once), consults the
//! on-disk [`Cache`], runs the remainder on the [`pool`](crate::pool),
//! and aggregates each experiment **as soon as its last job lands**
//! while the rest of the suite keeps executing.
//!
//! Because aggregation only ever reads results by job index, the
//! artifacts are byte-identical for `--jobs 1` and `--jobs 16`.

use crate::cache::Cache;
use crate::job::{JobResult, JobSpec};
use crate::pool::{self, JobOutcome, PoolOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Context handed to aggregation functions.
#[derive(Debug, Clone)]
pub struct AggCtx {
    /// Whether JSON artifacts (snapshot bundles) were requested.
    pub emit_json: bool,
}

/// One file produced by an experiment.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Path relative to the suite output directory (e.g. `fig04.csv`).
    pub rel_path: String,
    /// Full file contents.
    pub contents: String,
}

/// What an aggregation function returns.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// Files to write under the output directory.
    pub artifacts: Vec<Artifact>,
    /// Rendered tables / notes for the terminal.
    pub stdout: String,
}

/// Aggregation function: results arrive in job-definition order.
pub type AggregateFn =
    Box<dyn Fn(&AggCtx, &[&JobResult]) -> Result<ExperimentOutput, String> + Send + Sync>;

/// One figure/table/ablation of the evaluation, expressed as data.
pub struct Experiment {
    /// Stable name (also the artifact base name), e.g. `fig09`.
    pub name: &'static str,
    /// One-line description for `--list` and `INDEX.md`.
    pub title: &'static str,
    /// The simulation points this experiment needs.
    pub jobs: Vec<JobSpec>,
    /// Reduction of finished jobs into artifacts.
    pub aggregate: AggregateFn,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// Suite execution options.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Extra attempts per failing job.
    pub retries: u32,
    /// Per-job wall-clock budget.
    pub timeout: Option<Duration>,
    /// Reuse cached results (otherwise every point is re-simulated;
    /// completed points are written to the cache either way).
    pub resume: bool,
    /// Cache directory (`None` = [`Cache::default_dir`]).
    pub cache_dir: Option<PathBuf>,
    /// Also write JSON snapshot bundles next to the CSVs.
    pub emit_json: bool,
    /// Artifact directory (the serial binaries' `results/`).
    pub out_dir: PathBuf,
    /// Suppress per-experiment stdout blocks (summary still prints).
    pub quiet: bool,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            jobs: 0,
            retries: 0,
            timeout: Some(Duration::from_secs(600)),
            resume: false,
            cache_dir: None,
            emit_json: false,
            out_dir: PathBuf::from("results"),
            quiet: false,
        }
    }
}

/// Terminal state of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentStatus {
    /// Experiment name.
    pub name: &'static str,
    /// Aggregation error or the failure of any underlying job.
    pub error: Option<String>,
    /// Files written (relative to `out_dir`).
    pub artifacts: Vec<String>,
    /// Suite time elapsed when this experiment's last point landed and
    /// it aggregated (experiments stream, so these overlap; they do
    /// not sum to the suite wall clock).
    pub wall: Duration,
    /// Jobs in this experiment's definition (duplicates included).
    pub jobs: usize,
    /// Of this experiment's jobs, how many it owned and simulated.
    pub executed: usize,
    /// Of this experiment's jobs, how many it owned and served from
    /// cache.
    pub cached: usize,
    /// Of this experiment's jobs, how many resolved to a point owned
    /// elsewhere: first claimed by an earlier experiment, or a repeat
    /// of a point already counted within this one. The invariant
    /// `executed + cached + deduped == jobs` holds per experiment, and
    /// summing `executed`/`cached` across experiments reproduces the
    /// suite totals exactly.
    pub deduped: usize,
}

impl ExperimentStatus {
    /// Whether the experiment fully succeeded.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What a suite run did.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// Jobs across all experiments before deduplication.
    pub total_jobs: usize,
    /// Distinct simulation points.
    pub unique_jobs: usize,
    /// Points actually simulated this run.
    pub executed: usize,
    /// Points served from the cache.
    pub cached: usize,
    /// Points whose every attempt failed.
    pub failed: usize,
    /// Points expired by the watchdog.
    pub timed_out: usize,
    /// Per-experiment outcomes, in definition order.
    pub experiments: Vec<ExperimentStatus>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// High-water mark of jobs executing simultaneously on the pool.
    pub peak_workers: usize,
    /// Throughput of every point simulated this run (cache hits and
    /// failures excluded), in job-definition order.
    pub perf: Vec<JobPerf>,
}

/// Detailed-core throughput of one executed simulation point.
#[derive(Debug, Clone)]
pub struct JobPerf {
    /// Workload name (`bzip2` … `vpr`).
    pub name: String,
    /// Machine-mode label (`scal`, `wb`, `ci-iw`, `ci`, `vect`).
    pub mode: String,
    /// Instructions the detailed core committed.
    pub committed: u64,
    /// Wall-clock time of the simulating attempt.
    pub wall: Duration,
}

impl JobPerf {
    /// Committed instructions per wall-clock second (0 when the clock
    /// read as zero).
    pub fn insts_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.committed as f64 / s
        } else {
            0.0
        }
    }
}

impl SuiteReport {
    /// True when every job and every aggregation succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.timed_out == 0 && self.experiments.iter().all(|e| e.ok())
    }

    /// The one-line machine-greppable summary. New fields are only
    /// ever appended, so existing greps on the prefix keep matching.
    pub fn summary_line(&self) -> String {
        format!(
            "suite: {} jobs ({} unique) — {} executed, {} cached, {} failed, {} timed out in {:.2}s (peak {} workers)",
            self.total_jobs,
            self.unique_jobs,
            self.executed,
            self.cached,
            self.failed,
            self.timed_out,
            self.wall.as_secs_f64(),
            self.peak_workers
        )
    }
}

/// Run `experiments` to completion under `opts`. See module docs.
pub fn run_suite(experiments: Vec<Experiment>, opts: &SuiteOptions) -> SuiteReport {
    let t0 = Instant::now();
    let cache = Cache::new(opts.cache_dir.clone().unwrap_or_else(Cache::default_dir));
    let ctx = AggCtx {
        emit_json: opts.emit_json,
    };

    // Deduplicate identical points across (and within) experiments.
    let mut unique: Vec<JobSpec> = Vec::new();
    let mut by_fp: HashMap<String, usize> = HashMap::new();
    // Which experiment first introduced each unique point: that one
    // (and only that one) counts it as executed/cached; everyone else
    // attributes it to `deduped`.
    let mut owner: Vec<usize> = Vec::new();
    // Per experiment: its jobs as indices into `unique`.
    let mut exp_jobs: Vec<Vec<usize>> = Vec::new();
    for (e, exp) in experiments.iter().enumerate() {
        let idxs = exp
            .jobs
            .iter()
            .map(|spec| {
                *by_fp.entry(spec.fingerprint()).or_insert_with(|| {
                    unique.push(spec.clone());
                    owner.push(e);
                    unique.len() - 1
                })
            })
            .collect();
        exp_jobs.push(idxs);
    }

    let mut report = SuiteReport {
        total_jobs: exp_jobs.iter().map(|j| j.len()).sum(),
        unique_jobs: unique.len(),
        ..SuiteReport::default()
    };

    // Cache pass: resolve what we can without simulating.
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; unique.len()];
    let mut from_cache: Vec<bool> = vec![false; unique.len()];
    if opts.resume {
        for (i, spec) in unique.iter().enumerate() {
            match cache.get(spec) {
                Ok(Some(result)) => {
                    outcomes[i] = Some(JobOutcome::Done(Box::new(result)));
                    from_cache[i] = true;
                    report.cached += 1;
                }
                Ok(None) => {}
                Err(e) => eprintln!("cfir-suite: {e}; re-running"),
            }
        }
    }
    let from_cache = from_cache; // frozen: the pool only executes misses

    // Experiments whose every point is already resolved aggregate now;
    // the rest stream in as the pool completes their last point.
    let mut remaining: Vec<usize> = exp_jobs
        .iter()
        .map(|idxs| {
            let mut seen = std::collections::HashSet::new();
            idxs.iter()
                .filter(|&&i| outcomes[i].is_none() && seen.insert(i))
                .count()
        })
        .collect();
    let mut statuses: Vec<Option<ExperimentStatus>> = experiments.iter().map(|_| None).collect();
    let finalize = |e: usize,
                    experiments: &[Experiment],
                    outcomes: &[Option<JobOutcome>],
                    statuses: &mut Vec<Option<ExperimentStatus>>| {
        let exp = &experiments[e];
        let (mut status, stdout_block) =
            finalize_experiment(exp, &exp_jobs[e], outcomes, &ctx, opts);
        status.wall = t0.elapsed();
        status.jobs = exp_jobs[e].len();
        let mut seen = std::collections::HashSet::new();
        for &i in &exp_jobs[e] {
            if owner[i] == e && seen.insert(i) {
                if from_cache[i] {
                    status.cached += 1;
                } else {
                    status.executed += 1;
                }
            } else {
                status.deduped += 1;
            }
        }
        if !opts.quiet {
            match &status.error {
                None => print!("{stdout_block}"),
                Some(err) => eprintln!("cfir-suite: experiment {} FAILED: {err}", exp.name),
            }
        }
        statuses[e] = Some(status);
    };
    for (e, _) in remaining.iter().enumerate().filter(|(_, &r)| r == 0) {
        finalize(e, &experiments, &outcomes, &mut statuses);
    }

    // Which experiments does each unique job belong to?
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); unique.len()];
    for (e, idxs) in exp_jobs.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for &i in idxs {
            if outcomes[i].is_none() && seen.insert(i) {
                members[i].push(e);
            }
        }
    }

    // Run what's left.
    let to_run: Vec<usize> = (0..unique.len())
        .filter(|&i| outcomes[i].is_none())
        .collect();
    let specs: Vec<JobSpec> = to_run.iter().map(|&i| unique[i].clone()).collect();
    let pool_opts = PoolOptions {
        jobs: opts.jobs,
        retries: opts.retries,
        timeout: opts.timeout,
    };
    let mut job_wall: Vec<Duration> = vec![Duration::ZERO; unique.len()];
    let pool_stats = pool::execute(specs, &pool_opts, |k, outcome, wall| {
        let i = to_run[k];
        job_wall[i] = wall;
        match &outcome {
            JobOutcome::Done(result) => {
                report.executed += 1;
                if let Err(e) = cache.put(&unique[i], result) {
                    eprintln!("cfir-suite: cache write failed: {e}");
                }
            }
            JobOutcome::Failed { error, attempts } => {
                report.failed += 1;
                eprintln!(
                    "cfir-suite: job {} FAILED after {attempts} attempt(s): {error}",
                    unique[i].display_name()
                );
            }
            JobOutcome::TimedOut { limit } => {
                report.timed_out += 1;
                eprintln!(
                    "cfir-suite: job {} TIMED OUT (budget {:.0}s)",
                    unique[i].display_name(),
                    limit.as_secs_f64()
                );
            }
        }
        outcomes[i] = Some(outcome);
        for &e in &members[i] {
            remaining[e] -= 1;
            if remaining[e] == 0 {
                finalize(e, &experiments, &outcomes, &mut statuses);
            }
        }
    });

    report.experiments = statuses
        .into_iter()
        .map(|s| s.expect("every experiment finalized"))
        .collect();
    report.wall = t0.elapsed();
    report.peak_workers = pool_stats.peak_workers;
    // Throughput of every point simulated this run, in definition
    // order (cache hits carry no fresh wall clock and are excluded).
    for (i, spec) in unique.iter().enumerate() {
        if from_cache[i] || matches!(spec.workload, crate::job::WorkloadRef::SelfTest { .. }) {
            continue;
        }
        if let Some(JobOutcome::Done(r)) = &outcomes[i] {
            report.perf.push(JobPerf {
                name: r.name.clone(),
                mode: r.mode_label.clone(),
                committed: r.committed,
                wall: job_wall[i],
            });
        }
    }
    report
}

fn finalize_experiment(
    exp: &Experiment,
    idxs: &[usize],
    outcomes: &[Option<JobOutcome>],
    ctx: &AggCtx,
    opts: &SuiteOptions,
) -> (ExperimentStatus, String) {
    // `wall` and the job accounting (`jobs`/`executed`/`cached`/
    // `deduped`) are filled in by the caller, which owns the suite
    // clock and the cache bookkeeping.
    let fail = |error: String| {
        (
            ExperimentStatus {
                name: exp.name,
                error: Some(error),
                artifacts: Vec::new(),
                wall: Duration::ZERO,
                jobs: 0,
                executed: 0,
                cached: 0,
                deduped: 0,
            },
            String::new(),
        )
    };
    let mut results: Vec<&JobResult> = Vec::with_capacity(idxs.len());
    for (&i, spec) in idxs.iter().zip(&exp.jobs) {
        match &outcomes[i] {
            Some(JobOutcome::Done(r)) => results.push(r),
            Some(JobOutcome::Failed { error, .. }) => {
                return fail(format!("job {} failed: {error}", spec.display_name()))
            }
            Some(JobOutcome::TimedOut { limit }) => {
                return fail(format!(
                    "job {} timed out (budget {:.0}s)",
                    spec.display_name(),
                    limit.as_secs_f64()
                ))
            }
            None => unreachable!("finalize called with undecided job"),
        }
    }
    let output = match (exp.aggregate)(ctx, &results) {
        Ok(o) => o,
        Err(e) => return fail(format!("aggregation failed: {e}")),
    };
    let mut stdout_block = output.stdout.clone();
    let mut written = Vec::new();
    for a in &output.artifacts {
        let path = opts.out_dir.join(&a.rel_path);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, &a.contents) {
            return fail(format!("could not write {}: {e}", path.display()));
        }
        use std::fmt::Write as _;
        let _ = writeln!(stdout_block, "[{} written]", path.display());
        written.push(a.rel_path.clone());
    }
    (
        ExperimentStatus {
            name: exp.name,
            error: None,
            artifacts: written,
            wall: Duration::ZERO,
            jobs: 0,
            executed: 0,
            cached: 0,
            deduped: 0,
        },
        stdout_block,
    )
}
