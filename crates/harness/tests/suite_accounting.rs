//! Suite bookkeeping and determinism gates.
//!
//! * The per-experiment accounting must close: every job in an
//!   experiment's definition is attributed to exactly one of
//!   `executed` / `cached` / `deduped`, cross-experiment duplicates
//!   are charged to the experiment that first introduced the point,
//!   and the per-experiment counts sum to the suite totals.
//! * The artifacts must be byte-identical across `--jobs 1`,
//!   `--jobs N` and repeat runs: aggregation reduces results in
//!   job-definition order, so worker count and completion order must
//!   never leak into what lands on disk (this extends the per-job
//!   determinism test in `cfir-harness::job` to the whole suite path,
//!   flat arenas and recycled buffers included).

use cfir_harness::{
    run_suite, Artifact, Experiment, ExperimentOutput, JobSpec, SuiteOptions, WorkloadRef,
};
use cfir_sim::{Mode, RegFileSize, SimConfig};
use cfir_workloads::WorkloadSpec;
use std::path::PathBuf;

fn selftest(sleep_ms: u64) -> JobSpec {
    JobSpec {
        workload: WorkloadRef::SelfTest {
            panic: false,
            sleep_ms,
        },
        cfg: SimConfig::paper_baseline(),
        // Part of the fingerprint: equal budgets = the same point.
        max_insts: sleep_ms,
        sampling: None,
    }
}

fn named(bench: &str, mode: Mode) -> JobSpec {
    JobSpec {
        workload: WorkloadRef::Named {
            name: bench.into(),
            spec: WorkloadSpec {
                iters: 1 << 30,
                elems: 256,
                seed: 7,
            },
        },
        cfg: SimConfig::paper_baseline()
            .with_mode(mode)
            .with_regs(RegFileSize::Finite(512)),
        max_insts: 2_000,
        sampling: None,
    }
}

/// An experiment whose artifact is the concatenation of its results'
/// snapshots — any nondeterminism in job results or result routing
/// changes the bytes.
fn snapshot_exp(name: &'static str, jobs: Vec<JobSpec>) -> Experiment {
    Experiment {
        name,
        title: "test",
        jobs,
        aggregate: Box::new(|_, results| {
            let contents = results
                .iter()
                .map(|r| format!("{}/{}\n{}\n", r.name, r.mode_label, r.snapshot))
                .collect::<String>();
            Ok(ExperimentOutput {
                artifacts: vec![Artifact {
                    rel_path: format!("{}.txt", "bundle"),
                    contents,
                }],
                stdout: String::new(),
            })
        }),
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfir-suite-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(tag: &str) -> SuiteOptions {
    SuiteOptions {
        jobs: 1,
        cache_dir: Some(tmp(&format!("cache-{tag}"))),
        out_dir: tmp(&format!("out-{tag}")),
        quiet: true,
        ..SuiteOptions::default()
    }
}

#[test]
fn per_experiment_accounting_closes_under_dedup() {
    // exp a: two distinct points. exp b: one point shared with a (it
    // dedups to a's), one of its own, and that one repeated.
    let experiments = vec![
        Experiment {
            name: "a",
            title: "test",
            jobs: vec![selftest(0), selftest(1)],
            aggregate: Box::new(|_, _| Ok(ExperimentOutput::default())),
        },
        Experiment {
            name: "b",
            title: "test",
            jobs: vec![selftest(1), selftest(2), selftest(2)],
            aggregate: Box::new(|_, _| Ok(ExperimentOutput::default())),
        },
    ];
    let report = run_suite(experiments, &opts("dedup"));
    assert!(report.all_ok());
    assert_eq!((report.total_jobs, report.unique_jobs), (5, 3));
    assert_eq!((report.executed, report.cached), (3, 0));
    let [a, b] = report.experiments.as_slice() else {
        panic!("two experiments");
    };
    assert_eq!((a.jobs, a.executed, a.cached, a.deduped), (2, 2, 0, 0));
    assert_eq!((b.jobs, b.executed, b.cached, b.deduped), (3, 1, 0, 2));
    for e in &report.experiments {
        assert_eq!(e.executed + e.cached + e.deduped, e.jobs, "{}", e.name);
    }
    // Ownership makes the per-experiment counts sum to the suite
    // totals instead of double-counting shared points.
    let (ex, ca): (usize, usize) = report
        .experiments
        .iter()
        .fold((0, 0), |(x, c), e| (x + e.executed, c + e.cached));
    assert_eq!((ex, ca), (report.executed, report.cached));
    // SelfTest jobs never enter the throughput listing.
    assert!(report.perf.is_empty());
}

#[test]
fn cached_points_attribute_to_their_owner() {
    let mut o = opts("cached");
    o.resume = true;
    let make = || {
        vec![snapshot_exp(
            "warm",
            vec![named("bzip2", Mode::Scalar), named("bzip2", Mode::Ci)],
        )]
    };
    let first = run_suite(make(), &o);
    assert!(first.all_ok());
    assert_eq!(first.experiments[0].executed, 2);
    assert_eq!(first.perf.len(), 2, "both points carry a wall clock");
    assert!(first.perf.iter().all(|p| p.committed >= 2_000));
    let second = run_suite(make(), &o);
    assert!(second.all_ok());
    let e = &second.experiments[0];
    assert_eq!((e.jobs, e.executed, e.cached, e.deduped), (2, 0, 2, 0));
    assert!(
        second.perf.is_empty(),
        "cache hits have no fresh wall clock"
    );
}

#[test]
fn artifacts_are_byte_identical_across_worker_counts_and_reruns() {
    let make = || {
        vec![snapshot_exp(
            "det",
            vec![
                named("bzip2", Mode::Scalar),
                named("bzip2", Mode::Ci),
                named("gcc", Mode::Ci),
                named("mcf", Mode::Vect),
            ],
        )]
    };
    let mut bundles = Vec::new();
    for (tag, jobs) in [("j1", 1), ("j4", 4), ("j4-rerun", 4)] {
        let mut o = opts(&format!("det-{tag}"));
        o.jobs = jobs;
        let report = run_suite(make(), &o);
        assert!(report.all_ok(), "{tag}");
        let bytes = std::fs::read(o.out_dir.join("bundle.txt")).expect("artifact written");
        assert!(!bytes.is_empty(), "{tag}");
        bundles.push((tag, bytes));
    }
    for (tag, bytes) in &bundles[1..] {
        assert_eq!(
            bytes, &bundles[0].1,
            "{tag}: artifact bytes diverge from the --jobs 1 run"
        );
    }
}
