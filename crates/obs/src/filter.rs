//! The `CFIR_TRACE` filter — parsed **once** at startup.
//!
//! Two syntaxes are accepted:
//!
//! * **Legacy** (kept for compatibility with the original ad-hoc
//!   tracing): `PC[,CYCLE_LO[,CYCLE_HI]]` — three bare integers, e.g.
//!   `CFIR_TRACE=10,0,3000`.
//! * **Keyed**: space-separated `key=value` pairs, any subset of
//!   - `pc=N` — only events for this program counter (decimal or `0x` hex)
//!   - `cycle=LO..HI` — only events in this half-open cycle range
//!   - `sub=a+b+c` — only these subsystems (`vec`, `commit`, `exec`, …)
//!   - `sink=text` | `sink=jsonl:PATH` | `sink=chrome:PATH` — output format
//!   - `cap=N` — ring-buffer capacity for buffered sinks
//!
//!   e.g. `CFIR_TRACE='sub=vec+flush cycle=0..50000 sink=chrome:trace.json'`.
//!
//! `CFIR_TRACE=1` (or any empty/boolean-ish value) traces everything
//! to the text sink.

use crate::event::Subsystem;

/// Where trace output goes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SinkSpec {
    /// Human-readable lines on stderr.
    #[default]
    Text,
    /// One JSON object per line, appended to a file.
    Jsonl(String),
    /// Chrome `trace_event` JSON (open in Perfetto / chrome://tracing).
    Chrome(String),
}

/// Parsed trace filter. Matching is a couple of integer compares — no
/// allocation, no environment access.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFilter {
    /// Only this PC (None = all PCs).
    pub pc: Option<u64>,
    /// Cycle range `[lo, hi)`.
    pub cycle_lo: u64,
    /// End of the cycle range (exclusive).
    pub cycle_hi: u64,
    /// Bitmask of enabled subsystems ([`Subsystem::bit`]).
    pub subs: u16,
    /// Output sink.
    pub sink: SinkSpec,
    /// Ring-buffer capacity for buffered sinks.
    pub cap: usize,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            pc: None,
            cycle_lo: 0,
            cycle_hi: u64::MAX,
            subs: u16::MAX,
            sink: SinkSpec::Text,
            cap: 1 << 16,
        }
    }
}

/// The keyed-form keys `CFIR_TRACE` understands, quoted in parse
/// errors so a typo tells you what would have worked.
pub const VALID_KEYS: &str = "pc=, cycle=, sub=, sink=, cap=";

/// Suffix `path` with `.<scope>` before its extension
/// (`trace.jsonl` → `trace.<scope>.jsonl`; no extension → appended).
/// Shared by [`TraceFilter::scoped`] and
/// [`crate::PipeviewSpec::scoped`] so every per-job artifact scopes the
/// same way.
pub fn scope_path(path: &str, scope: &str) -> String {
    match path.rsplit_once('.') {
        // Only treat the final dot as an extension separator if it is
        // inside the file name, not a parent directory.
        Some((stem, ext)) if !ext.contains('/') => format!("{stem}.{scope}.{ext}"),
        _ => format!("{path}.{scope}"),
    }
}

fn parse_int(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl TraceFilter {
    /// Match-everything filter (used by `CFIR_DEBUG=1`).
    pub fn all() -> Self {
        Self::default()
    }

    /// Parse a `CFIR_TRACE` value. Returns `Err` with a description on
    /// malformed input so startup can fail loudly instead of silently
    /// tracing nothing.
    pub fn parse(spec: &str) -> Result<TraceFilter, String> {
        let spec = spec.trim();
        let mut f = TraceFilter::default();
        if spec.is_empty() || spec == "1" || spec.eq_ignore_ascii_case("true") {
            return Ok(f);
        }

        // Legacy form: bare integers `PC[,LO[,HI]]`.
        if !spec.contains('=') {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() > 3 {
                return Err(format!(
                    "legacy CFIR_TRACE takes at most PC,LO,HI: `{spec}`"
                ));
            }
            f.pc = Some(
                parse_int(parts[0])
                    .ok_or_else(|| format!("bad PC `{}` in CFIR_TRACE", parts[0]))?,
            );
            if let Some(lo) = parts.get(1) {
                f.cycle_lo =
                    parse_int(lo).ok_or_else(|| format!("bad cycle lo `{lo}` in CFIR_TRACE"))?;
            }
            if let Some(hi) = parts.get(2) {
                f.cycle_hi =
                    parse_int(hi).ok_or_else(|| format!("bad cycle hi `{hi}` in CFIR_TRACE"))?;
            }
            return Ok(f);
        }

        // Keyed form.
        for tok in spec.split_whitespace() {
            let (key, val) = tok.split_once('=').ok_or_else(|| {
                format!("expected key=value, got `{tok}` in CFIR_TRACE (valid keys: {VALID_KEYS})")
            })?;
            match key {
                "pc" => {
                    f.pc = Some(
                        parse_int(val).ok_or_else(|| format!("bad pc `{val}` in CFIR_TRACE"))?,
                    )
                }
                "cycle" => {
                    let (lo, hi) = val
                        .split_once("..")
                        .ok_or_else(|| format!("cycle wants LO..HI, got `{val}`"))?;
                    f.cycle_lo = if lo.is_empty() {
                        0
                    } else {
                        parse_int(lo).ok_or_else(|| format!("bad cycle lo `{lo}`"))?
                    };
                    f.cycle_hi = if hi.is_empty() {
                        u64::MAX
                    } else {
                        parse_int(hi).ok_or_else(|| format!("bad cycle hi `{hi}`"))?
                    };
                }
                "sub" => {
                    let mut mask = 0u16;
                    for name in val.split(['+', ',']) {
                        let sub = Subsystem::parse(name)
                            .ok_or_else(|| format!("unknown subsystem `{name}` in CFIR_TRACE"))?;
                        mask |= sub.bit();
                    }
                    f.subs = mask;
                }
                "sink" => {
                    f.sink = match val.split_once(':') {
                        None if val == "text" => SinkSpec::Text,
                        Some(("jsonl", path)) => SinkSpec::Jsonl(path.to_string()),
                        Some(("chrome", path)) => SinkSpec::Chrome(path.to_string()),
                        _ => {
                            return Err(format!(
                                "sink wants text | jsonl:PATH | chrome:PATH, got `{val}`"
                            ))
                        }
                    };
                }
                "cap" => {
                    f.cap = parse_int(val).ok_or_else(|| format!("bad cap `{val}`"))? as usize;
                }
                _ => {
                    return Err(format!(
                        "unknown CFIR_TRACE key `{key}` in `{tok}` (valid keys: {VALID_KEYS})"
                    ))
                }
            }
        }
        Ok(f)
    }

    /// A copy of this filter whose file sinks are suffixed with
    /// `.<scope>` before the extension (`trace.jsonl` →
    /// `trace.<scope>.jsonl`). Used by the suite harness so parallel
    /// jobs sharing one `CFIR_TRACE` value write distinct files
    /// instead of interleaving into one.
    pub fn scoped(&self, scope: &str) -> TraceFilter {
        let mut f = self.clone();
        f.sink = match &self.sink {
            SinkSpec::Text => SinkSpec::Text,
            SinkSpec::Jsonl(p) => SinkSpec::Jsonl(scope_path(p, scope)),
            SinkSpec::Chrome(p) => SinkSpec::Chrome(scope_path(p, scope)),
        };
        f
    }

    /// Does an event at (`sub`, `pc`, `cycle`) pass the filter?
    #[inline]
    pub fn matches(&self, sub: Subsystem, pc: u64, cycle: u64) -> bool {
        (self.subs & sub.bit()) != 0
            && cycle >= self.cycle_lo
            && cycle < self.cycle_hi
            && self.pc.is_none_or(|want| want == pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_values_match_everything() {
        for spec in ["1", "true", "", "  "] {
            let f = TraceFilter::parse(spec).unwrap();
            assert!(f.matches(Subsystem::Vec, 0, 0));
            assert!(f.matches(Subsystem::Commit, 999, u64::MAX - 1));
        }
    }

    #[test]
    fn legacy_triple() {
        let f = TraceFilter::parse("10,0,3000").unwrap();
        assert_eq!(f.pc, Some(10));
        assert_eq!((f.cycle_lo, f.cycle_hi), (0, 3000));
        assert!(f.matches(Subsystem::Vec, 10, 2999));
        assert!(!f.matches(Subsystem::Vec, 10, 3000));
        assert!(!f.matches(Subsystem::Vec, 11, 100));

        let f = TraceFilter::parse("0x20").unwrap();
        assert_eq!(f.pc, Some(0x20));
        assert_eq!(f.cycle_hi, u64::MAX);

        assert!(TraceFilter::parse("10,20,30,40").is_err());
        assert!(TraceFilter::parse("ten").is_err());
    }

    #[test]
    fn keyed_form() {
        let f = TraceFilter::parse("pc=0x10 cycle=100..200 sub=vec+flush").unwrap();
        assert_eq!(f.pc, Some(0x10));
        assert_eq!((f.cycle_lo, f.cycle_hi), (100, 200));
        assert!(f.matches(Subsystem::Vec, 0x10, 150));
        assert!(f.matches(Subsystem::Flush, 0x10, 150));
        assert!(!f.matches(Subsystem::Commit, 0x10, 150));
        assert!(!f.matches(Subsystem::Vec, 0x10, 99));
        assert!(!f.matches(Subsystem::Vec, 0x11, 150));
    }

    #[test]
    fn open_ended_cycle_ranges() {
        let f = TraceFilter::parse("cycle=500..").unwrap();
        assert_eq!((f.cycle_lo, f.cycle_hi), (500, u64::MAX));
        let f = TraceFilter::parse("cycle=..500").unwrap();
        assert_eq!((f.cycle_lo, f.cycle_hi), (0, 500));
    }

    #[test]
    fn sinks_and_cap() {
        assert_eq!(
            TraceFilter::parse("sink=text").unwrap().sink,
            SinkSpec::Text
        );
        assert_eq!(
            TraceFilter::parse("sink=jsonl:/tmp/t.jsonl").unwrap().sink,
            SinkSpec::Jsonl("/tmp/t.jsonl".into())
        );
        assert_eq!(
            TraceFilter::parse("sink=chrome:trace.json sub=vec")
                .unwrap()
                .sink,
            SinkSpec::Chrome("trace.json".into())
        );
        assert_eq!(TraceFilter::parse("cap=128").unwrap().cap, 128);
        assert!(TraceFilter::parse("sink=xml:out").is_err());
    }

    #[test]
    fn scoped_suffixes_file_sinks_only() {
        let f = TraceFilter::parse("sink=jsonl:/tmp/a.b/trace.jsonl").unwrap();
        assert_eq!(
            f.scoped("0042").sink,
            SinkSpec::Jsonl("/tmp/a.b/trace.0042.jsonl".into())
        );
        let f = TraceFilter::parse("sink=chrome:trace.json").unwrap();
        assert_eq!(f.scoped("x").sink, SinkSpec::Chrome("trace.x.json".into()));
        // No extension: append the scope.
        let f = TraceFilter::parse("sink=jsonl:/tmp/dir.d/trace").unwrap();
        assert_eq!(
            f.scoped("y").sink,
            SinkSpec::Jsonl("/tmp/dir.d/trace.y".into())
        );
        // Text sink is untouched.
        let f = TraceFilter::parse("sink=text pc=7").unwrap();
        let g = f.scoped("z");
        assert_eq!(g.sink, SinkSpec::Text);
        assert_eq!(g.pc, Some(7));
    }

    #[test]
    fn errors_are_loud() {
        assert!(TraceFilter::parse("sub=bogus").is_err());
        assert!(TraceFilter::parse("cycle=10").is_err());
        assert!(TraceFilter::parse("frequency=11").is_err());
        assert!(TraceFilter::parse("pc=zebra").is_err());
    }

    #[test]
    fn errors_name_the_token_and_list_valid_keys() {
        // Unknown key: names both the key and the full token, and
        // lists what would have worked.
        let err = TraceFilter::parse("frequency=11").unwrap_err();
        assert!(err.contains("`frequency`"), "{err}");
        assert!(err.contains("`frequency=11`"), "{err}");
        for key in ["pc=", "cycle=", "sub=", "sink=", "cap="] {
            assert!(err.contains(key), "missing {key} in: {err}");
        }
        // A bare word in keyed position names the offending token too.
        let err = TraceFilter::parse("pc=7 loud").unwrap_err();
        assert!(err.contains("`loud`"), "{err}");
        assert!(err.contains("pc=") && err.contains("cap="), "{err}");
    }
}
