//! Per-instruction pipeline lifecycle records (`cfir-viz`).
//!
//! The aggregate telemetry (stall breakdown, histograms, scorecards)
//! answers *how much*; this module answers *what happened to this
//! instruction*. The simulator threads a [`LifecycleLog`] through every
//! pipeline stage: each dynamic instruction — including wrong-path
//! instructions that will be squashed and the replica engine's
//! speculative pre-executions — gets one [`InstRecord`] with its
//! stage-entry cycles and a set of **causal wait-edges** saying what it
//! waited on (a producer, a cache-miss level, a port, an older store's
//! unknown address, a replica value).
//!
//! ## Reconciliation with the stall attribution
//!
//! The per-slot stall attribution charges every commit slot of every
//! cycle to exactly one [`StallCause`]. The lifecycle view receives the
//! *same* charges, routed to the instruction at the head of the window
//! (or to the synthetic front-end bucket when the window is empty), so
//! the per-instruction wait-cycle sums reconcile **exactly** with the
//! aggregate CPI stack: for every cause,
//! `sum(record.waits[cause]) + frontend[cause] == stall.get(cause)`.
//! [`LifecycleLog::reconcile`] checks this; the pipeline asserts it at
//! the end of every lifecycle-enabled run.
//!
//! ## Sinks
//!
//! * [`LifecycleLog::render_konata`] — the Konata / gem5-O3 "pipeview"
//!   text format (`Kanata 0004`), loadable in the Konata viewer, with
//!   replicas on their own lane, squashed instructions retired as
//!   flushes, and reused instructions in a dedicated `Ru` stage.
//! * [`render_timeline`] over [`parse_konata`] — an in-terminal ASCII
//!   timeline (`cfir-report timeline`), windowed by PC, cycle range, or
//!   the N-th misprediction squash cluster.
//!
//! Records are held in a bounded ring (`cap` retired records, oldest
//! dropped first) so a 1M-instruction window stays usable; the
//! reconciliation totals are accumulated at charge time and therefore
//! stay exact even when old records are dropped.

use crate::stall::{StallBreakdown, StallCause, ALL_CAUSES, NUM_CAUSES};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Which Konata lane (thread id) a record renders on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstLane {
    /// A fetched instruction (right or wrong path).
    Normal = 0,
    /// A replica pre-executed by the CI engine.
    Replica = 1,
}

/// How a record's life ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Still in flight when the log was rendered.
    InFlight,
    /// Architecturally retired (replicas: value delivered).
    Committed,
    /// Squashed by a flush (replicas: died undelivered).
    Squashed,
}

impl Fate {
    /// Stable key used in the trace metadata.
    pub fn key(self) -> &'static str {
        match self {
            Fate::InFlight => "inflight",
            Fate::Committed => "commit",
            Fate::Squashed => "squash",
        }
    }

    /// Inverse of [`Fate::key`].
    pub fn parse(s: &str) -> Option<Fate> {
        match s {
            "inflight" => Some(Fate::InFlight),
            "commit" => Some(Fate::Committed),
            "squash" => Some(Fate::Squashed),
            _ => None,
        }
    }
}

/// What an instruction waited on (the causal side of a stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitEdgeKind {
    /// An older in-flight producer of a source operand (`target` is the
    /// producer's lifecycle id).
    Producer,
    /// A data-cache miss; `detail` names the level that served it
    /// (`l2` / `l3` / `mem`).
    CacheMiss,
    /// Port/bank contention; `detail` names the resource (`dports`).
    Port,
    /// An older store whose address (or data) is not known yet
    /// (`target` is the store's lifecycle id when identifiable).
    StoreDisambiguation,
    /// A validated reuse waiting for its replica to finish executing.
    ReplicaValue,
}

impl WaitEdgeKind {
    /// Stable key used in the trace metadata.
    pub fn key(self) -> &'static str {
        match self {
            WaitEdgeKind::Producer => "producer",
            WaitEdgeKind::CacheMiss => "cache_miss",
            WaitEdgeKind::Port => "port",
            WaitEdgeKind::StoreDisambiguation => "store_disamb",
            WaitEdgeKind::ReplicaValue => "replica_value",
        }
    }

    /// Inverse of [`WaitEdgeKind::key`].
    pub fn parse(s: &str) -> Option<WaitEdgeKind> {
        match s {
            "producer" => Some(WaitEdgeKind::Producer),
            "cache_miss" => Some(WaitEdgeKind::CacheMiss),
            "port" => Some(WaitEdgeKind::Port),
            "store_disamb" => Some(WaitEdgeKind::StoreDisambiguation),
            "replica_value" => Some(WaitEdgeKind::ReplicaValue),
            _ => None,
        }
    }
}

/// One coalesced wait-edge: `cycles` observations of the same condition
/// starting at `first_cycle`.
#[derive(Debug, Clone)]
pub struct WaitEdge {
    /// What was waited on.
    pub kind: WaitEdgeKind,
    /// Lifecycle id of the thing waited on, when identifiable.
    pub target: Option<u64>,
    /// Kind-specific detail (cache level, port name); empty when none.
    pub detail: &'static str,
    /// Cycles this condition was observed (consecutive or not).
    pub cycles: u64,
    /// First cycle it was observed.
    pub first_cycle: u64,
}

/// Sentinel for an absent stage timestamp / edge cycle. Record
/// timestamps are stored as `u32` to halve the record footprint (the
/// retired ring is the recorder's memory hot spot); a lifecycle-enabled
/// run is therefore bounded at `u32::MAX - 1` cycles, asserted at
/// record time. A run long enough to hit the bound would need terabytes
/// of record storage first.
const NO_CYCLE: u32 = u32::MAX;
/// Sentinel for "not dispatched" in [`InstRecord`]'s packed `seq`.
const NO_SEQ: u64 = u64::MAX;

/// Stage indices into [`InstRecord`]'s packed timestamp table.
const ST_FETCH: usize = 0;
const ST_DECODE: usize = 1;
const ST_DISPATCH: usize = 2;
const ST_ISSUE: usize = 3;
const ST_COMPLETE: usize = 4;
const ST_RETIRE: usize = 5;
const NUM_STAGES: usize = 6;

#[inline]
fn pack_cycle(cycle: u64) -> u32 {
    assert!(
        cycle < u64::from(NO_CYCLE),
        "lifecycle recording is bounded at u32::MAX - 1 cycles"
    );
    cycle as u32
}

/// One dynamic instruction's lifecycle.
///
/// The record is deliberately packed — stage timestamps, wait charges
/// and the sequence number are stored in compact sentinel-coded form
/// behind accessors — because every fetched instruction (wrong path
/// included) produces one and the retired ring holds them for the
/// whole run: record size is directly the recorder's memory-bandwidth
/// and page-fault bill.
#[derive(Debug, Clone)]
pub struct InstRecord {
    /// Lifecycle id: dense, assigned at fetch/creation, unique across
    /// the run (wrong-path instructions included — unlike `seq`, which
    /// only exists once dispatched).
    pub lid: u64,
    /// Dynamic sequence number ([`NO_SEQ`] until dispatched).
    seq: u64,
    /// Interned disassembly id (see [`LifecycleLog::disasm`]) —
    /// thousands of dynamic records share one string per static
    /// instruction.
    disasm: u32,
    /// Causal wait-edges, coalesced.
    pub edges: Vec<WaitEdge>,
    /// Static word PC.
    pc: u32,
    /// Stage-entry cycles, [`NO_CYCLE`]-coded, indexed by `ST_*`.
    stages: [u32; NUM_STAGES],
    /// Commit-slot charges routed to this instruction, by cause.
    /// Boxed and lazily allocated: only window-head instructions ever
    /// absorb charges, so the (majority) wrong-path records carry a
    /// null pointer instead of a 48-byte table. `u32` per record (a
    /// single record cannot absorb more charges than the run has
    /// commit slots, and cycles are bounded by [`NO_CYCLE`]); the
    /// log-level totals stay `u64`.
    waits: Option<Box<[u32; NUM_CAUSES]>>,
    /// Normal instruction or replica.
    pub lane: InstLane,
    /// How it ended.
    pub fate: Fate,
    /// Whether it reused a precomputed replica value.
    pub reused: bool,
}

impl InstRecord {
    fn new(lid: u64, pc: u64, disasm: u32, lane: InstLane) -> Self {
        InstRecord {
            lid,
            seq: NO_SEQ,
            pc: pc as u32,
            disasm,
            lane,
            stages: [NO_CYCLE; NUM_STAGES],
            fate: Fate::InFlight,
            reused: false,
            waits: None,
            edges: Vec::new(),
        }
    }

    fn bump_wait(&mut self, cause: StallCause, slots: u32) {
        let w = self.waits.get_or_insert_with(|| Box::new([0; NUM_CAUSES]));
        w[cause as usize] += slots;
    }

    fn stage(&self, idx: usize) -> Option<u64> {
        match self.stages[idx] {
            NO_CYCLE => None,
            c => Some(u64::from(c)),
        }
    }

    /// Static word PC.
    pub fn pc(&self) -> u64 {
        u64::from(self.pc)
    }

    /// Dynamic sequence number, once dispatched into the window.
    pub fn seq(&self) -> Option<u64> {
        (self.seq != NO_SEQ).then_some(self.seq)
    }

    /// Cycle fetched (replicas: none).
    pub fn fetch(&self) -> Option<u64> {
        self.stage(ST_FETCH)
    }

    /// Cycle decode finished (reaches rename).
    pub fn decode(&self) -> Option<u64> {
        self.stage(ST_DECODE)
    }

    /// Cycle dispatched into the window (replicas: created).
    pub fn dispatch(&self) -> Option<u64> {
        self.stage(ST_DISPATCH)
    }

    /// Cycle issued to a functional unit / port.
    pub fn issue(&self) -> Option<u64> {
        self.stage(ST_ISSUE)
    }

    /// Cycle the result was produced (writeback).
    pub fn complete(&self) -> Option<u64> {
        self.stage(ST_COMPLETE)
    }

    /// Cycle committed or squashed.
    pub fn retire(&self) -> Option<u64> {
        self.stage(ST_RETIRE)
    }

    /// Commit-slot charges routed to this instruction for `cause`
    /// (reconciles with the aggregate stall breakdown).
    pub fn wait(&self, cause: StallCause) -> u64 {
        self.waits
            .as_ref()
            .map_or(0, |w| u64::from(w[cause as usize]))
    }

    /// Sum of all wait-slot charges (including `useful`).
    pub fn wait_total(&self) -> u64 {
        self.waits
            .as_ref()
            .map_or(0, |w| w.iter().map(|&n| u64::from(n)).sum())
    }

    /// Stage timestamps in pipeline order, present ones only.
    pub fn stage_cycles(&self) -> Vec<(&'static str, u64)> {
        [
            ("fetch", self.fetch()),
            ("decode", self.decode()),
            ("dispatch", self.dispatch()),
            ("issue", self.issue()),
            ("complete", self.complete()),
            ("retire", self.retire()),
        ]
        .into_iter()
        .filter_map(|(n, c)| c.map(|c| (n, c)))
        .collect()
    }
}

/// Recycled backing buffers of a finished recorder. Lifecycle-enabled
/// runs append hundreds of megabytes of records; in a harness process
/// running many jobs back-to-back, re-growing those buffers from
/// nothing every job re-pays the whole page-fault bill. Finished
/// recorders park their (cleared, capacity-preserving) buffers here so
/// the next recorder starts on memory that is already mapped and warm.
#[derive(Default)]
struct RecycledBufs {
    retired: VecDeque<InstRecord>,
    active: VecDeque<Option<InstRecord>>,
    active_edge: VecDeque<(u32, u32)>,
}

/// Process-wide pool of [`RecycledBufs`], bounded so a wide parallel
/// harness cannot hoard unbounded memory (excess buffers are simply
/// dropped).
static BUF_POOL: Mutex<Vec<RecycledBufs>> = Mutex::new(Vec::new());
const BUF_POOL_MAX: usize = 8;

/// The per-instruction lifecycle recorder.
#[derive(Debug)]
pub struct LifecycleLog {
    cap: usize,
    next_lid: u64,
    start_cycle: u64,
    started: bool,
    /// In-flight records in a lid-indexed sliding window: slot `i`
    /// holds lid `active_base + i`. Lids are dense and handed out in
    /// order, so every insertion lands at the back and the live span is
    /// bounded by the machine's in-flight population (window entries
    /// plus replicas) — a hot-path lookup is one subtraction and an
    /// index instead of a hash.
    active: VecDeque<Option<InstRecord>>,
    /// Per-slot edge-coalescing memory for `active`: `(edge index,
    /// cycle)` of the most recent [`LifecycleLog::edge`] observation
    /// ([`NO_CYCLE`] index = none), so consecutive observations of the
    /// same condition extend one edge without a side-table lookup.
    /// Kept out of [`InstRecord`] because it is dead weight once the
    /// record retires into the ring.
    active_edge: VecDeque<(u32, u32)>,
    /// Lid of the front `active` slot.
    active_base: u64,
    /// Number of `Some` slots in `active`.
    active_len: usize,
    retired: VecDeque<InstRecord>,
    dropped: u64,
    /// All slot charges ever made, by cause (survives record drops).
    totals: [u64; NUM_CAUSES],
    /// Charges made while no instruction was in the window.
    frontend: [u64; NUM_CAUSES],
    /// Disassembly ids interned per `(word pc, lane)`: the text is a
    /// pure function of the static instruction, so it is formatted
    /// once, stored in `strings`, and every dynamic record carries a
    /// 4-byte id.
    interned: HashMap<(u32, u8), u32>,
    /// Interned disassembly texts, indexed by the records' ids.
    strings: Vec<Box<str>>,
}

impl LifecycleLog {
    /// Recorder retaining up to `cap` retired records (0 = unbounded).
    pub fn new(cap: usize) -> Self {
        let bufs = BUF_POOL
            .lock()
            .ok()
            .and_then(|mut p| p.pop())
            .unwrap_or_default();
        LifecycleLog {
            cap,
            next_lid: 1,
            start_cycle: 0,
            started: false,
            active: bufs.active,
            active_edge: bufs.active_edge,
            active_base: 0,
            active_len: 0,
            retired: bufs.retired,
            dropped: 0,
            totals: [0; NUM_CAUSES],
            frontend: [0; NUM_CAUSES],
            interned: HashMap::new(),
            strings: Vec::new(),
        }
    }

    /// Records currently retained (retired + in flight).
    pub fn len(&self) -> usize {
        self.retired.len() + self.active_len
    }

    /// Slot index of `lid` in `active`, when the record is in flight.
    fn active_idx(&self, lid: u64) -> Option<usize> {
        let idx = lid.checked_sub(self.active_base)? as usize;
        self.active.get(idx)?.as_ref()?;
        Some(idx)
    }

    fn active_get_mut(&mut self, lid: u64) -> Option<&mut InstRecord> {
        let idx = self.active_idx(lid)?;
        self.active[idx].as_mut()
    }

    fn active_push(&mut self, r: InstRecord) {
        if self.active.is_empty() {
            self.active_base = r.lid;
        }
        debug_assert_eq!(r.lid, self.active_base + self.active.len() as u64);
        self.active.push_back(Some(r));
        self.active_edge.push_back((NO_CYCLE, 0));
        self.active_len += 1;
    }

    fn active_remove(&mut self, lid: u64) -> Option<InstRecord> {
        let idx = self.active_idx(lid)?;
        let r = self.active[idx].take();
        self.active_len -= 1;
        // Advance the window past retired front slots so the span
        // tracks the in-flight population.
        while matches!(self.active.front(), Some(None)) {
            self.active.pop_front();
            self.active_edge.pop_front();
            self.active_base += 1;
        }
        r
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.dropped == 0
    }

    /// Retired records dropped by the ring cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cycle of the first recorded event (reconciliation is exact only
    /// when recording started at cycle 0).
    pub fn start_cycle(&self) -> u64 {
        self.start_cycle
    }

    /// Slot charges made while the window was empty, by cause.
    pub fn frontend_waits(&self) -> &[u64; NUM_CAUSES] {
        &self.frontend
    }

    /// All slot charges ever made, by cause (drop-proof).
    pub fn totals(&self) -> &[u64; NUM_CAUSES] {
        &self.totals
    }

    /// Every retained record, oldest first (retired, then in-flight).
    pub fn records(&self) -> impl Iterator<Item = &InstRecord> {
        // `active` slots are already in lid order: no sort, no staging
        // allocation.
        self.retired.iter().chain(self.active.iter().flatten())
    }

    fn note_start(&mut self, cycle: u64) {
        if !self.started {
            self.started = true;
            self.start_cycle = cycle;
        }
    }

    /// Interned disassembly id for `(pc, lane)`; `disasm` is only
    /// invoked the first time the static instruction is seen.
    fn intern(&mut self, pc: u64, lane: InstLane, disasm: impl FnOnce() -> String) -> u32 {
        *self
            .interned
            .entry((pc as u32, lane as u8))
            .or_insert_with(|| {
                self.strings.push(disasm().into_boxed_str());
                (self.strings.len() - 1) as u32
            })
    }

    /// The interned disassembly text of one of this log's records.
    pub fn disasm(&self, r: &InstRecord) -> &str {
        &self.strings[r.disasm as usize]
    }

    /// New record for a fetched instruction; `decode_ready` is the
    /// cycle it will reach rename. `disasm` is invoked at most once per
    /// static `(pc, lane)` — the text is interned.
    pub fn begin_fetch(
        &mut self,
        pc: u64,
        disasm: impl FnOnce() -> String,
        cycle: u64,
        decode_ready: u64,
    ) -> u64 {
        self.note_start(cycle);
        let lid = self.next_lid;
        self.next_lid += 1;
        let disasm = self.intern(pc, InstLane::Normal, disasm);
        let mut r = InstRecord::new(lid, pc, disasm, InstLane::Normal);
        r.stages[ST_FETCH] = pack_cycle(cycle);
        r.stages[ST_DECODE] = pack_cycle(decode_ready);
        self.active_push(r);
        lid
    }

    /// New record for a replica created by the CI engine. `disasm` is
    /// invoked at most once per static `(pc, lane)` — the text is
    /// interned.
    pub fn begin_replica(&mut self, pc: u64, disasm: impl FnOnce() -> String, cycle: u64) -> u64 {
        self.note_start(cycle);
        let lid = self.next_lid;
        self.next_lid += 1;
        let disasm = self.intern(pc, InstLane::Replica, disasm);
        let mut r = InstRecord::new(lid, pc, disasm, InstLane::Replica);
        r.stages[ST_DISPATCH] = pack_cycle(cycle);
        self.active_push(r);
        lid
    }

    /// The instruction entered the window with sequence number `seq`.
    pub fn note_dispatch(&mut self, lid: u64, seq: u64, cycle: u64) {
        if let Some(r) = self.active_get_mut(lid) {
            r.seq = seq;
            r.stages[ST_DISPATCH] = pack_cycle(cycle);
        }
    }

    /// The instruction issued to a functional unit / port.
    pub fn note_issue(&mut self, lid: u64, cycle: u64) {
        if let Some(r) = self.active_get_mut(lid) {
            r.stages[ST_ISSUE] = pack_cycle(cycle);
        }
    }

    /// The result is available (writeback / reuse delivery).
    pub fn note_complete(&mut self, lid: u64, cycle: u64) {
        if let Some(r) = self.active_get_mut(lid) {
            r.stages[ST_COMPLETE] = pack_cycle(cycle);
        }
    }

    /// Mark (or clear, when a pending reuse falls back to normal
    /// execution) the reused flag.
    pub fn set_reused(&mut self, lid: u64, reused: bool) {
        if let Some(r) = self.active_get_mut(lid) {
            r.reused = reused;
        }
    }

    fn retire_record(&mut self, lid: u64, cycle: u64, fate: Fate) {
        let Some(mut r) = self.active_remove(lid) else {
            return;
        };
        let cycle = pack_cycle(cycle);
        r.stages[ST_RETIRE] = cycle;
        r.fate = fate;
        if fate == Fate::Squashed {
            // `decode` is a predicted timestamp (fetch + decode delay);
            // a squash can land before it. Drop stage times the
            // instruction never reached so records stay monotonic.
            for idx in [ST_DECODE, ST_DISPATCH, ST_ISSUE, ST_COMPLETE] {
                if r.stages[idx] != NO_CYCLE && r.stages[idx] > cycle {
                    r.stages[idx] = NO_CYCLE;
                }
            }
        }
        if self.cap > 0 && self.retired.len() == self.cap {
            self.retired.pop_front();
            self.dropped += 1;
        }
        self.retired.push_back(r);
    }

    /// The instruction committed. Charges one `useful` commit slot to
    /// the record so the per-instruction view reconciles with the
    /// aggregate stall attribution.
    pub fn note_commit(&mut self, lid: u64, cycle: u64) {
        self.totals[StallCause::Useful as usize] += 1;
        match self.active_idx(lid) {
            Some(i) => {
                self.active[i]
                    .as_mut()
                    .unwrap()
                    .bump_wait(StallCause::Useful, 1);
            }
            None => self.frontend[StallCause::Useful as usize] += 1,
        }
        self.retire_record(lid, cycle, Fate::Committed);
    }

    /// The instruction was squashed by a flush.
    pub fn note_squash(&mut self, lid: u64, cycle: u64) {
        self.retire_record(lid, cycle, Fate::Squashed);
    }

    /// A replica finished: `delivered` when its value landed in the
    /// entry (eligible for reuse), false when it died.
    pub fn finish_replica(&mut self, lid: u64, cycle: u64, delivered: bool) {
        if delivered {
            self.note_complete(lid, cycle);
        }
        let fate = if delivered {
            Fate::Committed
        } else {
            Fate::Squashed
        };
        self.retire_record(lid, cycle, fate);
    }

    /// Route `slots` commit-slot charges for `cause` to the record
    /// `lid` (the window head), or to the front-end bucket when the
    /// window is empty. Mirrors `StallBreakdown::charge` exactly.
    pub fn charge(&mut self, lid: Option<u64>, cause: StallCause, slots: u64) {
        self.totals[cause as usize] += slots;
        match lid.and_then(|l| self.active_idx(l)) {
            Some(i) => self.active[i]
                .as_mut()
                .unwrap()
                .bump_wait(cause, slots as u32),
            None => self.frontend[cause as usize] += slots,
        }
    }

    /// Record (or extend) a wait-edge on `lid`. Consecutive
    /// observations of the same `(kind, target)` coalesce into one edge
    /// with a cycle count.
    pub fn edge(
        &mut self,
        lid: u64,
        kind: WaitEdgeKind,
        target: Option<u64>,
        detail: &'static str,
        cycle: u64,
    ) {
        let Some(slot) = self.active_idx(lid) else {
            return;
        };
        let r = self.active[slot].as_mut().unwrap();
        let cycle32 = pack_cycle(cycle);
        let (last_idx, last) = self.active_edge[slot];
        if last_idx != NO_CYCLE {
            if let Some(e) = r.edges.get_mut(last_idx as usize) {
                if e.kind == kind && e.target == target && u64::from(last) < cycle {
                    e.cycles += 1;
                    self.active_edge[slot] = (last_idx, cycle32);
                    return;
                }
            }
        }
        // A different condition (or a re-observation of an old one):
        // extend an existing edge of the same identity, else start one.
        if let Some((idx, e)) = r
            .edges
            .iter_mut()
            .enumerate()
            .find(|(_, e)| e.kind == kind && e.target == target)
        {
            e.cycles += 1;
            self.active_edge[slot] = (idx as u32, cycle32);
            return;
        }
        r.edges.push(WaitEdge {
            kind,
            target,
            detail,
            cycles: 1,
            first_cycle: cycle,
        });
        self.active_edge[slot] = ((r.edges.len() - 1) as u32, cycle32);
    }

    /// Check that the per-instruction wait-cycle sums reconcile exactly
    /// with the aggregate stall breakdown (valid when recording started
    /// at cycle 0).
    pub fn reconcile(&self, stall: &StallBreakdown) -> Result<(), String> {
        for cause in ALL_CAUSES {
            let got = self.totals[cause as usize];
            let want = stall.get(cause);
            if got != want {
                return Err(format!(
                    "lifecycle wait sum for `{}` is {got}, stall attribution says {want}",
                    cause.key()
                ));
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Konata sink
    // ----------------------------------------------------------------

    /// Render every retained record as a Konata (`Kanata 0004`)
    /// pipeview document. Open it in the Konata viewer, or parse it
    /// back with [`parse_konata`].
    pub fn render_konata(&self) -> String {
        // Group commands by cycle; within a cycle order by command
        // class (I/L before S/E before W/R) then insertion.
        let mut by_cycle: BTreeMap<u64, Vec<(u8, String)>> = BTreeMap::new();
        let mut push = |cycle: u64, prio: u8, line: String| {
            by_cycle.entry(cycle).or_default().push((prio, line));
        };
        let last_cycle = self
            .records()
            .flat_map(|r| r.stage_cycles().into_iter().map(|(_, c)| c))
            .max()
            .unwrap_or(0);
        for r in self.records() {
            let stages = stage_segments(r, last_cycle + 1);
            let Some(&(_, start, _)) = stages.first() else {
                continue;
            };
            let sid = r.lid;
            push(start, 0, format!("I\t{sid}\t{sid}\t{}", r.lane as u64));
            push(
                start,
                1,
                format!("L\t{sid}\t0\t{}: {}", r.pc(), self.disasm(r)),
            );
            push(start, 1, format!("L\t{sid}\t1\t{}", metadata_line(r)));
            for &(name, s, e) in &stages {
                push(s, 2, format!("S\t{sid}\t0\t{name}"));
                push(e, 3, format!("E\t{sid}\t0\t{name}"));
            }
            for edge in &r.edges {
                if let (WaitEdgeKind::Producer, Some(t)) = (edge.kind, edge.target) {
                    push(edge.first_cycle, 4, format!("W\t{sid}\t{t}\t0"));
                }
            }
            if let Some(retire) = r.retire() {
                let ty = match r.fate {
                    Fate::Squashed => 1,
                    _ => 0,
                };
                push(retire, 5, format!("R\t{sid}\t{sid}\t{ty}"));
            }
        }
        let mut out = String::from("Kanata\t0004\n");
        let mut cur: Option<u64> = None;
        for (cycle, mut lines) in by_cycle {
            match cur {
                None => {
                    let _ = writeln!(out, "C=\t{cycle}");
                }
                Some(prev) if cycle > prev => {
                    let _ = writeln!(out, "C\t{}", cycle - prev);
                }
                _ => {}
            }
            cur = Some(cycle);
            lines.sort_by_key(|(p, _)| *p);
            for (_, l) in lines {
                out.push_str(&l);
                out.push('\n');
            }
        }
        if cur.is_none() {
            out.push_str("C=\t0\n");
        }
        out
    }
}

impl Drop for LifecycleLog {
    fn drop(&mut self) {
        // Park the big buffers (cleared, capacity kept) for the next
        // recorder in this process; see [`RecycledBufs`].
        let mut bufs = RecycledBufs {
            retired: std::mem::take(&mut self.retired),
            active: std::mem::take(&mut self.active),
            active_edge: std::mem::take(&mut self.active_edge),
        };
        bufs.retired.clear();
        bufs.active.clear();
        bufs.active_edge.clear();
        if let Ok(mut pool) = BUF_POOL.lock() {
            if pool.len() < BUF_POOL_MAX {
                pool.push(bufs);
            }
        }
    }
}

/// The stage segments `[(name, start, end)]` a record renders as.
/// `end_of_trace` bounds records still in flight.
fn stage_segments(r: &InstRecord, end_of_trace: u64) -> Vec<(&'static str, u64, u64)> {
    // Pipeline-order timestamps; each segment runs to the next present
    // timestamp, the last one to retire (or the end of the trace).
    let points: Vec<(&'static str, u64)> = [
        ("F", r.fetch()),
        ("Dc", r.decode()),
        ("Ds", r.dispatch()),
        ("Ex", r.issue()),
        ("Cm", r.complete()),
    ]
    .into_iter()
    .filter_map(|(n, c)| c.map(|c| (n, c)))
    .collect();
    let fin = r.retire().unwrap_or(end_of_trace);
    let mut segs = Vec::with_capacity(points.len());
    for (i, &(name, start)) in points.iter().enumerate() {
        let end = points.get(i + 1).map(|&(_, c)| c).unwrap_or(fin).max(start);
        // Reused instructions skip execution: their window residency
        // renders as the dedicated reuse stage.
        let name = if r.reused && matches!(name, "Ds" | "Ex") {
            "Ru"
        } else {
            name
        };
        if end > start {
            segs.push((name, start, end));
        } else if i + 1 == points.len() && segs.is_empty() {
            // Everything collapsed into one cycle: keep one 1-cycle
            // segment so the record is visible.
            segs.push((name, start, start + 1));
        }
    }
    // Merge adjacent same-name segments (e.g. Ru+Ru from Ds and Ex).
    let mut merged: Vec<(&'static str, u64, u64)> = Vec::with_capacity(segs.len());
    for s in segs {
        match merged.last_mut() {
            Some(last) if last.0 == s.0 && last.2 == s.1 => last.2 = s.2,
            _ => merged.push(s),
        }
    }
    merged
}

/// The machine-parseable metadata carried on label lane 1.
fn metadata_line(r: &InstRecord) -> String {
    let mut s = format!(
        "pc={} seq={} fate={} reused={} lane={}",
        r.pc(),
        r.seq().map(|q| q.to_string()).unwrap_or_else(|| "-".into()),
        r.fate.key(),
        r.reused as u8,
        r.lane as u64,
    );
    let mut waits = String::new();
    for cause in ALL_CAUSES {
        let n = r.wait(cause);
        if n > 0 {
            if !waits.is_empty() {
                waits.push(',');
            }
            let _ = write!(waits, "{}:{}", cause.key(), n);
        }
    }
    if !waits.is_empty() {
        let _ = write!(s, " waits={waits}");
    }
    let mut edges = String::new();
    for e in &r.edges {
        if !edges.is_empty() {
            edges.push(',');
        }
        let _ = write!(edges, "{}", e.kind.key());
        if !e.detail.is_empty() {
            let _ = write!(edges, "[{}]", e.detail);
        }
        if let Some(t) = e.target {
            let _ = write!(edges, ">{t}");
        }
        let _ = write!(edges, ":{}@{}", e.cycles, e.first_cycle);
    }
    if !edges.is_empty() {
        let _ = write!(s, " edges={edges}");
    }
    s
}

// --------------------------------------------------------------------
// Parser (round-trip) + ASCII timeline renderer
// --------------------------------------------------------------------

/// One wait-edge as read back from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEdge {
    /// Edge kind.
    pub kind: WaitEdgeKind,
    /// Detail string (cache level / port name), empty when none.
    pub detail: String,
    /// Target lifecycle id, when present.
    pub target: Option<u64>,
    /// Cycles observed.
    pub cycles: u64,
    /// First cycle observed.
    pub first_cycle: u64,
}

/// One instruction as read back from a Konata trace.
#[derive(Debug, Clone)]
pub struct ParsedInst {
    /// Lifecycle id (Konata sid/iid).
    pub sid: u64,
    /// Lane (0 normal, 1 replica).
    pub tid: u64,
    /// Left-pane label (`pc: disasm`).
    pub label: String,
    /// Static word PC (from the metadata).
    pub pc: Option<u64>,
    /// Dynamic sequence number, when dispatched.
    pub seq: Option<u64>,
    /// Fate (from the metadata).
    pub fate: Fate,
    /// Whether it reused a replica value.
    pub reused: bool,
    /// `(cause_key, slots)` wait charges.
    pub waits: Vec<(String, u64)>,
    /// Causal wait-edges.
    pub edges: Vec<ParsedEdge>,
    /// Stage segments `(name, start, end)`, in order.
    pub stages: Vec<(String, u64, u64)>,
    /// Retire cycle (`R` command).
    pub retire_cycle: Option<u64>,
    /// Whether the `R` command was a flush (squash).
    pub flushed: bool,
    /// Producer sids from `W` commands.
    pub deps: Vec<u64>,
}

impl ParsedInst {
    /// First cycle of any stage.
    pub fn start(&self) -> u64 {
        self.stages.iter().map(|&(_, s, _)| s).min().unwrap_or(0)
    }

    /// Last cycle of any stage / retire.
    pub fn end(&self) -> u64 {
        self.stages
            .iter()
            .map(|&(_, _, e)| e)
            .chain(self.retire_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Sum of all wait charges.
    pub fn wait_total(&self) -> u64 {
        self.waits.iter().map(|(_, n)| n).sum()
    }
}

/// A parsed Konata trace.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// Instructions, ordered by sid.
    pub insts: Vec<ParsedInst>,
}

fn parse_meta(inst: &mut ParsedInst, meta: &str) -> Result<(), String> {
    for tok in meta.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            continue;
        };
        match k {
            "pc" => inst.pc = v.parse().ok(),
            "seq" => inst.seq = v.parse().ok(),
            "fate" => {
                inst.fate =
                    Fate::parse(v).ok_or_else(|| format!("bad fate `{v}` for sid {}", inst.sid))?
            }
            "reused" => inst.reused = v == "1",
            "lane" => {}
            "waits" => {
                for w in v.split(',') {
                    let (c, n) = w
                        .split_once(':')
                        .ok_or_else(|| format!("bad wait `{w}` for sid {}", inst.sid))?;
                    let n: u64 = n.parse().map_err(|_| format!("bad wait count `{w}`"))?;
                    inst.waits.push((c.to_string(), n));
                }
            }
            "edges" => {
                for espec in v.split(',') {
                    // kind[detail]>target:cycles@first
                    let (head, tail) = espec
                        .split_once(':')
                        .ok_or_else(|| format!("bad edge `{espec}`"))?;
                    let (cycles, first) = tail
                        .split_once('@')
                        .ok_or_else(|| format!("bad edge `{espec}`"))?;
                    let (head, target) = match head.split_once('>') {
                        Some((h, t)) => (
                            h,
                            Some(
                                t.parse()
                                    .map_err(|_| format!("bad edge target `{espec}`"))?,
                            ),
                        ),
                        None => (head, None),
                    };
                    let (kind_s, detail) = match head.split_once('[') {
                        Some((k, d)) => (k, d.trim_end_matches(']').to_string()),
                        None => (head, String::new()),
                    };
                    let kind = WaitEdgeKind::parse(kind_s)
                        .ok_or_else(|| format!("unknown edge kind `{kind_s}`"))?;
                    inst.edges.push(ParsedEdge {
                        kind,
                        detail,
                        target,
                        cycles: cycles.parse().map_err(|_| format!("bad edge `{espec}`"))?,
                        first_cycle: first.parse().map_err(|_| format!("bad edge `{espec}`"))?,
                    });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Parse a Konata (`Kanata 0004`) document produced by
/// [`LifecycleLog::render_konata`] (it also accepts the common subset
/// emitted by gem5's O3 pipeview conversion).
pub fn parse_konata(text: &str) -> Result<ParsedTrace, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.starts_with("Kanata") => {}
        _ => return Err("not a Konata trace: missing `Kanata` header".into()),
    }
    let mut cycle: u64 = 0;
    let mut insts: HashMap<u64, ParsedInst> = HashMap::new();
    // Stages still open per (sid, name).
    let mut open: HashMap<(u64, String), usize> = HashMap::new();
    for (ln, line) in lines {
        let mut f = line.split('\t');
        let cmd = f.next().unwrap_or("");
        let ctx = |what: &str| format!("line {}: {what} in `{line}`", ln + 1);
        let mut num = |what: &str| -> Result<u64, String> {
            f.next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| ctx(what))
        };
        match cmd {
            "" | "#" => {}
            "C=" => cycle = num("bad base cycle")?,
            "C" => cycle += num("bad cycle delta")?,
            "I" => {
                let sid = num("bad sid")?;
                let _iid = num("bad iid")?;
                let tid = num("bad tid")?;
                insts.entry(sid).or_insert(ParsedInst {
                    sid,
                    tid,
                    label: String::new(),
                    pc: None,
                    seq: None,
                    fate: Fate::InFlight,
                    reused: false,
                    waits: Vec::new(),
                    edges: Vec::new(),
                    stages: Vec::new(),
                    retire_cycle: None,
                    flushed: false,
                    deps: Vec::new(),
                });
            }
            "L" => {
                let sid = num("bad sid")?;
                let lane = num("bad label lane")?;
                let text = f.collect::<Vec<_>>().join("\t");
                let inst = insts
                    .get_mut(&sid)
                    .ok_or_else(|| ctx("label for unknown sid"))?;
                if lane == 0 {
                    inst.label = text;
                } else {
                    parse_meta(inst, &text)?;
                }
            }
            "S" => {
                let sid = num("bad sid")?;
                let _lane = num("bad lane")?;
                let name = f.next().ok_or_else(|| ctx("missing stage"))?.to_string();
                let inst = insts
                    .get_mut(&sid)
                    .ok_or_else(|| ctx("stage for unknown sid"))?;
                open.insert((sid, name.clone()), inst.stages.len());
                inst.stages.push((name, cycle, cycle));
            }
            "E" => {
                let sid = num("bad sid")?;
                let _lane = num("bad lane")?;
                let name = f.next().ok_or_else(|| ctx("missing stage"))?.to_string();
                if let Some(idx) = open.remove(&(sid, name)) {
                    if let Some(inst) = insts.get_mut(&sid) {
                        if let Some(seg) = inst.stages.get_mut(idx) {
                            seg.2 = cycle.max(seg.1);
                        }
                    }
                }
            }
            "R" => {
                let sid = num("bad sid")?;
                let _rid = num("bad retire id")?;
                let ty = num("bad retire type")?;
                let inst = insts
                    .get_mut(&sid)
                    .ok_or_else(|| ctx("retire for unknown sid"))?;
                inst.retire_cycle = Some(cycle);
                inst.flushed = ty == 1;
            }
            "W" => {
                let sid = num("bad sid")?;
                let producer = num("bad producer sid")?;
                let _ty = num("bad dep type")?;
                if let Some(inst) = insts.get_mut(&sid) {
                    inst.deps.push(producer);
                }
            }
            _ => return Err(ctx("unknown command")),
        }
    }
    // Close any stage left open at the end of the trace.
    for ((sid, _), idx) in open {
        if let Some(inst) = insts.get_mut(&sid) {
            if let Some(seg) = inst.stages.get_mut(idx) {
                seg.2 = cycle.max(seg.1);
            }
        }
    }
    let mut insts: Vec<ParsedInst> = insts.into_values().collect();
    insts.sort_by_key(|i| i.sid);
    Ok(ParsedTrace { insts })
}

/// Window/row selection for [`render_timeline`].
#[derive(Debug, Clone, Default)]
pub struct TimelineOpts {
    /// Only rows at this static word PC.
    pub pc: Option<u64>,
    /// Explicit cycle window `[lo, hi)`.
    pub cycle_range: Option<(u64, u64)>,
    /// Window around the N-th (1-based) misprediction squash cluster.
    pub around_mispredict: Option<usize>,
    /// Maximum timeline columns (0 = default 96).
    pub max_cols: usize,
}

/// Squash clusters: `(first_squash_cycle, squashed_count)`, grouping
/// flush retires less than 8 cycles apart.
pub fn squash_clusters(trace: &ParsedTrace) -> Vec<(u64, usize)> {
    let mut cycles: Vec<u64> = trace
        .insts
        .iter()
        .filter(|i| i.flushed)
        .filter_map(|i| i.retire_cycle)
        .collect();
    cycles.sort_unstable();
    let mut out: Vec<(u64, usize)> = Vec::new();
    for c in cycles {
        match out.last_mut() {
            Some((start, n)) if c.saturating_sub(*start) < 8 => *n += 1,
            _ => out.push((c, 1)),
        }
    }
    out
}

/// Render an ASCII timeline of the trace. Each row is one instruction;
/// each column one cycle. Squashed wrong-path instructions end in `x`;
/// reused instructions spend their window time in the `R` stage and
/// retire with `C` like any commit.
pub fn render_timeline(trace: &ParsedTrace, opts: &TimelineOpts) -> Result<String, String> {
    if trace.insts.is_empty() {
        return Err("trace contains no instructions".into());
    }
    let max_cols = if opts.max_cols == 0 {
        96
    } else {
        opts.max_cols
    };
    let mut note = String::new();
    let (lo, hi) = if let Some(n) = opts.around_mispredict {
        let clusters = squash_clusters(trace);
        if clusters.is_empty() {
            return Err("trace contains no squashes (no mispredictions recovered)".into());
        }
        let n = n.max(1);
        let &(at, count) = clusters
            .get(n - 1)
            .ok_or_else(|| format!("only {} squash cluster(s) in trace", clusters.len()))?;
        let _ = write!(
            note,
            "mispredict cluster #{n} at cycle {at} ({count} squashed)"
        );
        (at.saturating_sub(12), at + (max_cols as u64 - 12))
    } else if let Some((lo, hi)) = opts.cycle_range {
        (lo, hi)
    } else {
        let lo = trace.insts.iter().map(|i| i.start()).min().unwrap_or(0);
        (lo, lo + max_cols as u64)
    };
    let hi = hi.min(lo + max_cols as u64);
    if hi <= lo {
        return Err(format!("empty cycle window {lo}..{hi}"));
    }
    let cols = (hi - lo) as usize;

    let rows: Vec<&ParsedInst> = trace
        .insts
        .iter()
        .filter(|i| opts.pc.is_none_or(|pc| i.pc == Some(pc)))
        .filter(|i| i.start() < hi && i.end() >= lo)
        .collect();
    if rows.is_empty() {
        return Err(format!("no instructions in cycle window {lo}..{hi}"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: cycles {lo}..{hi}, {} instruction(s){}{}",
        rows.len(),
        if note.is_empty() { "" } else { " — " },
        note
    );
    // Cycle ruler: a `|` every 10 columns, labelled above.
    let gut = 6; // sid gutter
    let mut labels = " ".repeat(gut + 1);
    let mut ruler = " ".repeat(gut + 1);
    for col in 0..cols {
        let c = lo + col as u64;
        if c.is_multiple_of(10) {
            let lab = c.to_string();
            if labels.len() <= gut + col {
                labels.push_str(&" ".repeat(gut + 1 + col - labels.len()));
                labels.push_str(&lab);
            }
            ruler.push('|');
        } else {
            ruler.push('.');
        }
    }
    let _ = writeln!(out, "{labels}");
    let _ = writeln!(out, "{ruler}");

    for i in rows {
        let mut grid = vec![' '; cols];
        for (name, s, e) in &i.stages {
            let ch = match name.as_str() {
                "F" => 'F',
                "Dc" => 'd',
                "Ds" => '.',
                "Ex" => 'E',
                "Cm" => 'c',
                "Ru" => 'R',
                _ => '?',
            };
            let s = (*s).max(lo);
            let e = (*e).min(hi);
            for c in s..e {
                grid[(c - lo) as usize] = ch;
            }
        }
        if let Some(rc) = i.retire_cycle {
            if rc >= lo && rc < hi {
                grid[(rc - lo) as usize] = if i.flushed { 'x' } else { 'C' };
            }
        }
        let mut ann = String::new();
        if i.tid == 1 {
            ann.push_str(" [replica]");
        }
        if i.reused {
            ann.push_str(" [reused]");
        }
        if i.flushed {
            ann.push_str(" [squashed]");
        }
        let _ = writeln!(
            out,
            "{:>gut$} {}  {}{}",
            i.sid,
            grid.iter().collect::<String>(),
            i.label,
            ann,
        );
    }
    out.push_str(
        "\nlegend: F fetch  d decode  . window-wait  E execute  c done-wait  R reuse\n\
         \x20       C commit  x squashed\n",
    );
    Ok(out)
}

// --------------------------------------------------------------------
// CFIR_PIPEVIEW
// --------------------------------------------------------------------

/// Parsed `CFIR_PIPEVIEW` value: `PATH[ cap=N]`. The simulator
/// auto-enables lifecycle recording and writes the Konata trace to
/// `path` when the run finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeviewSpec {
    /// Output path for the Konata document.
    pub path: String,
    /// Retired-record ring capacity (0 = unbounded).
    pub cap: usize,
}

/// Default retired-record ring capacity (usable on 1M-instruction
/// windows without unbounded memory).
pub const DEFAULT_PIPEVIEW_CAP: usize = 1 << 20;

impl PipeviewSpec {
    /// Parse `PATH[ cap=N]`.
    pub fn parse(spec: &str) -> Result<PipeviewSpec, String> {
        let mut path = None;
        let mut cap = DEFAULT_PIPEVIEW_CAP;
        for tok in spec.split_whitespace() {
            if let Some(v) = tok.strip_prefix("cap=") {
                cap = v
                    .parse()
                    .map_err(|_| format!("bad cap `{v}` in CFIR_PIPEVIEW"))?;
            } else if path.is_none() {
                path = Some(tok.to_string());
            } else {
                return Err(format!(
                    "unexpected token `{tok}` in CFIR_PIPEVIEW (want `PATH [cap=N]`)"
                ));
            }
        }
        match path {
            Some(path) => Ok(PipeviewSpec { path, cap }),
            None => Err("CFIR_PIPEVIEW needs an output path (`PATH [cap=N]`)".into()),
        }
    }

    /// Read `CFIR_PIPEVIEW` from the environment, **once per process**
    /// (same contract as the trace filter). Panics loudly on a
    /// malformed value.
    pub fn from_env() -> Option<PipeviewSpec> {
        static ENV: OnceLock<Option<PipeviewSpec>> = OnceLock::new();
        ENV.get_or_init(|| {
            std::env::var("CFIR_PIPEVIEW")
                .ok()
                .filter(|v| !v.is_empty())
                .map(|v| match PipeviewSpec::parse(&v) {
                    Ok(s) => s,
                    Err(e) => panic!("CFIR_PIPEVIEW: {e}"),
                })
        })
        .clone()
    }

    /// A copy with the output path suffixed by `scope` (same rule as
    /// [`crate::TraceFilter::scoped`]), so concurrent harness jobs
    /// sharing one `CFIR_PIPEVIEW` value write distinct files.
    pub fn scoped(&self, scope: &str) -> PipeviewSpec {
        PipeviewSpec {
            path: crate::filter::scope_path(&self.path, scope),
            cap: self.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic log: a producer, a dependent consumer that
    /// waits on it through a cache miss, a squashed wrong-path
    /// instruction, a reused validation, and a replica.
    fn sample() -> LifecycleLog {
        let mut log = LifecycleLog::new(0);
        let p = log.begin_fetch(4, || "ld r1, 0(r2)".into(), 0, 2);
        let c = log.begin_fetch(5, || "addi r3, r1, 1".into(), 0, 2);
        let w = log.begin_fetch(6, || "addi r9, r9, 1".into(), 1, 3);
        let u = log.begin_fetch(7, || "add r4, r4, r1".into(), 1, 3);
        log.note_dispatch(p, 1, 2);
        log.note_dispatch(c, 2, 2);
        log.note_dispatch(w, 3, 3);
        log.note_dispatch(u, 4, 3);
        log.note_issue(p, 3);
        log.edge(p, WaitEdgeKind::CacheMiss, None, "l2", 3);
        log.edge(p, WaitEdgeKind::CacheMiss, None, "l2", 4);
        for cyc in 3..9 {
            log.charge(Some(p), StallCause::DCacheMiss, 8);
            log.edge(c, WaitEdgeKind::Producer, Some(p), "", cyc);
        }
        log.note_complete(p, 9);
        log.note_commit(p, 10);
        log.note_squash(w, 10);
        log.set_reused(u, true);
        log.note_complete(u, 10);
        log.note_issue(c, 10);
        log.note_complete(c, 11);
        log.note_commit(c, 12);
        log.note_commit(u, 12);
        let r = log.begin_replica(20, || "mul r5, r5, r6".into(), 6);
        log.note_issue(r, 7);
        log.finish_replica(r, 9, true);
        log
    }

    #[test]
    fn charges_and_reconciliation() {
        let log = sample();
        let mut stall = StallBreakdown::new();
        stall.charge(StallCause::Useful, 3);
        stall.charge(StallCause::DCacheMiss, 48);
        assert!(log.reconcile(&stall).is_ok());
        stall.charge(StallCause::FetchStarved, 1);
        let err = log.reconcile(&stall).unwrap_err();
        assert!(err.contains("fetch_starved"), "{err}");
    }

    #[test]
    fn edges_coalesce() {
        let log = sample();
        let c = log.records().find(|r| r.pc() == 5).unwrap();
        assert_eq!(c.edges.len(), 1);
        assert_eq!(c.edges[0].kind, WaitEdgeKind::Producer);
        assert_eq!(c.edges[0].cycles, 6);
        assert_eq!(c.edges[0].first_cycle, 3);
        let p = log.records().find(|r| r.pc() == 4).unwrap();
        assert_eq!(p.edges[0].detail, "l2");
        assert_eq!(p.edges[0].cycles, 2);
    }

    #[test]
    fn ring_cap_drops_oldest_but_keeps_totals() {
        let mut log = LifecycleLog::new(2);
        for i in 0..5 {
            let l = log.begin_fetch(i, || format!("op{i}"), i, i + 1);
            log.note_dispatch(l, i + 1, i + 1);
            log.note_commit(l, i + 2);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.totals()[StallCause::Useful as usize], 5);
        let mut stall = StallBreakdown::new();
        stall.charge(StallCause::Useful, 5);
        assert!(log.reconcile(&stall).is_ok());
    }

    #[test]
    fn konata_round_trips() {
        let log = sample();
        let doc = log.render_konata();
        assert!(doc.starts_with("Kanata\t0004\n"));
        let trace = parse_konata(&doc).expect("parses");
        assert_eq!(trace.insts.len(), 5);

        let by_pc = |pc: u64| trace.insts.iter().find(|i| i.pc == Some(pc)).unwrap();
        let p = by_pc(4);
        assert_eq!(p.fate, Fate::Committed);
        assert_eq!(p.retire_cycle, Some(10));
        assert!(!p.flushed);
        assert_eq!(p.seq, Some(1));
        assert_eq!(
            p.waits,
            vec![("useful".to_string(), 1), ("dcache_miss".to_string(), 48)]
        );
        assert_eq!(p.edges[0].kind, WaitEdgeKind::CacheMiss);
        assert_eq!(p.edges[0].detail, "l2");

        let c = by_pc(5);
        assert_eq!(c.deps, vec![p.sid], "W edge points at the producer");
        assert_eq!(c.edges[0].target, Some(p.sid));

        let w = by_pc(6);
        assert!(w.flushed);
        assert_eq!(w.fate, Fate::Squashed);

        let u = by_pc(7);
        assert!(u.reused);
        assert!(
            u.stages.iter().any(|(n, _, _)| n == "Ru"),
            "reuse stage present: {:?}",
            u.stages
        );

        let r = by_pc(20);
        assert_eq!(r.tid, 1, "replica lane");
        // Stage times survive the round trip, in order.
        for i in &trace.insts {
            let mut last = 0;
            for (_, s, e) in &i.stages {
                assert!(*s >= last && *e >= *s, "monotonic stages: {i:?}");
                last = *s;
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_konata("hello\n").is_err());
        assert!(parse_konata("Kanata\t0004\nZ\t1\n").is_err());
        let err = parse_konata("Kanata\t0004\nC=\t0\nS\t9\t0\tF\n").unwrap_err();
        assert!(err.contains("unknown sid"), "{err}");
    }

    #[test]
    fn timeline_distinguishes_squashed_from_reused() {
        let log = sample();
        let trace = parse_konata(&log.render_konata()).unwrap();
        let out = render_timeline(&trace, &TimelineOpts::default()).unwrap();
        assert!(out.contains("[squashed]"), "{out}");
        assert!(out.contains("[reused]"), "{out}");
        assert!(out.contains("[replica]"), "{out}");
        assert!(out.contains('x'), "squash marker present:\n{out}");
        assert!(out.contains('C'), "commit marker present:\n{out}");

        // --around-mispredict finds the squash cluster.
        let out = render_timeline(
            &trace,
            &TimelineOpts {
                around_mispredict: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.contains("mispredict cluster #1 at cycle 10"), "{out}");

        // PC filter narrows to one row.
        let out = render_timeline(
            &trace,
            &TimelineOpts {
                pc: Some(5),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.contains("1 instruction(s)"), "{out}");

        // Out-of-range cluster and empty windows are loud.
        assert!(render_timeline(
            &trace,
            &TimelineOpts {
                around_mispredict: Some(9),
                ..Default::default()
            }
        )
        .is_err());
        assert!(render_timeline(
            &trace,
            &TimelineOpts {
                cycle_range: Some((500, 600)),
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn pipeview_spec_parses_and_scopes() {
        let s = PipeviewSpec::parse("/tmp/t.log").unwrap();
        assert_eq!(s.path, "/tmp/t.log");
        assert_eq!(s.cap, DEFAULT_PIPEVIEW_CAP);
        let s = PipeviewSpec::parse("trace.log cap=4096").unwrap();
        assert_eq!(s.cap, 4096);
        assert_eq!(s.scoped("07").path, "trace.07.log");
        assert!(PipeviewSpec::parse("").is_err());
        assert!(PipeviewSpec::parse("a b").is_err());
        assert!(PipeviewSpec::parse("a cap=zebra").is_err());
    }
}
