//! Causal critical-path / bottleneck analysis over a [`LifecycleLog`].
//!
//! Three views, all derived from data the recorder already captures:
//!
//! 1. **Hierarchical CPI stack** ([`CpiStack`]): the twelve per-slot
//!    [`StallCause`] buckets regrouped top-down into six classes (base,
//!    reuse-recovered, frontend, bad-speculation, backend-memory,
//!    backend-core). The regrouping is a *partition*, so the six groups
//!    sum to exactly `cycles × commit_width` whenever the underlying
//!    breakdown does — the PR-1 invariant survives the hierarchy.
//!
//! 2. **Critical path** ([`critical_path`]): a backward walk over the
//!    per-instruction causal DAG (stage timestamps + wait-edges) from
//!    the last retiring record to the start of recording. Every step
//!    covers a half-open cycle range and attributes it to one
//!    [`EdgeClass`]; the ranges tile `[start, end]`, so the per-class
//!    attribution sums to the path span *exactly* — no cycle is counted
//!    twice and none is lost.
//!
//! 3. **What-if projections** ([`project`]): a forward re-walk of the
//!    same DAG computing each record's projected completion time with
//!    selected edge classes zeroed (perfect branch prediction, perfect
//!    CI reuse, infinite replica buffer). The projection replays only
//!    *observed* latencies and zeroing only removes them, so two
//!    properties hold by construction:
//!
//!    * **bounding** — every projection is ≤ the measured cycle count
//!      (the un-zeroed replay reproduces timestamps ≤ the observed
//!      ones, by induction over the DAG);
//!    * **monotonicity** — a superset zero-set never projects more
//!      cycles, so `perfect-everything ≥ perfect-BP ≥ measured` in
//!      speedup terms.
//!
//! The projections are *speed limits* (optimistic limit-study bounds),
//! not predictions: zeroing refetch gaps keeps the pollution-induced
//! cache misses of the measured run, while a real oracle-BP machine
//! re-times everything. `exp_bottleneck` validates the perfect-BP
//! projection against an actual oracle-BP simulation run.

use crate::lifecycle::{Fate, InstLane, InstRecord, LifecycleLog, WaitEdgeKind};
use crate::stall::{StallBreakdown, StallCause};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Hierarchical CPI stack
// ---------------------------------------------------------------------------

/// The six top-down groups, in display order. A partition of the twelve
/// [`StallCause`] buckets (with `reuse_recovered` carved out of
/// `useful`), so the groups reconcile exactly with the per-slot
/// attribution.
pub const CPI_GROUPS: [&str; 6] = [
    "base",
    "reuse_recovered",
    "frontend",
    "bad_speculation",
    "backend_memory",
    "backend_core",
];

/// Commit-slot counts per top-down group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Useful slots filled by normally-executed instructions.
    pub base: u64,
    /// Useful slots filled by instructions that reused a CI replica
    /// value — work the mechanism recovered instead of re-executing.
    pub reuse_recovered: u64,
    /// Fetch-starved + in-order-dispatch-window slots.
    pub frontend: u64,
    /// Flush/repair slots (branch mispredictions, validation failures).
    pub bad_speculation: u64,
    /// D-cache-miss + LSQ-full slots.
    pub backend_memory: u64,
    /// Execution-core slots: FU/issue contention, data dependencies,
    /// rename/ROB pressure, commit bandwidth, replica arbitration.
    pub backend_core: u64,
}

impl CpiStack {
    /// Regroup a per-slot breakdown. `committed_reuse` (≤ the `useful`
    /// bucket) is carved out as the reuse-recovered segment.
    pub fn from_breakdown(stall: &StallBreakdown, committed_reuse: u64) -> CpiStack {
        let g = |c: StallCause| stall.get(c);
        let useful = g(StallCause::Useful);
        let reuse = committed_reuse.min(useful);
        CpiStack {
            base: useful - reuse,
            reuse_recovered: reuse,
            frontend: g(StallCause::FetchStarved) + g(StallCause::IqFull),
            bad_speculation: g(StallCause::RepairFlush),
            backend_memory: g(StallCause::DCacheMiss) + g(StallCause::LsqFull),
            backend_core: g(StallCause::FuContention)
                + g(StallCause::DataDependency)
                + g(StallCause::RenameRegs)
                + g(StallCause::RobFull)
                + g(StallCause::CommitBandwidth)
                + g(StallCause::ReplicaArbitration),
        }
    }

    /// `(group key, slots)` in [`CPI_GROUPS`] order.
    pub fn iter(&self) -> [(&'static str, u64); 6] {
        [
            ("base", self.base),
            ("reuse_recovered", self.reuse_recovered),
            ("frontend", self.frontend),
            ("bad_speculation", self.bad_speculation),
            ("backend_memory", self.backend_memory),
            ("backend_core", self.backend_core),
        ]
    }

    /// Total slots across the six groups.
    pub fn total(&self) -> u64 {
        self.iter().iter().map(|&(_, n)| n).sum()
    }

    /// The hierarchy must preserve the per-slot invariant: groups sum
    /// to `cycles × width`.
    pub fn check_sum(&self, cycles: u64, width: u64) -> Result<(), String> {
        let want = cycles * width;
        let got = self.total();
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "CPI-stack groups sum to {got}, expected cycles*width = {want}"
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// What a critical-path segment's cycles were spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum EdgeClass {
    /// Waiting for an older in-flight producer of a source operand.
    Producer = 0,
    /// A load served by the L2.
    CacheL2,
    /// A load served by the L3.
    CacheL3,
    /// A load served by main memory.
    CacheMem,
    /// Port/bank contention on the D-cache.
    Port,
    /// Waiting for an older store's address/data.
    StoreDisambiguation,
    /// A validated reuse waiting for its replica value.
    ReplicaValue,
    /// Refetch after a squash: the gap between a flushed record's death
    /// and the next correct-path fetch.
    MispredictRefetch,
    /// Fetch/decode/rename pipeline depth and fetch-chain gaps.
    Frontend,
    /// Execution latency on a functional unit (hit loads included).
    Execute,
    /// Completed but waiting for in-order commit.
    Commit,
    /// Dispatched and waiting with no identifiable causal edge
    /// (issue-bandwidth / scheduler occupancy).
    Schedule,
    /// The walk could not continue (dropped records truncate the DAG).
    Unresolved,
}

/// Number of edge classes.
pub const NUM_CLASSES: usize = 13;

/// All classes, in bucket order.
pub const ALL_CLASSES: [EdgeClass; NUM_CLASSES] = [
    EdgeClass::Producer,
    EdgeClass::CacheL2,
    EdgeClass::CacheL3,
    EdgeClass::CacheMem,
    EdgeClass::Port,
    EdgeClass::StoreDisambiguation,
    EdgeClass::ReplicaValue,
    EdgeClass::MispredictRefetch,
    EdgeClass::Frontend,
    EdgeClass::Execute,
    EdgeClass::Commit,
    EdgeClass::Schedule,
    EdgeClass::Unresolved,
];

impl EdgeClass {
    /// Stable snake_case key (used in JSON snapshots).
    pub fn key(self) -> &'static str {
        match self {
            EdgeClass::Producer => "producer",
            EdgeClass::CacheL2 => "cache_l2",
            EdgeClass::CacheL3 => "cache_l3",
            EdgeClass::CacheMem => "cache_mem",
            EdgeClass::Port => "port",
            EdgeClass::StoreDisambiguation => "store_disambiguation",
            EdgeClass::ReplicaValue => "replica_value",
            EdgeClass::MispredictRefetch => "mispredict_refetch",
            EdgeClass::Frontend => "frontend",
            EdgeClass::Execute => "execute",
            EdgeClass::Commit => "commit",
            EdgeClass::Schedule => "schedule",
            EdgeClass::Unresolved => "unresolved",
        }
    }

    fn from_wait(kind: WaitEdgeKind, detail: &str) -> EdgeClass {
        match kind {
            WaitEdgeKind::Producer => EdgeClass::Producer,
            WaitEdgeKind::CacheMiss => match detail {
                "l2" => EdgeClass::CacheL2,
                "l3" => EdgeClass::CacheL3,
                _ => EdgeClass::CacheMem,
            },
            WaitEdgeKind::Port => EdgeClass::Port,
            WaitEdgeKind::StoreDisambiguation => EdgeClass::StoreDisambiguation,
            WaitEdgeKind::ReplicaValue => EdgeClass::ReplicaValue,
        }
    }
}

/// One (pc, class) aggregate along the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSeg {
    /// Static word PC the cycles are anchored to (the waiting
    /// instruction; for refetch segments, the squashed instruction).
    pub pc: u64,
    /// What the cycles were spent on.
    pub class: EdgeClass,
    /// Cycles attributed.
    pub cycles: u64,
}

/// The critical path through one run's causal DAG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CritPath {
    /// Cycles covered: last retirement − start of recording. The
    /// per-class attribution sums to exactly this.
    pub span: u64,
    /// Cycle recording started (reconciliation with the run's cycle
    /// count is exact only when this is 0).
    pub start_cycle: u64,
    /// Cycles per [`EdgeClass`], `classes[class as usize]`.
    pub classes: [u64; NUM_CLASSES],
    /// Heaviest (pc, class) aggregates, descending, capped.
    pub top: Vec<PathSeg>,
    /// Per static branch: mispredict-refetch cycles on the critical
    /// path, descending — the per-branch CI-reuse headroom signal.
    pub branch_refetch: Vec<(u64, u64)>,
    /// Records visited by the walk.
    pub steps: usize,
}

/// How many (pc, class) aggregates [`CritPath::top`] retains.
pub const TOP_SEGMENTS: usize = 16;

/// End-of-life event time of a record: when its value (or death)
/// became visible downstream.
fn end_time(r: &InstRecord) -> Option<u64> {
    r.retire()
        .or(r.complete())
        .or(r.issue())
        .or(r.dispatch())
        .or(r.fetch())
}

/// Value-availability time of a record (for dependence edges).
fn value_time(r: &InstRecord) -> Option<u64> {
    r.complete()
        .or(r.retire())
        .or(r.issue())
        .or(r.dispatch())
        .or(r.fetch())
}

struct Walk {
    attributed: [u64; NUM_CLASSES],
    segs: HashMap<(u64, EdgeClass), u64>,
    refetch: HashMap<u64, u64>,
}

impl Walk {
    fn add(&mut self, pc: u64, class: EdgeClass, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.attributed[class as usize] += cycles;
        *self.segs.entry((pc, class)).or_insert(0) += cycles;
        if class == EdgeClass::MispredictRefetch {
            *self.refetch.entry(pc).or_insert(0) += cycles;
        }
    }
}

/// Compute the critical path of a recorded run. Returns a default
/// (zero-span) path when the log holds no records.
pub fn critical_path(log: &LifecycleLog) -> CritPath {
    let mut recs: Vec<&InstRecord> = log.records().collect();
    recs.sort_by_key(|r| r.lid);
    let by_lid: HashMap<u64, usize> = recs.iter().enumerate().map(|(i, r)| (r.lid, i)).collect();
    // Previous fetched record, per record, for the in-order fetch chain.
    let mut prev_fetch: Vec<Option<usize>> = vec![None; recs.len()];
    let mut last_fetched: Option<usize> = None;
    for (i, r) in recs.iter().enumerate() {
        prev_fetch[i] = last_fetched;
        if r.fetch().is_some() {
            last_fetched = Some(i);
        }
    }
    // Squashed records by retirement cycle, for refetch attribution.
    let mut squashes: Vec<(u64, usize)> = recs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.fate == Fate::Squashed && r.lane == InstLane::Normal)
        .filter_map(|(i, r)| r.retire().map(|c| (c, i)))
        .collect();
    squashes.sort_unstable();

    let start = log.start_cycle();
    // Start from the committed record that retired last (any record as
    // a fallback, so a squash-only window still walks).
    let end_rec = recs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.fate == Fate::Committed)
        .filter_map(|(i, r)| end_time(r).map(|t| (t, r.lid, i)))
        .max()
        .or_else(|| {
            recs.iter()
                .enumerate()
                .filter_map(|(i, r)| end_time(r).map(|t| (t, r.lid, i)))
                .max()
        });
    let Some((t_end, _, mut cur)) = end_rec else {
        return CritPath::default();
    };

    let mut w = Walk {
        attributed: [0; NUM_CLASSES],
        segs: HashMap::new(),
        refetch: HashMap::new(),
    };
    let mut t = t_end;
    let mut steps = 0usize;
    let limit = recs.len().saturating_mul(4) + 64;
    while t > start && steps < limit {
        steps += 1;
        let r = recs[cur];
        // A squashed record's entire residency is speculation-window
        // time: every span it contributes is mispredict-caused (perfect
        // branch prediction would remove it).
        let cls = |c: EdgeClass| {
            if r.fate == Fate::Squashed && r.lane == InstLane::Normal {
                EdgeClass::MispredictRefetch
            } else {
                c
            }
        };
        // Completed-to-retired: waiting for in-order commit.
        if let Some(c) = r.complete().filter(|&c| c < t) {
            w.add(r.pc(), cls(EdgeClass::Commit), t - c);
            t = c;
        }
        // Issue-to-complete: execution latency, with the record's own
        // memory/port wait-edges carved out of the span first.
        if let Some(i) = r.issue().filter(|&i| i < t) {
            let mut span = t - i;
            for e in &r.edges {
                if span == 0 {
                    break;
                }
                if matches!(e.kind, WaitEdgeKind::CacheMiss | WaitEdgeKind::Port) {
                    let take = e.cycles.min(span);
                    w.add(r.pc(), cls(EdgeClass::from_wait(e.kind, e.detail)), take);
                    span -= take;
                }
            }
            w.add(r.pc(), cls(EdgeClass::Execute), span);
            t = i;
        }
        // Dispatch-to-issue: follow the binding (latest-arriving)
        // causal edge to an older record when one explains the wait.
        let d = r.dispatch().or(r.decode()).or(r.fetch()).unwrap_or(start);
        let binding = r
            .edges
            .iter()
            .filter_map(|e| {
                let j = *by_lid.get(&e.target?)?;
                let te = value_time(recs[j])?;
                (te < t && te > d).then_some((te, recs[j].lid, j, e.kind, e.detail))
            })
            .max_by_key(|&(te, lid, ..)| (te, lid));
        if let Some((te, _, j, kind, detail)) = binding {
            w.add(r.pc(), cls(EdgeClass::from_wait(kind, detail)), t - te);
            t = te;
            cur = j;
            continue;
        }
        if d < t {
            w.add(r.pc(), cls(EdgeClass::Schedule), t - d);
            t = d;
        }
        // Frontend depth down to the fetch cycle.
        if let Some(f) = r.fetch().filter(|&f| f < t) {
            w.add(r.pc(), cls(EdgeClass::Frontend), t - f);
            t = f;
        }
        // Fetch chain: either a refetch after a squash (attribute the
        // repair gap to the squashed instruction) or the in-order
        // fetch stream.
        let Some(p) = prev_fetch[cur] else {
            break;
        };
        let pf = recs[p].fetch().unwrap_or(start);
        // Latest squash retirement in (pf, t], by binary search
        // (`squashes` is sorted by retire cycle).
        let flush = squashes
            .partition_point(|&(c, _)| c <= t)
            .checked_sub(1)
            .map(|i| squashes[i])
            .filter(|&(c, _)| c > pf);
        if let Some((c, si)) = flush {
            w.add(recs[si].pc(), EdgeClass::MispredictRefetch, t - c);
            t = c;
            cur = si;
            continue;
        }
        if pf < t {
            w.add(r.pc(), cls(EdgeClass::Frontend), t - pf);
            t = pf;
        }
        cur = p;
    }
    if t > start {
        // Chain truncated (dropped records or the walk limit).
        w.add(0, EdgeClass::Unresolved, t - start);
    }
    let mut top: Vec<PathSeg> = w
        .segs
        .into_iter()
        .map(|((pc, class), cycles)| PathSeg { pc, class, cycles })
        .collect();
    top.sort_by_key(|s| (std::cmp::Reverse(s.cycles), s.pc, s.class as usize));
    top.truncate(TOP_SEGMENTS);
    let mut branch_refetch: Vec<(u64, u64)> = w.refetch.into_iter().collect();
    branch_refetch.sort_by_key(|&(pc, c)| (std::cmp::Reverse(c), pc));
    branch_refetch.truncate(TOP_SEGMENTS);
    CritPath {
        span: t_end - start,
        start_cycle: start,
        classes: w.attributed,
        top,
        branch_refetch,
        steps,
    }
}

// ---------------------------------------------------------------------------
// What-if projections
// ---------------------------------------------------------------------------

/// Which edge classes a what-if projection zeroes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroSet {
    /// Perfect branch prediction: squashed work vanishes and
    /// flush-crossing fetch gaps (refetch penalties) collapse to 0.
    pub branch_repair: bool,
    /// Replica values are always ready: `ReplicaValue` edges cost 0
    /// (infinite replica buffer — no arbitration/creation backlog).
    pub replica_value: bool,
    /// Perfect CI reuse: reused instructions also skip their execution
    /// latency (the replica did the work).
    pub reused_exec: bool,
}

/// The standard speed-limit scenarios, in reporting order. Each later
/// compound scenario zeroes a superset of the earlier ones it contains,
/// so speedups are monotone within the chains documented on
/// [`project`].
pub const SCENARIOS: [(&str, ZeroSet); 4] = [
    (
        "perfect_bp",
        ZeroSet {
            branch_repair: true,
            replica_value: false,
            reused_exec: false,
        },
    ),
    (
        "infinite_replica_buffer",
        ZeroSet {
            branch_repair: false,
            replica_value: true,
            reused_exec: false,
        },
    ),
    (
        "perfect_ci_reuse",
        ZeroSet {
            branch_repair: false,
            replica_value: true,
            reused_exec: true,
        },
    ),
    (
        "perfect_everything",
        ZeroSet {
            branch_repair: true,
            replica_value: true,
            reused_exec: true,
        },
    ),
];

/// One what-if row of the speed-limit table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIfRow {
    /// Scenario key (see [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Projected cycles for the recorded span under the zero-set.
    pub projected_cycles: u64,
}

/// Forward re-walk of the causal DAG with `zero`ed edge classes.
///
/// Replays each record's *observed* latencies (fetch-stream gaps,
/// front-end depth, dependence arrivals, execution time) in lifecycle
/// order and returns the projected cycle count for the recorded span:
/// the latest projected completion among committed records, floored by
/// the commit-bandwidth bound `ceil(committed / width)`.
///
/// Two structural machine limits are modelled alongside the observed
/// latencies, because without them a memory-bound run projects absurd
/// overlap: the instruction `window` (a record cannot dispatch until
/// the record `window` dispatch-slots ahead of it has completed — the
/// real machine frees the slot even later, at in-order retire) and the
/// commit-width floor. `window == 0` disables the window model.
///
/// Guarantees (see module docs for the argument): the projection never
/// exceeds the measured span, and zeroing more classes never increases
/// it. The first guarantee is enforced by construction: the re-walk is
/// an approximation (fetch gaps and the window front can over-serialize
/// by a few percent), but the measured run is itself an upper bound on
/// any speed limit — removing constraints cannot slow the machine down
/// — so the result is clamped to the recorded span.
pub fn project(log: &LifecycleLog, zero: ZeroSet, width: u64, window: usize) -> u64 {
    let mut recs: Vec<&InstRecord> = log.records().collect();
    recs.sort_by_key(|r| r.lid);
    let by_lid: HashMap<u64, usize> = recs.iter().enumerate().map(|(i, r)| (r.lid, i)).collect();
    let start = log.start_cycle();
    let mut squash_retires: Vec<u64> = recs
        .iter()
        .filter(|r| r.fate == Fate::Squashed && r.lane == InstLane::Normal)
        .filter_map(|r| r.retire())
        .collect();
    squash_retires.sort_unstable();
    let crossed_flush = |lo: u64, hi: u64| {
        let i = squash_retires.partition_point(|&c| c <= lo);
        squash_retires.get(i).is_some_and(|&c| c <= hi)
    };

    // Projected value-availability per record, in cycles after `start`.
    let mut proj: Vec<u64> = vec![0; recs.len()];
    let mut skipped: Vec<bool> = vec![false; recs.len()];
    let mut last_fetch_obs: Option<u64> = None;
    let mut last_fetch_proj: u64 = 0;
    let mut committed = 0u64;
    let mut depth = 0u64;
    // The finite-window constraint: the machine retires in order, so a
    // record cannot dispatch before the *in-order completion front* of
    // the record `window` slots ahead of it. The deque holds that
    // running front, one entry per dispatched normal-lane record.
    let mut occupancy: std::collections::VecDeque<u64> =
        std::collections::VecDeque::with_capacity(window);
    let mut inorder_front = 0u64;
    for (i, r) in recs.iter().enumerate() {
        // Under perfect BP the wrong path is never fetched.
        if zero.branch_repair && r.fate == Fate::Squashed && r.lane == InstLane::Normal {
            skipped[i] = true;
            continue;
        }
        let mut t = match r.fetch() {
            Some(f) => {
                let (gap_lo, mut delta) = match last_fetch_obs {
                    Some(pf) => (pf, f - pf),
                    None => (start, f - start),
                };
                if zero.branch_repair && crossed_flush(gap_lo, f) {
                    delta = 0; // the refetch penalty vanishes
                }
                last_fetch_proj += delta;
                last_fetch_obs = Some(f);
                // Front-end depth (decode/rename) at its observed cost.
                let depth_fe = r.dispatch().or(r.decode()).unwrap_or(f).saturating_sub(f);
                last_fetch_proj + depth_fe
            }
            // Replicas are injected by the engine, not fetched; keep
            // their observed creation time.
            None => r
                .dispatch()
                .or(end_time(r))
                .unwrap_or(start)
                .saturating_sub(start),
        };
        // Dependence arrivals (projected).
        for e in &r.edges {
            let Some(tgt) = e.target else { continue };
            let Some(&j) = by_lid.get(&tgt) else {
                continue;
            };
            if j >= i || skipped[j] {
                continue;
            }
            let zeroed = matches!(e.kind, WaitEdgeKind::ReplicaValue) && zero.replica_value;
            if !zeroed {
                t = t.max(proj[j]);
            }
        }
        // Finite window: this record cannot dispatch before the record
        // `window` slots ahead of it has drained.
        let occupies = window > 0 && r.lane == InstLane::Normal && r.dispatch().is_some();
        if occupies && occupancy.len() == window {
            let freed = occupancy.pop_front().unwrap_or(0);
            t = t.max(freed);
        }
        // Execution latency at its observed cost.
        let exec = match (r.issue(), r.complete()) {
            (Some(i_), Some(c)) => c.saturating_sub(i_),
            _ => 0,
        };
        let exec = if zero.reused_exec && r.reused {
            0
        } else {
            exec
        };
        proj[i] = t + exec;
        if occupies {
            inorder_front = inorder_front.max(proj[i]);
            occupancy.push_back(inorder_front);
        }
        if r.fate == Fate::Committed && r.lane == InstLane::Normal {
            committed += 1;
            depth = depth.max(proj[i]);
        }
    }
    let projected = depth.max(committed.div_ceil(width.max(1)));
    // Clamp to the recorded span (last committed retire): a speed
    // limit can never exceed the run it was measured from.
    let measured = recs
        .iter()
        .filter(|r| r.fate == Fate::Committed)
        .filter_map(|r| r.retire().or_else(|| end_time(r)))
        .max()
        .unwrap_or(0)
        .saturating_sub(start);
    if measured > 0 {
        projected.min(measured)
    } else {
        projected
    }
}

/// All standard scenarios projected for one log.
pub fn whatif_table(log: &LifecycleLog, width: u64, window: usize) -> Vec<WhatIfRow> {
    SCENARIOS
        .iter()
        .map(|&(scenario, zero)| WhatIfRow {
            scenario,
            projected_cycles: project(log, zero, width, window),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The combined report
// ---------------------------------------------------------------------------

/// Everything the bottleneck layer derives from one recorded run
/// (stored on `SimStats`, serialized into the snapshot's `bottleneck`
/// object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BottleneckReport {
    /// The critical path and its attribution.
    pub crit: CritPath,
    /// The speed-limit table.
    pub whatif: Vec<WhatIfRow>,
}

/// Run the full analysis over a finished log. `window` is the machine's
/// instruction-window size (the what-if re-walk models it; 0 = off).
pub fn analyze(log: &LifecycleLog, width: u64, window: usize) -> BottleneckReport {
    BottleneckReport {
        crit: critical_path(log),
        whatif: whatif_table(log, width, window),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::LifecycleLog;
    use crate::stall::ALL_CAUSES;

    #[test]
    fn cpi_groups_partition_every_cause() {
        // Charge each cause a distinct prime so any double-count or
        // omission breaks the sum.
        let mut b = StallBreakdown::new();
        let primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
        for (c, p) in ALL_CAUSES.into_iter().zip(primes) {
            b.charge(c, p);
        }
        let stack = CpiStack::from_breakdown(&b, 1);
        assert_eq!(stack.total(), b.total());
        assert_eq!(stack.base + stack.reuse_recovered, 2);
        assert_eq!(stack.reuse_recovered, 1);
    }

    #[test]
    fn cpi_stack_check_sum_mirrors_breakdown() {
        let mut b = StallBreakdown::new();
        b.charge(StallCause::Useful, 10);
        b.charge(StallCause::FetchStarved, 6);
        let stack = CpiStack::from_breakdown(&b, 4);
        assert!(stack.check_sum(2, 8).is_ok());
        assert!(stack.check_sum(3, 8).is_err());
    }

    /// A three-instruction chain: load misses to memory, consumer
    /// waits on it, branch squash forces a refetch gap before the
    /// final instruction.
    fn chain_log() -> LifecycleLog {
        let mut log = LifecycleLog::new(0);
        // lid 1: load, fetched at 0, issues at 3, completes at 103.
        let l1 = log.begin_fetch(0x10, || "ld".into(), 0, 2);
        log.note_dispatch(l1, 1, 2);
        log.note_issue(l1, 3);
        log.edge(l1, WaitEdgeKind::CacheMiss, None, "mem", 4);
        log.note_complete(l1, 103);
        // lid 2: consumer, waits on the load's value.
        let l2 = log.begin_fetch(0x18, || "add".into(), 1, 3);
        log.note_dispatch(l2, 2, 3);
        log.edge(l2, WaitEdgeKind::Producer, Some(l1), "", 10);
        log.note_issue(l2, 104);
        log.note_complete(l2, 105);
        // lid 3: mispredicted branch, squashed path dies at 110.
        let l3 = log.begin_fetch(0x20, || "beq".into(), 2, 4);
        log.note_dispatch(l3, 3, 4);
        log.note_issue(l3, 105);
        log.note_complete(l3, 106);
        let wrong = log.begin_fetch(0x28, || "wrong".into(), 3, 5);
        log.note_squash(wrong, 110);
        // lid 5: refetched correct path at 112.
        let l5 = log.begin_fetch(0x30, || "sub".into(), 112, 114);
        log.note_dispatch(l5, 4, 114);
        log.note_issue(l5, 115);
        log.note_complete(l5, 116);
        log.note_commit(l1, 104);
        log.note_commit(l2, 106);
        log.note_commit(l3, 107);
        log.note_commit(l5, 118);
        log
    }

    #[test]
    fn critical_path_tiles_the_span_exactly() {
        let log = chain_log();
        let cp = critical_path(&log);
        assert_eq!(cp.span, 118, "last retire at 118, start at 0");
        let total: u64 = cp.classes.iter().sum();
        assert_eq!(total, cp.span, "attribution must tile the span");
        assert!(cp.classes[EdgeClass::MispredictRefetch as usize] > 0);
        assert!(!cp.top.is_empty());
        // The refetch segment is anchored to the squashed pc.
        assert!(cp.branch_refetch.iter().any(|&(pc, _)| pc == 0x28));
    }

    #[test]
    fn projection_bounds_and_orders() {
        let log = chain_log();
        let width = 8;
        let measured = 118;
        let baseline = project(&log, ZeroSet::default(), width, 256);
        assert!(baseline <= measured, "un-zeroed replay must bound");
        let rows = whatif_table(&log, width, 256);
        let get = |k: &str| {
            rows.iter()
                .find(|r| r.scenario == k)
                .unwrap()
                .projected_cycles
        };
        for r in &rows {
            assert!(r.projected_cycles <= measured, "{}", r.scenario);
            assert!(r.projected_cycles >= 1);
        }
        assert!(get("perfect_everything") <= get("perfect_bp"));
        assert!(get("perfect_everything") <= get("perfect_ci_reuse"));
        assert!(get("perfect_ci_reuse") <= get("infinite_replica_buffer"));
        // Perfect BP erases the refetch gap, so it beats the baseline.
        assert!(get("perfect_bp") < baseline);
    }

    #[test]
    fn empty_log_yields_default_report() {
        let log = LifecycleLog::new(0);
        let rep = analyze(&log, 8, 256);
        assert_eq!(rep.crit.span, 0);
        assert!(rep.whatif.iter().all(|r| r.projected_cycles == 0));
    }
}
