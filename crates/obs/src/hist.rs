//! Power-of-two-bucket latency histograms.
//!
//! Bucket `i` counts samples whose value `v` satisfies
//! `2^(i-1) <= v < 2^i` (bucket 0 counts `v == 0`). Recording is a
//! `leading_zeros` and an add — cheap enough for per-instruction
//! hot-path use. 65 buckets cover the full `u64` range.

/// Number of buckets: value 0, then one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// A latency histogram with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Upper bound (inclusive) of bucket `i`.
    pub fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-quantile (`0.0 < p <= 1.0`): the inclusive upper
    /// bound of the bucket holding the `ceil(p * count)`-th smallest
    /// sample, clamped to the observed maximum. Exact when the bucket
    /// holds a single distinct value; otherwise an upper estimate
    /// within a factor of two (the bucket width).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Hist::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Iterator over non-empty buckets as `(bucket_lo, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// One-line human rendering: `count/mean/percentiles/max` plus
    /// sparse buckets.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        );
        for (lo, c) in self.nonzero_buckets() {
            let _ = write!(s, " [{lo}+]={c}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        // Every bucket's lower bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(Hist::bucket_of(Hist::bucket_lo(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Hist::new();
        for v in [0, 1, 1, 3, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 113);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 113.0 / 6.0).abs() < 1e-12);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 → [0], 1,1 → [1], 3 → [2,4), 8 → [8,16), 100 → [64,128)
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 1), (8, 1), (64, 1)]);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in 0..50 {
            a.record(v);
            b.record(v * 3);
        }
        let (ca, cb, sa, sb) = (a.count(), b.count(), a.sum(), b.sum());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.sum(), sa + sb);
        assert_eq!(a.max(), 49 * 3);
    }

    #[test]
    fn empty_histogram() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bucket_hi_bounds() {
        assert_eq!(Hist::bucket_hi(0), 0);
        assert_eq!(Hist::bucket_hi(1), 1);
        assert_eq!(Hist::bucket_hi(2), 3);
        assert_eq!(Hist::bucket_hi(4), 15);
        assert_eq!(Hist::bucket_hi(64), u64::MAX);
        for i in 0..BUCKETS - 1 {
            assert_eq!(Hist::bucket_hi(i) + 1, Hist::bucket_lo(i + 1), "bucket {i}");
        }
    }

    #[test]
    fn percentiles_on_single_valued_buckets_are_exact() {
        let mut h = Hist::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p90(), 1);
        // The 100th sample is the outlier; its bucket is [64,127] but
        // the estimate clamps to the observed max.
        assert_eq!(h.p99(), 1);
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.record(v * 7 % 513);
        }
        let mut prev = 0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = h.percentile(p);
            assert!(q >= prev, "quantiles must be monotone");
            assert!(q <= h.max());
            prev = q;
        }
        // The render line includes the percentile summary.
        assert!(h.render().contains("p50="));
        assert!(h.render().contains("p99="));
    }
}
