//! Power-of-two-bucket latency histograms.
//!
//! Bucket `i` counts samples whose value `v` satisfies
//! `2^(i-1) <= v < 2^i` (bucket 0 counts `v == 0`). Recording is a
//! `leading_zeros` and an add — cheap enough for per-instruction
//! hot-path use. 65 buckets cover the full `u64` range.

/// Number of buckets: value 0, then one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// A latency histogram with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterator over non-empty buckets as `(bucket_lo, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// One-line human rendering: `count/mean/max` plus sparse buckets.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("n={} mean={:.1} max={}", self.count, self.mean(), self.max);
        for (lo, c) in self.nonzero_buckets() {
            let _ = write!(s, " [{lo}+]={c}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        // Every bucket's lower bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(Hist::bucket_of(Hist::bucket_lo(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Hist::new();
        for v in [0, 1, 1, 3, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 113);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 113.0 / 6.0).abs() < 1e-12);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 → [0], 1,1 → [1], 3 → [2,4), 8 → [8,16), 100 → [64,128)
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 1), (8, 1), (64, 1)]);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in 0..50 {
            a.record(v);
            b.record(v * 3);
        }
        let (ca, cb, sa, sb) = (a.count(), b.count(), a.sum(), b.sum());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.sum(), sa + sb);
        assert_eq!(a.max(), 49 * 3);
    }

    #[test]
    fn empty_histogram() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
