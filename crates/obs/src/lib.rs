//! # cfir-obs — observability layer for the CFIR simulator
//!
//! A self-contained (zero external dependencies) telemetry toolkit used
//! by every other crate in the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`hist`] | power-of-two-bucket latency histograms |
//! | [`stall`] | per-cycle stall-attribution causes and breakdown |
//! | [`event`] | typed trace events (vectorize/validate/flush/…) |
//! | [`filter`] | `CFIR_TRACE` filter, parsed **once** at startup |
//! | [`lifecycle`] | per-instruction lifecycle records, Konata pipeview, ASCII timeline |
//! | [`critpath`] | causal critical path, hierarchical CPI stack, what-if projections |
//! | [`sink`] | pluggable sinks: human text, JSONL, Chrome `trace_event` |
//! | [`trace`] | the [`Tracer`](trace::Tracer) tying filter + sinks together |
//! | [`json`] | hand-rolled JSON writer + minimal parser (no serde) |
//! | [`rng`] | splitmix64 / xoshiro256** PRNG (replaces the `rand` crate) |
//!
//! ## Zero overhead when disabled
//!
//! The simulator holds an `Option<Tracer>`; when `CFIR_TRACE` /
//! `CFIR_DEBUG` / `CFIR_CSTREAM` are unset the option is `None` and
//! every trace site costs exactly one branch — no `format!`, no
//! `env::var`, no allocation. Event payloads are built lazily, only
//! after the parse-once filter has matched.

pub mod critpath;
pub mod event;
pub mod filter;
pub mod hist;
pub mod json;
pub mod lifecycle;
pub mod rng;
pub mod sink;
pub mod stall;
pub mod trace;

pub use critpath::{BottleneckReport, CpiStack, CritPath, EdgeClass, PathSeg, WhatIfRow, ZeroSet};
pub use event::{EventKind, Subsystem, TraceEvent};
pub use filter::TraceFilter;
pub use hist::Hist;
pub use json::{JsonValue, JsonWriter};
pub use lifecycle::{
    parse_konata, render_timeline, Fate, InstLane, InstRecord, LifecycleLog, ParsedTrace,
    PipeviewSpec, TimelineOpts, WaitEdge, WaitEdgeKind,
};
pub use rng::Rng64;
pub use stall::{StallBreakdown, StallCause};
pub use trace::Tracer;

/// Lazily emit a trace event through an `Option<Tracer>`.
///
/// The first three expressions (tracer option, subsystem, pc, cycle)
/// are evaluated unconditionally — they must be cheap. The final
/// expression builds the [`EventKind`] payload and is evaluated **only
/// if** the parse-once filter matches, so disabled tracing costs a
/// single branch on the `Option`.
///
/// ```
/// use cfir_obs::{trace_event, Subsystem, EventKind, Tracer};
/// let tracer: Option<Tracer> = None; // disabled: body never evaluated
/// trace_event!(tracer, Subsystem::Vec, 0x10, 42, EventKind::Note {
///     msg: format!("this format! never runs"),
/// });
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $sub:expr, $pc:expr, $cycle:expr, $kind:expr) => {
        if let Some(t) = ($tracer).as_ref() {
            if t.enabled($sub, $pc, $cycle) {
                t.emit($sub, $pc, $cycle, $kind);
            }
        }
    };
}
