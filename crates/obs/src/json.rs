//! Hand-rolled JSON writer and minimal parser (no serde, per the
//! workspace dependency policy).
//!
//! The writer is a small streaming builder with correct string
//! escaping; the parser is a recursive-descent reader used by tests
//! and tooling to validate snapshots round-trip.

/// Streaming JSON builder. Commas are inserted automatically.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    // One entry per open container: `true` once a value has been
    // written (so the next value needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(used) = self.stack.last_mut() {
            if *used {
                self.buf.push(',');
            }
            *used = true;
        }
    }

    /// Open an object (as a value).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        self
    }

    /// Open an array (as a value).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        self
    }

    /// Write an object key (caller then writes exactly one value).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        // The key consumed the comma slot; the following value's
        // pre_value() must not insert another comma.
        if let Some(used) = self.stack.last_mut() {
            *used = false;
        }
        self
    }

    /// String value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.buf, v);
        self
    }

    /// Unsigned integer value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        use std::fmt::Write;
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Signed integer value.
    pub fn i64_val(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        use std::fmt::Write;
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Float value; non-finite values become `null` (JSON has no NaN).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        use std::fmt::Write;
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// `key: "string"` shorthand.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_val(v)
    }

    /// `key: uint` shorthand.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_val(v)
    }

    /// `key: float` shorthand.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64_val(v)
    }

    /// `key: bool` shorthand.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_val(v)
    }

    /// Finish and return the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.buf
    }
}

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escape a string, returning the quoted literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// A parsed JSON value (used by tests/CI to validate snapshots).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value (exact), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns an error message with byte offset on
/// malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => expect_lit(b, pos, "true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|_| JsonValue::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null").map(|_| JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
    s.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "control\u{1}char",
            "unicode: héllo → 世界",
            "",
        ] {
            let lit = escape(s);
            let back = parse(&lit).unwrap();
            assert_eq!(back.as_str(), Some(s), "round trip of {s:?} via {lit}");
        }
    }

    #[test]
    fn escape_exact_forms() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape("a\\b"), r#""a\\b""#);
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writer_builds_valid_documents() {
        let mut w = JsonWriter::new();
        w.begin_obj()
            .field_str("name", "smoke")
            .field_u64("cycles", 12345)
            .field_f64("ipc", 1.5)
            .field_bool("ok", true)
            .key("hist");
        w.begin_arr();
        for i in 0..3u64 {
            w.begin_arr().u64_val(i).u64_val(i * 2).end_arr();
        }
        w.end_arr();
        w.key("nothing").f64_val(f64::NAN);
        w.end_obj();
        let text = w.finish();
        let v = parse(&text).expect("writer output parses");
        assert_eq!(v.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(12345));
        assert_eq!(v.get("ipc").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&JsonValue::Null));
        let hist = v.get("hist").unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[2].as_arr().unwrap()[1].as_u64(), Some(4));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn parser_accepts_nested() {
        let v = parse(r#" { "a": [1, 2.5, {"b": null}], "c": "d" } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b"),
            Some(&JsonValue::Null)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
    }
}
