//! Per-cycle stall attribution.
//!
//! Every cycle the pipeline has `commit_width` commit slots. Slots
//! that retire an instruction are charged to [`StallCause::Useful`];
//! every remaining slot is charged to exactly one cause, chosen by the
//! pipeline's priority rules (see `cfir-sim::stall_attr`). The
//! invariant — checked by [`StallBreakdown::check_sum`] and an
//! integration test — is that all buckets sum to `cycles × width`.

/// Why a commit slot did no useful work this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StallCause {
    /// Slot retired an instruction.
    Useful = 0,
    /// ROB empty and no decoded instructions waiting (front-end dry:
    /// I-cache miss, redirect bubble, or program drained).
    FetchStarved,
    /// Dispatch blocked: no free physical register.
    RenameRegs,
    /// Dispatch blocked: decode queue backed up behind a not-yet-ready
    /// instruction (in-order dispatch window full).
    IqFull,
    /// Dispatch blocked: load/store queue full.
    LsqFull,
    /// Dispatch blocked: reorder buffer full.
    RobFull,
    /// Oldest instruction issued but still executing on a functional
    /// unit (or waiting for issue bandwidth).
    FuContention,
    /// Oldest instruction is a load missing in the data cache.
    DCacheMiss,
    /// Oldest instruction waits on source operands (data dependency).
    DataDependency,
    /// Pipeline flushed this cycle (branch repair / mechanism
    /// validation failure recovery).
    RepairFlush,
    /// Oldest instruction waits on a replica value that has not been
    /// arbitrated onto the reuse bus yet.
    ReplicaArbitration,
    /// Oldest instruction is done but commit bandwidth (store ports /
    /// D-cache write ports) ran out.
    CommitBandwidth,
}

/// Number of stall causes (including `Useful`).
pub const NUM_CAUSES: usize = 12;

/// All causes, in bucket order.
pub const ALL_CAUSES: [StallCause; NUM_CAUSES] = [
    StallCause::Useful,
    StallCause::FetchStarved,
    StallCause::RenameRegs,
    StallCause::IqFull,
    StallCause::LsqFull,
    StallCause::RobFull,
    StallCause::FuContention,
    StallCause::DCacheMiss,
    StallCause::DataDependency,
    StallCause::RepairFlush,
    StallCause::ReplicaArbitration,
    StallCause::CommitBandwidth,
];

impl StallCause {
    /// Stable snake_case key (used in JSON snapshots).
    pub fn key(self) -> &'static str {
        match self {
            StallCause::Useful => "useful",
            StallCause::FetchStarved => "fetch_starved",
            StallCause::RenameRegs => "rename_blocked_on_regs",
            StallCause::IqFull => "iq_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::RobFull => "rob_full",
            StallCause::FuContention => "fu_contention",
            StallCause::DCacheMiss => "dcache_miss",
            StallCause::DataDependency => "data_dependency",
            StallCause::RepairFlush => "repair_flush",
            StallCause::ReplicaArbitration => "replica_arbitration",
            StallCause::CommitBandwidth => "commit_bandwidth",
        }
    }
}

/// Slot counts per cause. `buckets[cause as usize]` is the number of
/// commit slots charged to that cause over the whole run.
#[derive(Debug, Clone, Default)]
pub struct StallBreakdown {
    buckets: [u64; NUM_CAUSES],
}

impl StallBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `slots` commit slots to `cause`.
    #[inline]
    pub fn charge(&mut self, cause: StallCause, slots: u64) {
        self.buckets[cause as usize] += slots;
    }

    /// Slots charged to one cause.
    #[inline]
    pub fn get(&self, cause: StallCause) -> u64 {
        self.buckets[cause as usize]
    }

    /// Total slots across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Verify the accounting invariant: buckets sum to `cycles × width`.
    pub fn check_sum(&self, cycles: u64, width: u64) -> Result<(), String> {
        let want = cycles * width;
        let got = self.total();
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "stall buckets sum to {got}, expected cycles*width = {want}"
            ))
        }
    }

    /// `(key, slots)` for every cause, in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        ALL_CAUSES
            .iter()
            .map(move |&c| (c, self.buckets[c as usize]))
    }

    /// Human table: one `cause: slots (pct%)` line per non-empty bucket.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let total = self.total().max(1) as f64;
        let mut s = String::new();
        for (c, n) in self.iter() {
            if n != 0 {
                let _ = writeln!(
                    s,
                    "  {:<24} {:>12} ({:5.1}%)",
                    c.key(),
                    n,
                    n as f64 / total * 100.0
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_sum() {
        let mut b = StallBreakdown::new();
        b.charge(StallCause::Useful, 10);
        b.charge(StallCause::DCacheMiss, 5);
        b.charge(StallCause::Useful, 1);
        assert_eq!(b.get(StallCause::Useful), 11);
        assert_eq!(b.get(StallCause::DCacheMiss), 5);
        assert_eq!(b.total(), 16);
        assert_eq!(b.check_sum(2, 8), Ok(()));
        assert!(b.check_sum(3, 8).is_err());
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CAUSES {
            assert!(seen.insert(c.key()), "duplicate key {}", c.key());
        }
        assert_eq!(seen.len(), NUM_CAUSES);
        assert_eq!(StallCause::Useful as usize, 0);
    }

    #[test]
    fn discriminants_are_dense() {
        for (i, c) in ALL_CAUSES.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
