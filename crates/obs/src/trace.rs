//! The [`Tracer`]: a parse-once filter plus a sink.
//!
//! The simulator owns an `Option<Tracer>` built by [`Tracer::from_env`]
//! at startup. The environment is consulted exactly once per process
//! (cached in a `OnceLock`), so hot-path trace sites never touch
//! `env::var`. Emission goes through interior mutability so the
//! [`trace_event!`](crate::trace_event) macro can fire from `&self`
//! contexts.
//!
//! Environment contract:
//!
//! | variable | effect |
//! |---|---|
//! | `CFIR_TRACE=SPEC` | trace per [`TraceFilter::parse`]; malformed specs panic loudly |
//! | `CFIR_DEBUG=1` | trace everything (text sink) |
//! | `CFIR_CSTREAM=1` | trace the commit subsystem only (the old commit-stream dump) |
//!
//! `CFIR_TRACE` wins over `CFIR_DEBUG`, which wins over `CFIR_CSTREAM`.

use std::cell::RefCell;
use std::sync::OnceLock;

use crate::event::{EventKind, Subsystem, TraceEvent};
use crate::filter::{SinkSpec, TraceFilter};
use crate::sink::{ChromeSink, JsonlSink, Sink, TextSink};

/// A trace filter bound to a sink. Cheap to query, interior-mutable to
/// emit (sinks buffer).
pub struct Tracer {
    filter: TraceFilter,
    sink: RefCell<Box<dyn Sink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("filter", &self.filter)
            .finish_non_exhaustive()
    }
}

fn build_sink(filter: &TraceFilter) -> Box<dyn Sink> {
    match &filter.sink {
        SinkSpec::Text => Box::new(TextSink),
        SinkSpec::Jsonl(path) => match JsonlSink::create(path) {
            Ok(s) => Box::new(s),
            Err(e) => panic!("CFIR_TRACE: cannot open jsonl sink {path}: {e}"),
        },
        SinkSpec::Chrome(path) => Box::new(ChromeSink::create(path, filter.cap)),
    }
}

/// Resolve the three trace-related environment values into a filter.
/// Pure so it can be tested without mutating the process environment.
fn resolve(trace: Option<&str>, debug: bool, cstream: bool) -> Result<Option<TraceFilter>, String> {
    if let Some(spec) = trace {
        return TraceFilter::parse(spec).map(Some);
    }
    if debug {
        return Ok(Some(TraceFilter::all()));
    }
    if cstream {
        let mut f = TraceFilter::all();
        f.subs = Subsystem::Commit.bit();
        return Ok(Some(f));
    }
    Ok(None)
}

fn env_truthy(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

static ENV_FILTER: OnceLock<Option<TraceFilter>> = OnceLock::new();

impl Tracer {
    /// Tracer with the sink described by the filter.
    pub fn new(filter: TraceFilter) -> Tracer {
        let sink = build_sink(&filter);
        Tracer {
            filter,
            sink: RefCell::new(sink),
        }
    }

    /// Tracer with an explicit sink (tests, embedding).
    pub fn with_sink(filter: TraceFilter, sink: Box<dyn Sink>) -> Tracer {
        Tracer {
            filter,
            sink: RefCell::new(sink),
        }
    }

    /// Build a tracer from `CFIR_TRACE` / `CFIR_DEBUG` / `CFIR_CSTREAM`.
    ///
    /// The environment is read and the filter parsed **once per
    /// process**; later calls reuse the cached result (each call still
    /// gets its own sink). Returns `None` — the zero-overhead path —
    /// when none of the variables are set. Panics with a descriptive
    /// message on a malformed `CFIR_TRACE`, so a typo'd filter fails
    /// the run instead of silently tracing nothing.
    pub fn from_env() -> Option<Tracer> {
        let cached = ENV_FILTER.get_or_init(|| {
            let trace = std::env::var("CFIR_TRACE").ok();
            match resolve(
                trace.as_deref(),
                env_truthy("CFIR_DEBUG"),
                env_truthy("CFIR_CSTREAM"),
            ) {
                Ok(f) => f,
                Err(e) => panic!("CFIR_TRACE: {e}"),
            }
        });
        cached.clone().map(Tracer::new)
    }

    /// The bound filter.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Would an event at (`sub`, `pc`, `cycle`) be emitted? Hot-path
    /// gate: a couple of integer compares.
    #[inline]
    pub fn enabled(&self, sub: Subsystem, pc: u64, cycle: u64) -> bool {
        self.filter.matches(sub, pc, cycle)
    }

    /// Emit an event. Callers are expected to have checked
    /// [`enabled`](Self::enabled) first (the `trace_event!` macro does).
    pub fn emit(&self, sub: Subsystem, pc: u64, cycle: u64, kind: EventKind) {
        self.sink.borrow_mut().emit(&TraceEvent {
            cycle,
            pc,
            sub,
            kind,
        });
    }

    /// Flush the sink (buffered sinks write their document here).
    pub fn flush(&self) {
        self.sink.borrow_mut().flush();
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.sink.get_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[derive(Default)]
    struct Capture {
        events: Rc<RefCell<Vec<TraceEvent>>>,
        flushes: Rc<RefCell<u32>>,
    }

    impl Sink for Capture {
        fn emit(&mut self, ev: &TraceEvent) {
            self.events.borrow_mut().push(ev.clone());
        }
        fn flush(&mut self) {
            *self.flushes.borrow_mut() += 1;
        }
    }

    fn capture(filter: TraceFilter) -> (Tracer, Rc<RefCell<Vec<TraceEvent>>>) {
        let cap = Capture::default();
        let events = cap.events.clone();
        (Tracer::with_sink(filter, Box::new(cap)), events)
    }

    #[test]
    fn macro_is_lazy_and_filtered() {
        let mut f = TraceFilter::all();
        f.pc = Some(0x10);
        let (tracer, events) = capture(f);
        let tracer = Some(tracer);

        let built = std::cell::Cell::new(0u32);
        let payload = |v: u64| {
            built.set(built.get() + 1);
            EventKind::Commit { seq: v, value: v }
        };
        crate::trace_event!(tracer, Subsystem::Commit, 0x10, 1, payload(7));
        crate::trace_event!(tracer, Subsystem::Commit, 0x11, 2, payload(8)); // filtered: wrong pc
        assert_eq!(
            built.get(),
            1,
            "payload must only build when the filter matches"
        );
        assert_eq!(events.borrow().len(), 1);
        assert_eq!(events.borrow()[0].cycle, 1);

        let disabled: Option<Tracer> = None;
        crate::trace_event!(disabled, Subsystem::Commit, 0x10, 1, payload(9));
        assert_eq!(built.get(), 1, "disabled tracer must not build payloads");
    }

    #[test]
    fn resolve_precedence() {
        // CFIR_TRACE wins.
        let f = resolve(Some("pc=0x10"), true, true).unwrap().unwrap();
        assert_eq!(f.pc, Some(0x10));
        // CFIR_DEBUG next: everything.
        let f = resolve(None, true, true).unwrap().unwrap();
        assert_eq!(f, TraceFilter::all());
        // CFIR_CSTREAM alone: commit subsystem only.
        let f = resolve(None, false, true).unwrap().unwrap();
        assert!(f.matches(Subsystem::Commit, 0, 0));
        assert!(!f.matches(Subsystem::Vec, 0, 0));
        // Nothing set: tracing disabled.
        assert!(resolve(None, false, false).unwrap().is_none());
        // Malformed specs are loud.
        assert!(resolve(Some("sub=bogus"), false, false).is_err());
    }

    #[test]
    fn drop_flushes_sink() {
        let cap = Capture::default();
        let flushes = cap.flushes.clone();
        let tracer = Tracer::with_sink(TraceFilter::all(), Box::new(cap));
        tracer.emit(Subsystem::Vec, 0, 0, EventKind::Note { msg: "x".into() });
        drop(tracer);
        assert_eq!(*flushes.borrow(), 1);
    }
}
