//! Trace sinks: human text, JSONL, and Chrome `trace_event` JSON.
//!
//! All sinks serialize with the hand-rolled writer in [`crate::json`]
//! — no serde. The Chrome format is the legacy "JSON object with a
//! `traceEvents` array" flavor, which both `chrome://tracing` and
//! Perfetto open directly.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::{Subsystem, TraceEvent, NUM_SUBSYSTEMS};
use crate::json::JsonWriter;

/// Something that consumes trace events.
pub trait Sink {
    /// Consume one event.
    fn emit(&mut self, ev: &TraceEvent);
    /// Flush buffered output (end of run).
    fn flush(&mut self);
}

/// Human-readable lines on stderr:
/// `[cycle 123] vec pc=0x10 validate: ok (stride)`.
#[derive(Debug, Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn emit(&mut self, ev: &TraceEvent) {
        eprintln!(
            "[cycle {}] {} pc={:#x} {}: {}",
            ev.cycle,
            ev.sub.name(),
            ev.pc,
            ev.kind.name(),
            ev.kind.render()
        );
    }

    fn flush(&mut self) {}
}

fn event_line(ev: &TraceEvent) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_u64("cycle", ev.cycle)
        .field_u64("pc", ev.pc)
        .field_str("sub", ev.sub.name())
        .field_str("ev", ev.kind.name())
        .key("args");
    w.begin_obj();
    ev.kind.write_args(&mut w);
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// One JSON object per line.
pub struct JsonlSink {
    out: Box<dyn Write>,
}

impl JsonlSink {
    /// Write to a file at `path` (truncates).
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Box::new(std::io::BufWriter::new(f)),
        })
    }

    /// Write to any `Write` (tests).
    pub fn to_writer(out: Box<dyn Write>) -> Self {
        JsonlSink { out }
    }

    /// Serialize one event as its JSONL line (no trailing newline).
    pub fn line(ev: &TraceEvent) -> String {
        event_line(ev)
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, ev: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event_line(ev));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Chrome `trace_event` sink. Events are held in a bounded ring buffer
/// (oldest dropped first) and written as one JSON document on flush,
/// with a thread per subsystem so Perfetto lays tracks out nicely.
pub struct ChromeSink {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    out: Option<Box<dyn Write>>,
    path: String,
}

impl ChromeSink {
    /// Buffer up to `cap` events, writing `path` on flush.
    pub fn create(path: &str, cap: usize) -> Self {
        ChromeSink {
            ring: VecDeque::with_capacity(cap.min(1 << 20)),
            cap: cap.max(1),
            dropped: 0,
            out: None,
            path: path.to_string(),
        }
    }

    /// Buffer events and write to `out` on flush (tests).
    pub fn to_writer(out: Box<dyn Write>, cap: usize) -> Self {
        ChromeSink {
            ring: VecDeque::with_capacity(cap.min(1 << 20)),
            cap: cap.max(1),
            dropped: 0,
            out: Some(out),
            path: String::new(),
        }
    }

    /// Events dropped because the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the buffered events as a Chrome trace JSON document.
    pub fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj().key("traceEvents").begin_arr();
        // Thread-name metadata: one "thread" per subsystem.
        let all_subs = [
            Subsystem::Fetch,
            Subsystem::Dispatch,
            Subsystem::Issue,
            Subsystem::Exec,
            Subsystem::Commit,
            Subsystem::Vec,
            Subsystem::Lsq,
            Subsystem::Mem,
            Subsystem::Predict,
            Subsystem::Flush,
        ];
        debug_assert_eq!(all_subs.len(), NUM_SUBSYSTEMS);
        for sub in all_subs {
            w.begin_obj()
                .field_str("name", "thread_name")
                .field_str("ph", "M")
                .field_u64("pid", 0)
                .field_u64("tid", sub as u64)
                .key("args");
            w.begin_obj().field_str("name", sub.name()).end_obj();
            w.end_obj();
        }
        for ev in &self.ring {
            w.begin_obj()
                .field_str("name", ev.kind.name())
                .field_str("cat", ev.sub.name())
                .field_str("ph", "i")
                .field_u64("ts", ev.cycle)
                .field_u64("pid", 0)
                .field_u64("tid", ev.sub as u64)
                .field_str("s", "t")
                .key("args");
            w.begin_obj().field_u64("pc", ev.pc);
            ev.kind.write_args(&mut w);
            w.end_obj();
            w.end_obj();
        }
        w.end_arr()
            .field_str("displayTimeUnit", "ns")
            .field_u64("droppedEvents", self.dropped);
        w.end_obj();
        w.finish()
    }
}

impl Sink for ChromeSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev.clone());
    }

    fn flush(&mut self) {
        let doc = self.render();
        match self.out.as_mut() {
            Some(out) => {
                let _ = out.write_all(doc.as_bytes());
                let _ = out.flush();
            }
            None => {
                if let Err(e) = std::fs::write(&self.path, doc) {
                    eprintln!("cfir-obs: cannot write chrome trace {}: {e}", self.path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            pc: 0x10,
            sub: Subsystem::Vec,
            kind: EventKind::Validate {
                ok: true,
                reason: "stride",
            },
        }
    }

    #[test]
    fn jsonl_lines_parse() {
        let line = JsonlSink::line(&ev(42));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("sub").unwrap().as_str(), Some("vec"));
        assert_eq!(v.get("ev").unwrap().as_str(), Some("validate"));
        assert_eq!(
            v.get("args").unwrap().get("reason").unwrap().as_str(),
            Some("stride")
        );
    }

    #[test]
    fn chrome_document_parses_and_drops_oldest() {
        let mut s = ChromeSink::create("/dev/null", 4);
        for c in 0..10 {
            s.emit(&ev(c));
        }
        assert_eq!(s.dropped(), 6);
        let doc = s.render();
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 10 thread-name metadata records + 4 retained events.
        assert_eq!(evs.len(), NUM_SUBSYSTEMS + 4);
        let first_real = &evs[NUM_SUBSYSTEMS];
        assert_eq!(
            first_real.get("ts").unwrap().as_u64(),
            Some(6),
            "oldest retained is cycle 6"
        );
        assert_eq!(first_real.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(v.get("droppedEvents").unwrap().as_u64(), Some(6));
    }
}
