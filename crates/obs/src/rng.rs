//! Deterministic in-tree PRNG: splitmix64 seeding + xoshiro256**.
//!
//! Replaces the external `rand` crate so the workspace builds with no
//! network access. Workload generation only needs fast, well-mixed,
//! reproducible streams — xoshiro256** (Blackman/Vigna) passes BigCrush
//! and is four shifts and a multiply per draw.

/// splitmix64 step — used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator, seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the generator. Any seed (including 0) is fine: splitmix64
    /// expansion guarantees a non-zero xoshiro state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.bounded(hi - lo)
    }

    /// Uniform integer in `[lo, hi]` (inclusive upper bound).
    #[inline]
    pub fn gen_range_incl(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(span + 1)
    }

    /// Debiased bounded draw in `[0, n)` (Lemire-style rejection).
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection zone keeps the draw exactly uniform.
        let zone = n.wrapping_neg() % n; // (2^64 - n) mod n
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone || zone == 0 {
                return hi;
            }
        }
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng64::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
        for i in 0..50 {
            let v = r.gen_range_incl(0, i);
            assert!(v <= i);
        }
        assert_eq!(r.gen_range_incl(3, 3), 3);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Rng64::seed_from_u64(0xC0FFEE);
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            counts[r.gen_range(0, 16) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
