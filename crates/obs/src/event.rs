//! Typed trace events.
//!
//! Events carry structured payloads — no pre-formatted strings — so
//! sinks can render them as human text, JSONL, or Chrome
//! `trace_event` objects, and so building one costs nothing unless the
//! filter already matched.

use crate::json::JsonWriter;

/// Which part of the machine emitted an event. Doubles as the filter
/// dimension for `CFIR_TRACE sub=...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Subsystem {
    Fetch = 0,
    Dispatch,
    Issue,
    Exec,
    Commit,
    Vec,
    Lsq,
    Mem,
    Predict,
    Flush,
}

/// Number of subsystems.
pub const NUM_SUBSYSTEMS: usize = 10;

impl Subsystem {
    /// Stable lowercase name (filter syntax + JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Fetch => "fetch",
            Subsystem::Dispatch => "dispatch",
            Subsystem::Issue => "issue",
            Subsystem::Exec => "exec",
            Subsystem::Commit => "commit",
            Subsystem::Vec => "vec",
            Subsystem::Lsq => "lsq",
            Subsystem::Mem => "mem",
            Subsystem::Predict => "predict",
            Subsystem::Flush => "flush",
        }
    }

    /// Parse a subsystem name (as used in `CFIR_TRACE sub=`).
    pub fn parse(s: &str) -> Option<Subsystem> {
        Some(match s {
            "fetch" => Subsystem::Fetch,
            "dispatch" => Subsystem::Dispatch,
            "issue" => Subsystem::Issue,
            "exec" => Subsystem::Exec,
            "commit" => Subsystem::Commit,
            "vec" => Subsystem::Vec,
            "lsq" => Subsystem::Lsq,
            "mem" => Subsystem::Mem,
            "predict" => Subsystem::Predict,
            "flush" => Subsystem::Flush,
            _ => return None,
        })
    }

    /// Bit in the filter's subsystem mask.
    #[inline]
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// What happened. Payloads are small and typed; the free-form `Note`
/// variant carries already-built strings from lazy call sites.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A strided load was turned into a vector seed.
    Vectorize {
        kind: &'static str,
        base: u64,
        stride: i64,
        count: u32,
    },
    /// A replica's prediction was checked at decode/commit.
    Validate { ok: bool, reason: &'static str },
    /// SRSMT entries were torn down.
    Teardown { reason: &'static str, entries: u32 },
    /// The pipeline flushed to repair mis-speculation.
    RepairFlush { resume_pc: u64, squashed: u64 },
    /// Wrong-path instructions squashed on a branch redirect.
    Squash { resume_pc: u64, squashed: u64 },
    /// A data-cache access missed.
    CacheMiss { addr: u64, latency: u32 },
    /// A replica value was reused at commit.
    Reuse { value: u64, waited: u64 },
    /// An instruction committed (folds the old `CFIR_CSTREAM` dump).
    Commit { seq: u64, value: u64 },
    /// Free-form message (payload built lazily at the call site).
    Note { msg: String },
}

impl EventKind {
    /// Short stable name (Chrome trace `name`, JSONL `ev`).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Vectorize { .. } => "vectorize",
            EventKind::Validate { .. } => "validate",
            EventKind::Teardown { .. } => "teardown",
            EventKind::RepairFlush { .. } => "repair_flush",
            EventKind::Squash { .. } => "squash",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::Reuse { .. } => "reuse",
            EventKind::Commit { .. } => "commit",
            EventKind::Note { .. } => "note",
        }
    }

    /// Write the payload fields into an open JSON object.
    pub fn write_args(&self, w: &mut JsonWriter) {
        match self {
            EventKind::Vectorize {
                kind,
                base,
                stride,
                count,
            } => {
                w.field_str("kind", kind)
                    .field_u64("base", *base)
                    .key("stride")
                    .i64_val(*stride)
                    .field_u64("count", *count as u64);
            }
            EventKind::Validate { ok, reason } => {
                w.field_bool("ok", *ok).field_str("reason", reason);
            }
            EventKind::Teardown { reason, entries } => {
                w.field_str("reason", reason)
                    .field_u64("entries", *entries as u64);
            }
            EventKind::RepairFlush {
                resume_pc,
                squashed,
            } => {
                w.field_u64("resume_pc", *resume_pc)
                    .field_u64("squashed", *squashed);
            }
            EventKind::Squash {
                resume_pc,
                squashed,
            } => {
                w.field_u64("resume_pc", *resume_pc)
                    .field_u64("squashed", *squashed);
            }
            EventKind::CacheMiss { addr, latency } => {
                w.field_u64("addr", *addr)
                    .field_u64("latency", *latency as u64);
            }
            EventKind::Reuse { value, waited } => {
                w.field_u64("value", *value).field_u64("waited", *waited);
            }
            EventKind::Commit { seq, value } => {
                w.field_u64("seq", *seq).field_u64("value", *value);
            }
            EventKind::Note { msg } => {
                w.field_str("msg", msg);
            }
        }
    }

    /// Human rendering of the payload.
    pub fn render(&self) -> String {
        match self {
            EventKind::Vectorize {
                kind,
                base,
                stride,
                count,
            } => {
                format!("{kind} base={base:#x} stride={stride} count={count}")
            }
            EventKind::Validate { ok, reason } => {
                format!("{} ({reason})", if *ok { "ok" } else { "FAIL" })
            }
            EventKind::Teardown { reason, entries } => format!("{reason} entries={entries}"),
            EventKind::RepairFlush {
                resume_pc,
                squashed,
            } => {
                format!("resume={resume_pc:#x} squashed={squashed}")
            }
            EventKind::Squash {
                resume_pc,
                squashed,
            } => {
                format!("resume={resume_pc:#x} squashed={squashed}")
            }
            EventKind::CacheMiss { addr, latency } => format!("addr={addr:#x} lat={latency}"),
            EventKind::Reuse { value, waited } => format!("value={value:#x} waited={waited}"),
            EventKind::Commit { seq, value } => format!("seq={seq} value={value:#x}"),
            EventKind::Note { msg } => msg.clone(),
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation cycle the event happened on.
    pub cycle: u64,
    /// Program counter of the instruction involved (0 if none).
    pub pc: u64,
    /// Emitting subsystem.
    pub sub: Subsystem,
    /// Payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn subsystem_names_round_trip() {
        for i in 0..NUM_SUBSYSTEMS as u16 {
            // Safety net: parse(name) is the identity for every variant.
            let all = [
                Subsystem::Fetch,
                Subsystem::Dispatch,
                Subsystem::Issue,
                Subsystem::Exec,
                Subsystem::Commit,
                Subsystem::Vec,
                Subsystem::Lsq,
                Subsystem::Mem,
                Subsystem::Predict,
                Subsystem::Flush,
            ];
            let s = all[i as usize];
            assert_eq!(Subsystem::parse(s.name()), Some(s));
            assert_eq!(s.bit().count_ones(), 1);
        }
        assert_eq!(Subsystem::parse("bogus"), None);
    }

    #[test]
    fn args_are_valid_json() {
        let kinds = [
            EventKind::Vectorize {
                kind: "load",
                base: 0x1000,
                stride: -8,
                count: 4,
            },
            EventKind::Validate {
                ok: false,
                reason: "stride_mismatch",
            },
            EventKind::Note {
                msg: "hello \"world\"".into(),
            },
        ];
        for k in kinds {
            let mut w = JsonWriter::new();
            w.begin_obj();
            k.write_args(&mut w);
            w.end_obj();
            let text = w.finish();
            json::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }
}
