//! Natural-loop detection and per-block nesting depth.
//!
//! A *back edge* is a CFG edge `s -> h` where `h` dominates `s`; its
//! natural loop is `h` plus every block that can reach `s` without
//! passing through `h`. Back edges sharing a header are merged into one
//! loop (standard practice for compiler-style loop forests).

use crate::cfg::Cfg;
use crate::dom::DomTree;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Header block id (the target of the back edge(s)).
    pub header: usize,
    /// All member block ids, including the header, sorted.
    pub body: Vec<usize>,
}

/// Loop forest plus per-block nesting depth.
#[derive(Debug, Clone, Default)]
pub struct LoopInfo {
    /// Detected loops, one per distinct header, sorted by header id.
    pub loops: Vec<Loop>,
    /// Nesting depth per block (0 = not in any loop).
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// Find natural loops of `cfg` using its dominator tree `dom`
    /// (rooted at the entry block). Edges into the virtual exit are
    /// never back edges.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopInfo {
        let n = cfg.len();
        let mut depth = vec![0u32; n];
        let mut loops: Vec<Loop> = Vec::new();
        // Collect back-edge latches per header.
        let mut latches: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for &s in &blk.succs {
                if s != cfg.exit && dom.reachable(b) && dom.dominates(s, b) {
                    latches[s].push(b);
                }
            }
        }
        for header in 0..n {
            if latches[header].is_empty() {
                continue;
            }
            // Natural loop: walk predecessors backwards from each latch,
            // stopping at the header.
            let mut in_loop = vec![false; n];
            in_loop[header] = true;
            let mut stack: Vec<usize> = Vec::new();
            for &l in &latches[header] {
                if !in_loop[l] {
                    in_loop[l] = true;
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &cfg.blocks[b].preds {
                    if !in_loop[p] {
                        in_loop[p] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<usize> = (0..n).filter(|&b| in_loop[b]).collect();
            for &b in &body {
                depth[b] += 1;
            }
            loops.push(Loop { header, body });
        }
        LoopInfo { loops, depth }
    }

    /// Nesting depth of block `b` (0 when outside every loop, or when
    /// `b` is the virtual exit).
    pub fn depth_of(&self, b: usize) -> u32 {
        self.depth.get(b).copied().unwrap_or(0)
    }

    /// Maximum nesting depth over all blocks.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn loops_of(src: &str) -> (Cfg, LoopInfo) {
        let p = assemble("t", src).unwrap();
        let cfg = Cfg::build(&p);
        let dom = DomTree::compute(&cfg.succ_adj(), 0);
        let li = LoopInfo::compute(&cfg, &dom);
        (cfg, li)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, li) = loops_of("nop\nnop\nhalt");
        assert!(li.loops.is_empty());
        assert_eq!(li.max_depth(), 0);
    }

    #[test]
    fn single_counted_loop() {
        let (cfg, li) = loops_of(
            r#"
            li r1, 0        ; 0
        loop:
            addi r1, r1, 1  ; 1
            blt r1, r2, loop; 2
            halt            ; 3
            "#,
        );
        assert_eq!(li.loops.len(), 1);
        let header = cfg.block_of[1];
        assert_eq!(li.loops[0].header, header);
        assert_eq!(li.depth_of(header), 1);
        assert_eq!(li.depth_of(cfg.block_of[0]), 0);
        assert_eq!(li.depth_of(cfg.block_of[3]), 0);
    }

    #[test]
    fn nested_loops_stack_depth() {
        let (cfg, li) = loops_of(
            r#"
            li r1, 0          ; 0
        outer:
            li r2, 0          ; 1
        inner:
            addi r2, r2, 1    ; 2
            blt r2, r4, inner ; 3
            addi r1, r1, 1    ; 4
            blt r1, r5, outer ; 5
            halt              ; 6
            "#,
        );
        assert_eq!(li.loops.len(), 2);
        assert_eq!(li.depth_of(cfg.block_of[2]), 2, "inner body depth 2");
        assert_eq!(li.depth_of(cfg.block_of[1]), 1, "outer header depth 1");
        assert_eq!(li.max_depth(), 2);
    }

    #[test]
    fn loop_with_break_keeps_exit_outside() {
        let (cfg, li) = loops_of(
            r#"
            li r1, 0          ; 0
        loop:
            beq r3, r0, out   ; 1  break
            addi r1, r1, 1    ; 2
            blt r1, r2, loop  ; 3
        out:
            halt              ; 4
            "#,
        );
        assert_eq!(li.loops.len(), 1);
        assert_eq!(li.depth_of(cfg.block_of[1]), 1);
        assert_eq!(li.depth_of(cfg.block_of[2]), 1);
        assert_eq!(li.depth_of(cfg.block_of[4]), 0, "break target not in loop");
    }
}
