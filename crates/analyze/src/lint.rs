//! Workload lint pass: structural problems in synthetic kernels that
//! would silently skew simulator results.
//!
//! Five checks:
//!
//! * **TargetOutOfRange** — a direct branch/jump whose target is not a
//!   valid instruction index (mirrors `Program::validate`, but reported
//!   per-site with context).
//! * **FallthroughOffEnd** — execution can run past the last
//!   instruction (a path with no terminating `halt`).
//! * **UnreachableBlock** — a basic block no path from the entry
//!   reaches (dead code inflates static footprints; for `jr` programs
//!   indirect targets are resolved first, so jump-table handlers do
//!   not trip this).
//! * **ReadBeforeWrite** — a register read on some path before any
//!   instruction wrote it: the entry pseudo-def of the register (see
//!   [`crate::dataflow`]) reaches the read. `r0` is architecturally
//!   zero and exempt.
//! * **DeadStore** — a register def that reaches no use and is killed
//!   on every path before the program exits: the instruction's result
//!   can never be observed.

use crate::cfg::Cfg;
use crate::dataflow::Dataflow;
use cfir_isa::Program;

/// Kind of problem a lint found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Direct control transfer to a PC outside the program.
    TargetOutOfRange,
    /// Execution can fall past the last instruction.
    FallthroughOffEnd,
    /// Block unreachable from the entry.
    UnreachableBlock,
    /// Register read before any write on some path.
    ReadBeforeWrite,
    /// Register def that no path can ever observe.
    DeadStore,
}

impl LintKind {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::TargetOutOfRange => "target_out_of_range",
            LintKind::FallthroughOffEnd => "fallthrough_off_end",
            LintKind::UnreachableBlock => "unreachable_block",
            LintKind::ReadBeforeWrite => "read_before_write",
            LintKind::DeadStore => "dead_store",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// What went wrong.
    pub kind: LintKind,
    /// Word PC the finding anchors to.
    pub pc: u32,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] pc {}: {}", self.kind.name(), self.pc, self.detail)
    }
}

/// Run all lint checks over `prog` with its `cfg` and solved
/// dataflow facts.
pub fn lint(prog: &Program, cfg: &Cfg, df: &Dataflow) -> Vec<Lint> {
    let mut out = Vec::new();
    let n = prog.len();
    // Out-of-range direct targets.
    for (pc, inst) in prog.insts.iter().enumerate() {
        if let Some(t) = inst.static_target() {
            if (t as usize) >= n {
                out.push(Lint {
                    kind: LintKind::TargetOutOfRange,
                    pc: pc as u32,
                    detail: format!("target {t} outside program of {n} instructions"),
                });
            }
        }
    }
    // Fallthrough off the end / unreachable blocks.
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if blk.falls_off_end && cfg.reachable[b] {
            out.push(Lint {
                kind: LintKind::FallthroughOffEnd,
                pc: blk.end - 1,
                detail: "execution can run past the last instruction (missing halt?)".to_string(),
            });
        }
        if !cfg.reachable[b] {
            out.push(Lint {
                kind: LintKind::UnreachableBlock,
                pc: blk.start,
                detail: format!("block [{}, {}) unreachable from entry", blk.start, blk.end),
            });
        }
    }
    out.extend(read_before_write(prog, cfg, df));
    out.extend(dead_stores(cfg, df));
    out.sort_by_key(|l| (l.pc, l.kind.name()));
    out
}

/// Read-before-write on top of reaching definitions: a read of `r` at
/// `pc` is flagged when the *entry pseudo-def* of `r` reaches it —
/// i.e. some path from the entry arrives at the read without ever
/// writing `r`. Reports each offending `(pc, reg)` pair once.
fn read_before_write(prog: &Program, cfg: &Cfg, df: &Dataflow) -> Vec<Lint> {
    let mut lints = Vec::new();
    for b in 0..cfg.len() {
        if !cfg.reachable[b] {
            continue;
        }
        for pc in cfg.blocks[b].pcs() {
            let inst = prog.insts[pc as usize];
            let mut srcs: Vec<u8> = inst.sources().into_iter().flatten().collect();
            srcs.dedup();
            for src in srcs {
                if src == 0 {
                    continue;
                }
                if df
                    .reaching_defs(pc, src)
                    .iter()
                    .any(|&i| df.is_entry_def(i))
                {
                    lints.push(Lint {
                        kind: LintKind::ReadBeforeWrite,
                        pc,
                        detail: format!("r{src} read before any write reaches it"),
                    });
                }
            }
        }
    }
    lints
}

/// Dead-store detection on the def-use chains: a real def that reaches
/// no use *and* does not survive to the program exit is overwritten on
/// every path before anyone could read it.
fn dead_stores(cfg: &Cfg, df: &Dataflow) -> Vec<Lint> {
    let mut lints = Vec::new();
    for b in 0..cfg.len() {
        if !cfg.reachable[b] {
            continue;
        }
        for pc in cfg.blocks[b].pcs() {
            let Some(id) = df.def_at(pc) else { continue };
            if df.uses_of(id).is_empty() && !df.reaches_exit(id) {
                let reg = df.defs[id as usize].reg;
                lints.push(Lint {
                    kind: LintKind::DeadStore,
                    pc,
                    detail: format!(
                        "r{reg} written here is overwritten on every path before any read"
                    ),
                });
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn lints_of(src: &str) -> Vec<Lint> {
        let p = assemble("t", src).unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::compute(&p, &cfg);
        lint(&p, &cfg, &df)
    }

    fn kinds(ls: &[Lint]) -> Vec<LintKind> {
        ls.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_program_has_no_lints() {
        let ls = lints_of(
            r#"
            li r1, 0
        loop:
            addi r1, r1, 1
            blt r1, r0, loop
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn missing_halt_flagged() {
        let ls = lints_of("li r1, 1\naddi r1, r1, 1");
        assert_eq!(kinds(&ls), vec![LintKind::FallthroughOffEnd]);
        assert_eq!(ls[0].pc, 1);
    }

    #[test]
    fn dead_code_flagged() {
        let ls = lints_of("jmp 2\nnop\nhalt");
        assert_eq!(kinds(&ls), vec![LintKind::UnreachableBlock]);
        assert_eq!(ls[0].pc, 1);
    }

    #[test]
    fn read_before_write_flagged_once() {
        let ls = lints_of("add r2, r1, r1\nadd r3, r1, r0\nhalt");
        // r1 never written: flagged at both reading pcs, but each
        // (pc, reg) once.
        assert_eq!(
            kinds(&ls),
            vec![LintKind::ReadBeforeWrite, LintKind::ReadBeforeWrite]
        );
        assert_eq!(ls[0].pc, 0);
        assert_eq!(ls[1].pc, 1);
    }

    #[test]
    fn write_on_one_path_only_still_flagged() {
        let ls = lints_of(
            r#"
            beq r0, r0, skip ; 0
            li r1, 5         ; 1  writes r1 on fallthrough only
        skip:
            add r2, r1, r0   ; 2  r1 not surely written here
            halt
            "#,
        );
        assert_eq!(kinds(&ls), vec![LintKind::ReadBeforeWrite]);
        assert_eq!(ls[0].pc, 2);
    }

    #[test]
    fn write_on_every_path_is_clean() {
        let ls = lints_of(
            r#"
            beq r0, r0, other ; 0
            li r1, 5          ; 1
            jmp join          ; 2
        other:
            li r1, 7          ; 3
        join:
            add r2, r1, r0    ; 4
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn r0_reads_are_exempt() {
        let ls = lints_of("add r1, r0, r0\nhalt");
        assert!(ls.is_empty());
    }

    #[test]
    fn loop_carried_write_is_clean() {
        // r1 written before the loop, incremented inside: the back edge
        // must not lose the definition.
        let ls = lints_of(
            r#"
            li r1, 0
            li r2, 4
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn out_of_range_target_flagged() {
        use cfir_isa::{Cond, Inst, Program};
        let p = Program::from_insts(
            "t",
            vec![
                Inst::Br {
                    cond: Cond::Eq,
                    rs1: 0,
                    rs2: 0,
                    target: 40,
                },
                Inst::Halt,
            ],
        );
        let cfg = Cfg::build(&p);
        let df = Dataflow::compute(&p, &cfg);
        let ls = lint(&p, &cfg, &df);
        assert_eq!(kinds(&ls), vec![LintKind::TargetOutOfRange]);
    }

    #[test]
    fn dead_store_overwritten_on_every_path_flagged() {
        let ls = lints_of(
            r#"
            li r1, 1          ; 0  dead: overwritten at 1 and 3
            beq r9, r0, other ; .. (r9 rbw is separate)
            li r1, 5
            jmp join
        other:
            li r1, 7
        join:
            add r2, r1, r0
            halt
            "#,
        );
        let dead: Vec<&Lint> = ls
            .iter()
            .filter(|l| l.kind == LintKind::DeadStore)
            .collect();
        assert_eq!(dead.len(), 1, "only the first li is dead: {ls:?}");
        assert_eq!(dead[0].pc, 0);
    }

    #[test]
    fn def_surviving_to_exit_is_not_a_dead_store() {
        // r1's final value reaches the exit unread — an output value,
        // not a dead store.
        let ls = lints_of("li r1, 1\nhalt");
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn dead_store_killed_in_same_block_flagged() {
        let ls = lints_of("li r1, 1\nli r1, 2\nadd r2, r1, r0\nhalt");
        assert_eq!(kinds(&ls), vec![LintKind::DeadStore]);
        assert_eq!(ls[0].pc, 0);
    }

    #[test]
    fn loop_carried_accumulator_is_not_a_dead_store() {
        // The accumulator's def reaches its own use via the back edge.
        let ls = lints_of(
            r#"
            li r1, 0
            li r2, 4
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }
}
