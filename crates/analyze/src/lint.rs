//! Workload lint pass: structural problems in synthetic kernels that
//! would silently skew simulator results.
//!
//! Four checks:
//!
//! * **TargetOutOfRange** — a direct branch/jump whose target is not a
//!   valid instruction index (mirrors `Program::validate`, but reported
//!   per-site with context).
//! * **FallthroughOffEnd** — execution can run past the last
//!   instruction (a path with no terminating `halt`).
//! * **UnreachableBlock** — a basic block no path from the entry
//!   reaches (dead code inflates static footprints; for `jr` programs
//!   indirect targets are resolved first, so jump-table handlers do
//!   not trip this).
//! * **ReadBeforeWrite** — a register read on some path before any
//!   instruction wrote it. Found with a definite-assignment dataflow:
//!   a register is *surely written* at a block entry only if it is
//!   surely written at the exit of **every** predecessor. `r0` is
//!   architecturally zero and exempt.

use crate::cfg::Cfg;
use cfir_isa::{Program, NUM_LOGICAL_REGS};

/// Kind of problem a lint found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Direct control transfer to a PC outside the program.
    TargetOutOfRange,
    /// Execution can fall past the last instruction.
    FallthroughOffEnd,
    /// Block unreachable from the entry.
    UnreachableBlock,
    /// Register read before any write on some path.
    ReadBeforeWrite,
}

impl LintKind {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::TargetOutOfRange => "target_out_of_range",
            LintKind::FallthroughOffEnd => "fallthrough_off_end",
            LintKind::UnreachableBlock => "unreachable_block",
            LintKind::ReadBeforeWrite => "read_before_write",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// What went wrong.
    pub kind: LintKind,
    /// Word PC the finding anchors to.
    pub pc: u32,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] pc {}: {}", self.kind.name(), self.pc, self.detail)
    }
}

/// Run all lint checks over `prog` with its `cfg`.
pub fn lint(prog: &Program, cfg: &Cfg) -> Vec<Lint> {
    let mut out = Vec::new();
    let n = prog.len();
    // Out-of-range direct targets.
    for (pc, inst) in prog.insts.iter().enumerate() {
        if let Some(t) = inst.static_target() {
            if (t as usize) >= n {
                out.push(Lint {
                    kind: LintKind::TargetOutOfRange,
                    pc: pc as u32,
                    detail: format!("target {t} outside program of {n} instructions"),
                });
            }
        }
    }
    // Fallthrough off the end / unreachable blocks.
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if blk.falls_off_end && cfg.reachable[b] {
            out.push(Lint {
                kind: LintKind::FallthroughOffEnd,
                pc: blk.end - 1,
                detail: "execution can run past the last instruction (missing halt?)".to_string(),
            });
        }
        if !cfg.reachable[b] {
            out.push(Lint {
                kind: LintKind::UnreachableBlock,
                pc: blk.start,
                detail: format!("block [{}, {}) unreachable from entry", blk.start, blk.end),
            });
        }
    }
    out.extend(read_before_write(prog, cfg));
    out.sort_by_key(|l| (l.pc, l.kind.name()));
    out
}

/// Definite-assignment dataflow over registers, as `u64` bitmasks
/// (NUM_LOGICAL_REGS ≤ 64). `IN[b] = ∩ OUT[pred]`; entry starts with
/// only `r0` surely written. Reports the first offending read per
/// `(pc, reg)` pair.
fn read_before_write(prog: &Program, cfg: &Cfg) -> Vec<Lint> {
    let nb = cfg.len();
    if nb == 0 {
        return Vec::new();
    }
    const _: () = assert!(
        NUM_LOGICAL_REGS <= 64,
        "bitmask dataflow assumes <= 64 regs"
    );
    let gen_of = |b: usize| -> u64 {
        let mut w = 0u64;
        for pc in cfg.blocks[b].pcs() {
            if let Some(rd) = prog.insts[pc as usize].dest() {
                w |= 1u64 << rd;
            }
        }
        w
    };
    let gens: Vec<u64> = (0..nb).map(gen_of).collect();
    // IN[entry] = {r0} always — execution starts there with nothing
    // else written, whatever back edges exist. IN[b] = ∩ OUT[pred]
    // over reachable preds; OUT starts at "everything written" so the
    // intersection converges downwards.
    let in_mask_of = |b: usize, out_mask: &[u64]| -> u64 {
        if b == 0 {
            return 1u64;
        }
        let mut m = u64::MAX;
        for &p in &cfg.blocks[b].preds {
            if cfg.reachable[p] {
                m &= out_mask[p];
            }
        }
        m
    };
    let mut out_mask = vec![u64::MAX; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.reachable[b] {
                continue;
            }
            let new_out = in_mask_of(b, &out_mask) | gens[b];
            if new_out != out_mask[b] {
                out_mask[b] = new_out;
                changed = true;
            }
        }
    }
    // Second pass: walk each reachable block with its IN mask and flag
    // reads of not-surely-written registers.
    let mut lints = Vec::new();
    let mut seen: Vec<(u32, u8)> = Vec::new();
    for b in 0..nb {
        if !cfg.reachable[b] {
            continue;
        }
        let mut written = in_mask_of(b, &out_mask);
        for pc in cfg.blocks[b].pcs() {
            let inst = prog.insts[pc as usize];
            for src in inst.sources().into_iter().flatten() {
                if src != 0 && written & (1u64 << src) == 0 && !seen.contains(&(pc, src)) {
                    seen.push((pc, src));
                    lints.push(Lint {
                        kind: LintKind::ReadBeforeWrite,
                        pc,
                        detail: format!("r{src} read before any write reaches it"),
                    });
                }
            }
            if let Some(rd) = inst.dest() {
                written |= 1u64 << rd;
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn lints_of(src: &str) -> Vec<Lint> {
        let p = assemble("t", src).unwrap();
        let cfg = Cfg::build(&p);
        lint(&p, &cfg)
    }

    fn kinds(ls: &[Lint]) -> Vec<LintKind> {
        ls.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_program_has_no_lints() {
        let ls = lints_of(
            r#"
            li r1, 0
        loop:
            addi r1, r1, 1
            blt r1, r0, loop
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn missing_halt_flagged() {
        let ls = lints_of("li r1, 1\naddi r1, r1, 1");
        assert_eq!(kinds(&ls), vec![LintKind::FallthroughOffEnd]);
        assert_eq!(ls[0].pc, 1);
    }

    #[test]
    fn dead_code_flagged() {
        let ls = lints_of("jmp 2\nnop\nhalt");
        assert_eq!(kinds(&ls), vec![LintKind::UnreachableBlock]);
        assert_eq!(ls[0].pc, 1);
    }

    #[test]
    fn read_before_write_flagged_once() {
        let ls = lints_of("add r2, r1, r1\nadd r3, r1, r0\nhalt");
        // r1 never written: flagged at both reading pcs, but each
        // (pc, reg) once.
        assert_eq!(
            kinds(&ls),
            vec![LintKind::ReadBeforeWrite, LintKind::ReadBeforeWrite]
        );
        assert_eq!(ls[0].pc, 0);
        assert_eq!(ls[1].pc, 1);
    }

    #[test]
    fn write_on_one_path_only_still_flagged() {
        let ls = lints_of(
            r#"
            beq r0, r0, skip ; 0
            li r1, 5         ; 1  writes r1 on fallthrough only
        skip:
            add r2, r1, r0   ; 2  r1 not surely written here
            halt
            "#,
        );
        assert_eq!(kinds(&ls), vec![LintKind::ReadBeforeWrite]);
        assert_eq!(ls[0].pc, 2);
    }

    #[test]
    fn write_on_every_path_is_clean() {
        let ls = lints_of(
            r#"
            beq r0, r0, other ; 0
            li r1, 5          ; 1
            jmp join          ; 2
        other:
            li r1, 7          ; 3
        join:
            add r2, r1, r0    ; 4
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn r0_reads_are_exempt() {
        let ls = lints_of("add r1, r0, r0\nhalt");
        assert!(ls.is_empty());
    }

    #[test]
    fn loop_carried_write_is_clean() {
        // r1 written before the loop, incremented inside: the back edge
        // must not lose the definition.
        let ls = lints_of(
            r#"
            li r1, 0
            li r2, 4
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
            "#,
        );
        assert!(ls.is_empty(), "unexpected lints: {ls:?}");
    }

    #[test]
    fn out_of_range_target_flagged() {
        use cfir_isa::{Cond, Inst, Program};
        let p = Program::from_insts(
            "t",
            vec![
                Inst::Br {
                    cond: Cond::Eq,
                    rs1: 0,
                    rs2: 0,
                    target: 40,
                },
                Inst::Halt,
            ],
        );
        let cfg = Cfg::build(&p);
        let ls = lint(&p, &cfg);
        assert_eq!(kinds(&ls), vec![LintKind::TargetOutOfRange]);
    }
}
