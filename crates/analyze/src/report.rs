//! JSON reports and the static-vs-dynamic agreement metric.
//!
//! The per-kernel report follows the snapshot conventions of the
//! simulator (`schema_version` first, flat keys, no nulls — optional
//! values are simply omitted). [`ANALYZE_SCHEMA_VERSION`] versions the
//! *analyzer* report format independently of the simulator snapshots.

use crate::branches::BranchInfo;
use crate::strides::LoadClass;
use crate::Analysis;
use cfir_isa::Program;
use cfir_obs::json::JsonWriter;

/// Version of the analyzer report schema. Bump on breaking changes.
///
/// * v1 — CFG/loop/stride facts, per-branch RCPs, the RCP agreement
///   metric, lints.
/// * v2 — additive: per-branch CIDI classification (`cidi_fraction`,
///   `n_cidi`/`n_cidd`/`n_clobbered`, `cidi_verdicts`) and the
///   kernel-level `cidi` summary object.
pub const ANALYZE_SCHEMA_VERSION: u32 = 2;

/// One static-vs-dynamic reconvergence disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Word PC of the branch.
    pub pc: u32,
    /// Static (post-dominator) reconvergence PC, if any.
    pub static_rcp: Option<u32>,
    /// Dynamic heuristic estimate (`cfir_core::rcp::estimate`).
    pub estimate: Option<u32>,
    /// Hammock class name of the branch.
    pub class: &'static str,
}

/// Agreement between the dynamic heuristic and the static oracle.
#[derive(Debug, Clone, Default)]
pub struct Agreement {
    /// Hammock-class branches compared (the shapes the heuristic targets).
    pub hammock_checked: u64,
    /// ... of which the heuristic matched the static RCP exactly.
    pub hammock_agree: u64,
    /// All conditional branches with a static in-program RCP.
    pub all_checked: u64,
    /// ... of which the heuristic matched.
    pub all_agree: u64,
    /// Every disagreement, enumerated (hammock or not).
    pub divergences: Vec<Divergence>,
}

impl Agreement {
    /// Compare `cfir_core::rcp::estimate` against the static truth for
    /// every conditional branch of `prog`.
    pub fn compute(prog: &Program, branches: &[BranchInfo]) -> Agreement {
        let mut a = Agreement::default();
        for b in branches {
            let est = cfir_core::rcp::estimate(prog, b.pc);
            let matched = est == b.rcp;
            if b.rcp.is_some() {
                a.all_checked += 1;
                if matched {
                    a.all_agree += 1;
                }
            }
            if b.class.is_hammock() {
                a.hammock_checked += 1;
                if matched {
                    a.hammock_agree += 1;
                }
            }
            if !matched {
                a.divergences.push(Divergence {
                    pc: b.pc,
                    static_rcp: b.rcp,
                    estimate: est,
                    class: b.class.name(),
                });
            }
        }
        a
    }

    /// Agreement fraction on hammock-class branches (1.0 when there are
    /// none to check).
    pub fn hammock_fraction(&self) -> f64 {
        if self.hammock_checked == 0 {
            1.0
        } else {
            self.hammock_agree as f64 / self.hammock_checked as f64
        }
    }

    /// Agreement fraction over all branches with a static RCP.
    pub fn all_fraction(&self) -> f64 {
        if self.all_checked == 0 {
            1.0
        } else {
            self.all_agree as f64 / self.all_checked as f64
        }
    }
}

/// Write the report *object* for one analyzed program into `w` (the
/// caller owns the surrounding document).
pub fn write_report(prog: &Program, a: &Analysis, w: &mut JsonWriter) {
    let agreement = Agreement::compute(prog, &a.branches);
    w.begin_obj();
    w.field_str("name", &prog.name);
    w.field_u64("n_insts", prog.len() as u64);
    w.field_u64("n_blocks", a.cfg.len() as u64);
    w.field_u64("n_edges", a.cfg.n_edges as u64);
    w.field_u64("n_loops", a.loops.loops.len() as u64);
    w.field_u64("max_loop_depth", a.loops.max_depth() as u64);
    w.field_bool("indirect_fallback_all", a.cfg.indirect_fallback_all);
    w.field_u64("n_indirect_targets", a.cfg.indirect_targets.len() as u64);
    let (mut fixed, mut strided, mut irregular) = (0u64, 0u64, 0u64);
    for &(_, lc) in &a.strides.loads {
        match lc {
            LoadClass::Fixed => fixed += 1,
            LoadClass::Strided => strided += 1,
            LoadClass::Irregular => irregular += 1,
        }
    }
    w.key("loads").begin_obj();
    w.field_u64("fixed", fixed);
    w.field_u64("strided", strided);
    w.field_u64("irregular", irregular);
    w.end_obj();
    w.key("branches").begin_arr();
    for b in &a.branches {
        write_branch(b, prog, a, w);
    }
    w.end_arr();
    w.key("cidi").begin_obj();
    w.field_u64("horizon", a.cidi.horizon as u64);
    w.field_u64("branches_classified", a.cidi.branches.len() as u64);
    w.field_f64("mean_cidi_fraction", a.cidi.mean_cidi_fraction());
    w.end_obj();
    w.key("agreement").begin_obj();
    w.field_u64("hammock_checked", agreement.hammock_checked);
    w.field_u64("hammock_agree", agreement.hammock_agree);
    w.field_f64("hammock_fraction", agreement.hammock_fraction());
    w.field_u64("all_checked", agreement.all_checked);
    w.field_u64("all_agree", agreement.all_agree);
    w.field_f64("all_fraction", agreement.all_fraction());
    w.key("divergences").begin_arr();
    for d in &agreement.divergences {
        w.begin_obj();
        w.field_u64("pc", d.pc as u64);
        w.field_str("class", d.class);
        if let Some(s) = d.static_rcp {
            w.field_u64("static_rcp", s as u64);
        }
        if let Some(e) = d.estimate {
            w.field_u64("estimate", e as u64);
        }
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.key("lints").begin_arr();
    for l in &a.lints {
        w.begin_obj();
        w.field_str("kind", l.kind.name());
        w.field_u64("pc", l.pc as u64);
        w.field_str("detail", &l.detail);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
}

fn write_branch(b: &BranchInfo, prog: &Program, a: &Analysis, w: &mut JsonWriter) {
    w.begin_obj();
    w.field_u64("pc", b.pc as u64);
    w.field_u64("target", b.target as u64);
    w.field_str("class", b.class.name());
    if let Some(r) = b.rcp {
        w.field_u64("rcp", r as u64);
    }
    if let Some(e) = cfir_core::rcp::estimate(prog, b.pc) {
        w.field_u64("rcp_estimate", e as u64);
    }
    w.field_u64("loop_depth", b.loop_depth as u64);
    w.field_u64("ci_region_len", b.ci_region_len as u64);
    w.field_u64("ci_loads", b.ci_loads as u64);
    w.field_u64("ci_strided_loads", b.ci_strided_loads as u64);
    if let Some(c) = a.cidi.for_branch(b.pc) {
        w.field_f64("cidi_fraction", c.cidi_fraction());
        w.field_u64("n_cidi", c.n_cidi as u64);
        w.field_u64("n_cidd", c.n_cidd as u64);
        w.field_u64("n_clobbered", c.n_clobbered as u64);
        w.key("cidi_verdicts").begin_arr();
        for v in &c.verdicts {
            w.begin_obj();
            w.field_u64("pc", v.pc as u64);
            w.field_str("verdict", v.verdict.name());
            w.end_obj();
        }
        w.end_arr();
    }
    w.end_obj();
}

/// Standalone single-kernel report document.
pub fn report_json(prog: &Program, a: &Analysis) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_u64("schema_version", ANALYZE_SCHEMA_VERSION as u64);
    w.key("kernels").begin_arr();
    write_report(prog, a, &mut w);
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use cfir_isa::assemble;
    use cfir_obs::json;

    #[test]
    fn report_parses_and_has_expected_fields() {
        let p = assemble(
            "t",
            r#"
            li r1, 0           ; 0
            li r6, 80          ; 1
            li r2, 0           ; 2
            li r3, 0           ; 3
            li r4, 0           ; 4
        loop:
            ld r8, 0(r1)       ; 5
            beq r8, r0, else_  ; 6
            addi r2, r2, 1     ; 7
            jmp ip             ; 8
        else_:
            addi r3, r3, 1     ; 9
        ip:
            add r4, r4, r8     ; 10
            addi r1, r1, 8     ; 11
            blt r1, r6, loop   ; 12
            halt               ; 13
            "#,
        )
        .unwrap();
        let a = analyze(&p);
        let doc = json::parse(&report_json(&p, &a)).expect("valid json");
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(ANALYZE_SCHEMA_VERSION as u64)
        );
        let k = &doc.get("kernels").unwrap().as_arr().unwrap()[0];
        assert_eq!(k.get("name").unwrap().as_str(), Some("t"));
        assert_eq!(k.get("n_insts").unwrap().as_u64(), Some(14));
        let branches = k.get("branches").unwrap().as_arr().unwrap();
        assert_eq!(branches.len(), 2);
        let hammock = &branches[0];
        assert_eq!(hammock.get("pc").unwrap().as_u64(), Some(6));
        assert_eq!(hammock.get("class").unwrap().as_str(), Some("ifthenelse"));
        assert_eq!(hammock.get("rcp").unwrap().as_u64(), Some(10));
        assert_eq!(hammock.get("rcp_estimate").unwrap().as_u64(), Some(10));
        // v2: CIDI fields on the hammock (figure-1's region is fully
        // data independent) and the kernel-level summary.
        assert_eq!(hammock.get("cidi_fraction").unwrap().as_f64(), Some(1.0));
        assert_eq!(hammock.get("n_cidi").unwrap().as_u64(), Some(3));
        assert_eq!(hammock.get("n_cidd").unwrap().as_u64(), Some(0));
        let verdicts = hammock.get("cidi_verdicts").unwrap().as_arr().unwrap();
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[0].get("pc").unwrap().as_u64(), Some(10));
        assert_eq!(verdicts[0].get("verdict").unwrap().as_str(), Some("cidi"));
        let cidi = k.get("cidi").unwrap();
        assert_eq!(cidi.get("branches_classified").unwrap().as_u64(), Some(1));
        assert_eq!(cidi.get("mean_cidi_fraction").unwrap().as_f64(), Some(1.0));
        // The loopback latch is not classified: no cidi keys on it.
        assert!(branches[1].get("cidi_fraction").is_none());
        let agr = k.get("agreement").unwrap();
        assert_eq!(agr.get("hammock_checked").unwrap().as_u64(), Some(1));
        assert_eq!(agr.get("hammock_fraction").unwrap().as_f64(), Some(1.0));
        assert!(agr.get("divergences").unwrap().as_arr().unwrap().is_empty());
        assert!(k.get("lints").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn divergence_is_enumerated_not_hidden() {
        // Reversed hammock pre-fix shape used to diverge; build a shape
        // where the static join differs from the heuristic: the "then"
        // side jumps *backwards* into the loop head so the pdom join is
        // not what the forward heuristic derives.
        let p = assemble(
            "t",
            r#"
            beq r1, r0, a     ; 0
            addi r2, r2, 1    ; 1
            halt              ; 2
        a:
            halt              ; 3
            "#,
        )
        .unwrap();
        let a = analyze(&p);
        let agr = Agreement::compute(&p, &a.branches);
        // Static truth: no in-program RCP (both arms halt). Heuristic
        // says Some(3). Must be recorded as a divergence.
        assert_eq!(agr.all_checked, 0);
        assert_eq!(agr.divergences.len(), 1);
        assert_eq!(agr.divergences[0].pc, 0);
        assert_eq!(agr.divergences[0].static_rcp, None);
        assert_eq!(agr.divergences[0].estimate, Some(3));
    }
}
