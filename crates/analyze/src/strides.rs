//! Flow-insensitive static stride classification of loads.
//!
//! Every logical register is assigned a class from a small lattice by
//! iterating the whole program to fixpoint (joins are monotone, so this
//! terminates quickly):
//!
//! ```text
//!   Const < Induction < IndexDerived < LoadDerived
//! ```
//!
//! * **Const** — only immediates flow in (`li`, ALU over consts).
//! * **Induction** — the register self-increments by an immediate
//!   (`addi r, r, k` / `subi`), possibly re-seeded by `li`: a classic
//!   loop counter.
//! * **IndexDerived** — an affine combination of consts and induction
//!   variables (e.g. `base + i*8`): still a predictable address.
//! * **LoadDerived** — tainted by a load result (pointer chasing,
//!   indirection tables): statically unpredictable.
//!
//! A load is then **Fixed** (const base: same address every visit),
//! **Strided** (induction/index-derived base: regular sweep — the case
//! the paper's CI-reuse mechanism vectorizes well), or **Irregular**
//! (load-derived base).

use cfir_isa::{AluOp, Inst, Program, NUM_LOGICAL_REGS};

/// Register class lattice; ordering by `rank` (higher = less regular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegClass {
    /// Only immediates flow in.
    Const,
    /// Self-incremented loop counter.
    Induction,
    /// Affine combination of consts and induction variables.
    IndexDerived,
    /// Tainted by a load result.
    LoadDerived,
}

impl RegClass {
    /// Lattice join (least upper bound).
    pub fn join(self, other: RegClass) -> RegClass {
        self.max(other)
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RegClass::Const => "const",
            RegClass::Induction => "induction",
            RegClass::IndexDerived => "index",
            RegClass::LoadDerived => "load",
        }
    }
}

/// Static access-pattern class of one load instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadClass {
    /// Constant base: the same address on every visit.
    Fixed,
    /// Induction- or index-derived base: a regular sweep.
    Strided,
    /// Load-derived base: pointer chasing / table indirection.
    Irregular,
}

impl LoadClass {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LoadClass::Fixed => "fixed",
            LoadClass::Strided => "strided",
            LoadClass::Irregular => "irregular",
        }
    }
}

/// Result of the whole-program stride analysis.
#[derive(Debug, Clone)]
pub struct StrideInfo {
    /// Fixpoint class per logical register (`r0` stays [`RegClass::Const`]).
    pub reg_class: Vec<RegClass>,
    /// `(pc, class)` for every load in the program, in address order.
    pub loads: Vec<(u32, LoadClass)>,
}

impl StrideInfo {
    /// Run the fixpoint over `prog`.
    pub fn compute(prog: &Program) -> StrideInfo {
        let mut cls = vec![RegClass::Const; NUM_LOGICAL_REGS];
        loop {
            let mut changed = false;
            for inst in &prog.insts {
                let Some(rd) = inst.dest() else { continue };
                let new = transfer(inst, &cls);
                let joined = cls[rd as usize].join(new);
                if joined != cls[rd as usize] {
                    cls[rd as usize] = joined;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let loads = prog
            .insts
            .iter()
            .enumerate()
            .filter_map(|(pc, inst)| match *inst {
                Inst::Ld { base, .. } => {
                    let lc = match cls[base as usize] {
                        RegClass::Const => LoadClass::Fixed,
                        RegClass::Induction | RegClass::IndexDerived => LoadClass::Strided,
                        RegClass::LoadDerived => LoadClass::Irregular,
                    };
                    Some((pc as u32, lc))
                }
                _ => None,
            })
            .collect();
        StrideInfo {
            reg_class: cls,
            loads,
        }
    }

    /// Class of the load at `pc`, if `pc` holds a load.
    pub fn load_class(&self, pc: u32) -> Option<LoadClass> {
        self.loads.iter().find(|&&(p, _)| p == pc).map(|&(_, c)| c)
    }
}

/// Class produced by one defining instruction under current classes.
fn transfer(inst: &Inst, cls: &[RegClass]) -> RegClass {
    match *inst {
        Inst::Li { .. } => RegClass::Const,
        Inst::Ld { .. } => RegClass::LoadDerived,
        Inst::AluImm { op, rd, rs1, .. } if rd == rs1 && matches!(op, AluOp::Add | AluOp::Sub) => {
            // Self-increment: an induction step unless already tainted.
            cls[rs1 as usize].join(RegClass::Induction)
        }
        _ => {
            let mut c = RegClass::Const;
            for src in inst.sources().into_iter().flatten() {
                c = c.join(cls[src as usize]);
            }
            // Mixing induction variables into arithmetic yields an
            // index, not a new induction variable.
            if c == RegClass::Induction {
                c = RegClass::IndexDerived;
            }
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn info(src: &str) -> StrideInfo {
        StrideInfo::compute(&assemble("t", src).unwrap())
    }

    #[test]
    fn constant_base_load_is_fixed() {
        let i = info("li r1, 64\nld r2, 0(r1)\nhalt");
        assert_eq!(i.load_class(1), Some(LoadClass::Fixed));
        assert_eq!(i.reg_class[1], RegClass::Const);
        assert_eq!(i.reg_class[2], RegClass::LoadDerived);
    }

    #[test]
    fn induction_base_load_is_strided() {
        let i = info(
            r#"
            li r1, 0
        loop:
            ld r2, 0(r1)
            addi r1, r1, 8
            blt r1, r3, loop
            halt
            "#,
        );
        assert_eq!(i.reg_class[1], RegClass::Induction);
        assert_eq!(i.load_class(1), Some(LoadClass::Strided));
    }

    #[test]
    fn index_derived_base_is_strided() {
        let i = info(
            r#"
            li r1, 0
            li r5, 4096
        loop:
            slli r9, r1, 3
            add r9, r5, r9
            ld r2, 0(r9)
            addi r1, r1, 1
            blt r1, r3, loop
            halt
            "#,
        );
        assert_eq!(i.reg_class[9], RegClass::IndexDerived);
        assert_eq!(i.load_class(4), Some(LoadClass::Strided));
    }

    #[test]
    fn pointer_chase_is_irregular() {
        let i = info(
            r#"
            li r1, 4096
        loop:
            ld r1, 0(r1)
            bne r1, r0, loop
            halt
            "#,
        );
        assert_eq!(i.reg_class[1], RegClass::LoadDerived);
        assert_eq!(i.load_class(1), Some(LoadClass::Irregular));
    }

    #[test]
    fn load_derived_index_is_irregular() {
        let i = info(
            r#"
            li r5, 0
            ld r2, 0(r5)      ; table entry
            slli r9, r2, 3
            add r9, r5, r9    ; base + loaded*8
            ld r3, 0(r9)
            halt
            "#,
        );
        assert_eq!(i.reg_class[9], RegClass::LoadDerived);
        assert_eq!(i.load_class(4), Some(LoadClass::Irregular));
    }
}
