//! Per-branch static reconvergence analysis.
//!
//! For every conditional branch the analyzer computes the exact
//! post-dominator-based reconvergence point — the first PC control is
//! guaranteed to reach whichever way the branch goes — plus a *hammock
//! class* describing the shape of the divergent region, the static
//! control-independent (CI) region behind the reconvergence point, and
//! how many loads in that region are statically strided (the case the
//! paper's dynamic-vectorization mechanism exploits best).

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::LoopInfo;
use crate::strides::{LoadClass, StrideInfo};
use cfir_isa::Program;

/// Shape of the region guarded by one conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// Taken target equals the fallthrough PC: the branch guards nothing.
    Degenerate,
    /// Backward branch whose taken block dominates the branch: a loop
    /// latch. Reconvergence is the fallthrough (loop exit side).
    LoopBack,
    /// One-sided hammock: one successor *is* the join.
    IfThen,
    /// Two-sided hammock (diamond): both arms meet at the join.
    IfThenElse,
    /// Anything else (shared tails, breaks out of the region, …).
    Complex,
}

impl BranchClass {
    /// Short lowercase name for reports and snapshots.
    pub fn name(self) -> &'static str {
        match self {
            BranchClass::Degenerate => "degenerate",
            BranchClass::LoopBack => "loopback",
            BranchClass::IfThen => "ifthen",
            BranchClass::IfThenElse => "ifthenelse",
            BranchClass::Complex => "complex",
        }
    }

    /// `true` for the shapes the paper's heuristic targets (forward
    /// hammocks with a unique join).
    pub fn is_hammock(self) -> bool {
        matches!(self, BranchClass::IfThen | BranchClass::IfThenElse)
    }
}

/// Static facts about one conditional branch.
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// Word PC of the branch instruction.
    pub pc: u32,
    /// Taken-path target PC.
    pub target: u32,
    /// Fallthrough PC (`pc + 1`), `None` when the branch is the last
    /// instruction of the program.
    pub fallthrough: Option<u32>,
    /// Shape classification.
    pub class: BranchClass,
    /// Exact reconvergence PC: start of the immediate-post-dominator
    /// block of the branch's block. `None` when both paths only meet
    /// at the virtual exit (no in-program reconvergence).
    pub rcp: Option<u32>,
    /// Loop nesting depth of the branch's block.
    pub loop_depth: u32,
    /// Number of instructions in the static CI region behind `rcp`:
    /// the post-dominator chain from the reconvergence block while it
    /// stays at the branch's nesting depth or deeper.
    pub ci_region_len: u32,
    /// Loads inside the CI region classified as statically strided.
    pub ci_strided_loads: u32,
    /// Total loads inside the CI region.
    pub ci_loads: u32,
}

/// Analyze every conditional branch of `prog`.
pub fn analyze_branches(
    prog: &Program,
    cfg: &Cfg,
    dom: &DomTree,
    pdom: &DomTree,
    loops: &LoopInfo,
    strides: &StrideInfo,
) -> Vec<BranchInfo> {
    let mut out = Vec::new();
    for (pc, inst) in prog.insts.iter().enumerate() {
        if !inst.is_cond_branch() {
            continue;
        }
        let pc = pc as u32;
        let target = inst.static_target().expect("cond branch has target");
        let fallthrough = if (pc as usize) + 1 < prog.len() {
            Some(pc + 1)
        } else {
            None
        };
        let bb = cfg.block_of[pc as usize];
        let loop_depth = loops.depth_of(bb);
        // Immediate post-dominator of the branch block = the join.
        let jb = pdom.idom_of(bb).filter(|&j| j != cfg.exit);
        let rcp = jb.map(|j| cfg.blocks[j].start);
        let class = classify(cfg, dom, pc, target, fallthrough, bb, jb);
        let (ci_region_len, ci_loads, ci_strided_loads) = match jb {
            Some(j) => ci_region(cfg, pdom, loops, strides, j),
            None => (0, 0, 0),
        };
        out.push(BranchInfo {
            pc,
            target,
            fallthrough,
            class,
            rcp,
            loop_depth,
            ci_region_len,
            ci_loads,
            ci_strided_loads,
        });
    }
    out
}

fn classify(
    cfg: &Cfg,
    dom: &DomTree,
    pc: u32,
    target: u32,
    fallthrough: Option<u32>,
    bb: usize,
    jb: Option<usize>,
) -> BranchClass {
    if Some(target) == fallthrough {
        return BranchClass::Degenerate;
    }
    let tb = match cfg.block_at(target) {
        Some(b) => b,
        None => return BranchClass::Complex, // out-of-range target (lint)
    };
    if target <= pc && dom.dominates(tb, bb) {
        return BranchClass::LoopBack;
    }
    let Some(j) = jb else {
        return BranchClass::Complex;
    };
    let fb = fallthrough.map(|f| cfg.block_of[f as usize]);
    // One successor is the join itself: if-then (the other arm is the
    // "then" side). Require the arm region to be *clean*: every block
    // of it dominated by the branch block, so nothing jumps into the
    // middle of the hammock.
    let arm_clean = |arm: usize| -> bool {
        if arm == j {
            return true;
        }
        // Walk the arm's region: blocks reachable from `arm` without
        // passing through the join.
        let mut seen = vec![false; cfg.len()];
        let mut stack = vec![arm];
        seen[arm] = true;
        while let Some(b) = stack.pop() {
            if !dom.dominates(bb, b) {
                return false;
            }
            for &s in &cfg.blocks[b].succs {
                if s != cfg.exit && s != j && !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        true
    };
    match fb {
        Some(f) => {
            let t_is_join = tb == j;
            let f_is_join = f == j;
            if t_is_join && f_is_join {
                BranchClass::Degenerate
            } else if t_is_join {
                if arm_clean(f) {
                    BranchClass::IfThen
                } else {
                    BranchClass::Complex
                }
            } else if f_is_join {
                if arm_clean(tb) {
                    BranchClass::IfThen
                } else {
                    BranchClass::Complex
                }
            } else if arm_clean(tb) && arm_clean(f) {
                BranchClass::IfThenElse
            } else {
                BranchClass::Complex
            }
        }
        None => BranchClass::Complex,
    }
}

/// Instruction count + load stats of the CI region starting at join
/// block `j`: follow the post-dominator chain while blocks stay at
/// `j`'s loop nesting depth or deeper (leaving the loop ends control
/// independence for the paper's per-iteration reuse).
fn ci_region(
    cfg: &Cfg,
    pdom: &DomTree,
    loops: &LoopInfo,
    strides: &StrideInfo,
    j: usize,
) -> (u32, u32, u32) {
    let base_depth = loops.depth_of(j);
    let mut len = 0u32;
    let mut n_loads = 0u32;
    let mut n_strided = 0u32;
    let mut cur = j;
    loop {
        let blk = &cfg.blocks[cur];
        len += blk.len();
        for pc in blk.pcs() {
            if let Some(lc) = strides.load_class(pc) {
                n_loads += 1;
                if lc == LoadClass::Strided {
                    n_strided += 1;
                }
            }
        }
        match pdom.idom_of(cur) {
            Some(next) if next != cfg.exit && loops.depth_of(next) >= base_depth => cur = next,
            _ => break,
        }
    }
    (len, n_loads, n_strided)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use cfir_isa::assemble;

    fn branches(src: &str) -> Vec<BranchInfo> {
        analyze(&assemble("t", src).unwrap()).branches
    }

    #[test]
    fn if_then_branch() {
        let b = branches(
            r#"
            beq r1, r0, skip  ; 0
            addi r2, r2, 1    ; 1
        skip:
            add r3, r3, r2    ; 2
            halt              ; 3
            "#,
        );
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].class, BranchClass::IfThen);
        assert_eq!(b[0].rcp, Some(2));
        assert_eq!(b[0].ci_region_len, 2, "join block: add + halt");
    }

    #[test]
    fn if_then_else_diamond() {
        let b = branches(
            r#"
            beq r1, r0, else_ ; 0
            addi r2, r2, 1    ; 1
            jmp join          ; 2
        else_:
            addi r3, r3, 1    ; 3
        join:
            add r4, r4, r2    ; 4
            halt              ; 5
            "#,
        );
        assert_eq!(b[0].class, BranchClass::IfThenElse);
        assert_eq!(b[0].rcp, Some(4));
    }

    #[test]
    fn loop_latch_is_loopback() {
        let b = branches(
            r#"
            li r1, 0          ; 0
        loop:
            addi r1, r1, 1    ; 1
            blt r1, r2, loop  ; 2
            halt              ; 3
            "#,
        );
        assert_eq!(b[0].class, BranchClass::LoopBack);
        assert_eq!(b[0].rcp, Some(3), "reconverges at the loop exit");
        assert_eq!(b[0].loop_depth, 1);
    }

    #[test]
    fn degenerate_branch_to_next_pc() {
        let b = branches("beq r1, r0, 1\nhalt");
        assert_eq!(b[0].class, BranchClass::Degenerate);
        assert_eq!(b[0].rcp, Some(1));
    }

    #[test]
    fn arms_meeting_at_tail_is_diamond() {
        // Uneven arm lengths, meeting at a shared tail: the pdom join
        // is the tail and both arms are clean — still a diamond.
        let b = branches(
            r#"
            beq r1, r0, else_ ; 0
            addi r2, r2, 1    ; 1
            jmp tail          ; 2
        else_:
            addi r3, r3, 1    ; 3
            addi r3, r3, 2    ; 4
        tail:
            halt              ; 5
            "#,
        );
        assert_eq!(b[0].class, BranchClass::IfThenElse);
        assert_eq!(b[0].rcp, Some(5));
    }

    #[test]
    fn side_entry_into_arm_is_complex() {
        // The arm block is also entered from outside the hammock, so it
        // is not dominated by the branch: Complex, but the pdom join is
        // still exact.
        let b = branches(
            r#"
            beq r9, r0, shared ; 0
            nop                ; 1
            beq r1, r0, join   ; 2  <- branch under test
        shared:
            addi r2, r2, 1     ; 3  arm, but also entered from pc 0
        join:
            halt               ; 4
            "#,
        );
        let under_test = &b[1];
        assert_eq!(under_test.pc, 2);
        assert_eq!(under_test.class, BranchClass::Complex);
        assert_eq!(under_test.rcp, Some(4));
    }

    #[test]
    fn paths_meeting_only_at_exit_have_no_rcp() {
        // Both arms halt separately: the only common point is the
        // virtual exit, so there is no in-program reconvergence PC.
        let b = branches(
            r#"
            beq r1, r0, done ; 0
            addi r2, r2, 1   ; 1
            halt             ; 2
        done:
            halt             ; 3
            "#,
        );
        assert_eq!(b[0].class, BranchClass::Complex);
        assert_eq!(b[0].rcp, None);
    }

    #[test]
    fn ci_region_stops_at_loop_exit() {
        let b = branches(
            r#"
            li r1, 0           ; 0
            li r5, 4096        ; 1
        loop:
            beq r2, r0, skip   ; 2
            addi r3, r3, 1     ; 3
        skip:
            ld r4, 0(r1)       ; 4  strided (r1 induction)
            addi r1, r1, 8     ; 5
            blt r1, r6, loop   ; 6
            halt               ; 7
            "#,
        );
        let hb = &b[0]; // the beq
        assert_eq!(hb.class, BranchClass::IfThen);
        assert_eq!(hb.rcp, Some(4));
        // CI region = the join block [4..7); the `halt` block is at
        // depth 0 < 1 so the walk stops at the loop boundary.
        assert_eq!(hb.ci_region_len, 3);
        assert_eq!(hb.ci_loads, 1);
        assert_eq!(hb.ci_strided_loads, 1);
    }
}
