//! Classic iterative dataflow over the basic-block CFG: reaching
//! definitions, liveness, and the def-use chains derived from them.
//!
//! The engine is deliberately textbook:
//!
//! * **Reaching definitions** — forward, may. Every `(pc, reg)` def
//!   site gets a bit; `IN[b] = ∪ OUT[pred]`, `OUT[b] = GEN[b] ∪
//!   (IN[b] ∖ KILL[b])`. One *entry pseudo-def* per logical register
//!   models the uninitialized state, so "the pseudo-def of `r` reaches
//!   this read" is exactly the path-sensitive read-before-write
//!   condition the lint pass wants.
//! * **Liveness** — backward, may, as `u64` register masks
//!   (`NUM_LOGICAL_REGS ≤ 64`): `OUT[b] = ∪ IN[succ]`, `IN[b] =
//!   USE[b] ∪ (OUT[b] ∖ DEF[b])`.
//! * **Def-use chains** — a forward walk of each reachable block with
//!   its reaching-def `IN` set records, per use, exactly which defs
//!   reach it (and, inverted, which uses each def reaches).
//!
//! Programs here are tiny (hundreds of instructions), so the solver
//! favours clarity over sparse-bitset cleverness; everything is a
//! dense fixpoint over blocks in layout order.

use crate::cfg::Cfg;
use cfir_isa::{Program, NUM_LOGICAL_REGS};
use std::collections::HashMap;

/// Sentinel PC of the per-register entry pseudo-defs.
pub const ENTRY_PC: u32 = u32::MAX;

/// A dense bitset sized at construction; the unit of the reaching-defs
/// lattice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Empty set with capacity for `n` bits.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Set bit `i`; returns `true` if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let newly = self.words[w] & m == 0;
        self.words[w] |= m;
        newly
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// `self ∪= other`; returns `true` when `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// Indices of all set bits, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// One definition site: instruction `pc` writing `reg` ([`ENTRY_PC`]
/// for the per-register entry pseudo-defs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Word PC of the defining instruction, or [`ENTRY_PC`].
    pub pc: u32,
    /// Register written.
    pub reg: u8,
}

impl DefSite {
    /// Is this an entry pseudo-def (models "still uninitialized")?
    pub fn is_entry(&self) -> bool {
        self.pc == ENTRY_PC
    }
}

/// Solved dataflow facts for one program.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Every def site. Ids `0..NUM_LOGICAL_REGS` are the entry
    /// pseudo-defs (id = register number); real defs follow in PC order.
    pub defs: Vec<DefSite>,
    /// Reaching-def set at each block entry.
    pub reach_in: Vec<BitSet>,
    /// Reaching-def set at each block exit.
    pub reach_out: Vec<BitSet>,
    /// Live registers at each block entry (bit `r` = `rN` live).
    pub live_in: Vec<u64>,
    /// Live registers at each block exit.
    pub live_out: Vec<u64>,
    /// Def id of the instruction at each PC (None: writes nothing).
    def_at_pc: Vec<Option<u32>>,
    /// `(use pc, reg)` → ids of the defs that reach that use.
    use_defs: HashMap<(u32, u8), Vec<u32>>,
    /// Def id → PCs of the uses it reaches (register implied).
    def_uses: Vec<Vec<u32>>,
    /// Defs that reach the program exit (end of some exit-bound block).
    exit_reaching: BitSet,
}

impl Dataflow {
    /// Solve all three analyses for `prog` over its `cfg`.
    pub fn compute(prog: &Program, cfg: &Cfg) -> Dataflow {
        const _: () = assert!(NUM_LOGICAL_REGS <= 64, "liveness masks assume <= 64 regs");
        let nb = cfg.len();
        // --- def-site numbering -------------------------------------
        let mut defs: Vec<DefSite> = (0..NUM_LOGICAL_REGS)
            .map(|r| DefSite {
                pc: ENTRY_PC,
                reg: r as u8,
            })
            .collect();
        let mut def_at_pc: Vec<Option<u32>> = vec![None; prog.len()];
        for (pc, inst) in prog.insts.iter().enumerate() {
            if let Some(rd) = inst.dest() {
                def_at_pc[pc] = Some(defs.len() as u32);
                defs.push(DefSite {
                    pc: pc as u32,
                    reg: rd,
                });
            }
        }
        let nd = defs.len();
        let mut defs_of_reg: Vec<Vec<u32>> = vec![Vec::new(); NUM_LOGICAL_REGS];
        for (id, d) in defs.iter().enumerate() {
            defs_of_reg[d.reg as usize].push(id as u32);
        }
        // --- per-block GEN/KILL -------------------------------------
        let mut gen = vec![BitSet::new(nd); nb];
        let mut kill = vec![BitSet::new(nd); nb];
        for b in 0..nb {
            // Last def of each register in the block is downward-exposed.
            let mut last: HashMap<u8, u32> = HashMap::new();
            for pc in cfg.blocks[b].pcs() {
                if let Some(id) = def_at_pc[pc as usize] {
                    last.insert(defs[id as usize].reg, id);
                }
            }
            for (&reg, &id) in &last {
                gen[b].insert(id as usize);
                for &other in &defs_of_reg[reg as usize] {
                    if other != id {
                        kill[b].insert(other as usize);
                    }
                }
            }
        }
        // --- reaching definitions (forward, may) --------------------
        let mut reach_in = vec![BitSet::new(nd); nb];
        let mut reach_out = vec![BitSet::new(nd); nb];
        let transfer = |b: usize, inset: &BitSet| -> BitSet {
            let mut out = inset.clone();
            for (o, (&k, &g)) in out
                .words
                .iter_mut()
                .zip(kill[b].words.iter().zip(&gen[b].words))
            {
                *o = (*o & !k) | g;
            }
            out
        };
        // Entry pseudo-defs flow in at block 0, whatever its preds.
        for r in 0..NUM_LOGICAL_REGS {
            if nb > 0 {
                reach_in[0].insert(r);
            }
        }
        let mut changed = nb > 0;
        while changed {
            changed = false;
            for b in 0..nb {
                if !cfg.reachable[b] {
                    continue;
                }
                let preds = cfg.blocks[b].preds.clone();
                for p in preds {
                    if cfg.reachable[p] {
                        let out = reach_out[p].clone();
                        reach_in[b].union_with(&out);
                    }
                }
                let new_out = transfer(b, &reach_in[b]);
                if new_out != reach_out[b] {
                    reach_out[b] = new_out;
                    changed = true;
                }
            }
        }
        // --- def-use chains -----------------------------------------
        let mut use_defs: HashMap<(u32, u8), Vec<u32>> = HashMap::new();
        let mut def_uses: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for (b, reach) in reach_in.iter().enumerate() {
            if !cfg.reachable[b] {
                continue;
            }
            // Current reaching defs per register, seeded from IN[b].
            let mut cur: Vec<Vec<u32>> = vec![Vec::new(); NUM_LOGICAL_REGS];
            for id in reach.iter() {
                cur[defs[id].reg as usize].push(id as u32);
            }
            for pc in cfg.blocks[b].pcs() {
                let inst = prog.insts[pc as usize];
                let mut srcs: Vec<u8> = inst.sources().into_iter().flatten().collect();
                srcs.dedup();
                for src in srcs {
                    let reaching = cur[src as usize].clone();
                    for &id in &reaching {
                        def_uses[id as usize].push(pc);
                    }
                    use_defs.insert((pc, src), reaching);
                }
                if let Some(id) = def_at_pc[pc as usize] {
                    cur[defs[id as usize].reg as usize] = vec![id];
                }
            }
        }
        // --- exit-reaching defs -------------------------------------
        let mut exit_reaching = BitSet::new(nd);
        for (b, out) in reach_out.iter().enumerate() {
            if cfg.reachable[b] && cfg.blocks[b].succs.contains(&cfg.exit) {
                exit_reaching.union_with(out);
            }
        }
        // --- liveness (backward, may) -------------------------------
        let mut use_mask = vec![0u64; nb];
        let mut def_mask = vec![0u64; nb];
        for b in 0..nb {
            for pc in cfg.blocks[b].pcs() {
                let inst = prog.insts[pc as usize];
                for src in inst.sources().into_iter().flatten() {
                    if def_mask[b] & (1u64 << src) == 0 {
                        use_mask[b] |= 1u64 << src;
                    }
                }
                if let Some(rd) = inst.dest() {
                    def_mask[b] |= 1u64 << rd;
                }
            }
        }
        let mut live_in = vec![0u64; nb];
        let mut live_out = vec![0u64; nb];
        let mut changed = nb > 0;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = 0u64;
                for &s in &cfg.blocks[b].succs {
                    if s != cfg.exit {
                        out |= live_in[s];
                    }
                }
                let inm = use_mask[b] | (out & !def_mask[b]);
                if out != live_out[b] || inm != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inm;
                    changed = true;
                }
            }
        }
        Dataflow {
            defs,
            reach_in,
            reach_out,
            live_in,
            live_out,
            def_at_pc,
            use_defs,
            def_uses,
            exit_reaching,
        }
    }

    /// Def id of the instruction at `pc` (None: writes nothing, or out
    /// of range).
    pub fn def_at(&self, pc: u32) -> Option<u32> {
        self.def_at_pc.get(pc as usize).copied().flatten()
    }

    /// Def ids reaching the read of `reg` at `pc` (empty when `pc`
    /// does not read `reg`, or is unreachable).
    pub fn reaching_defs(&self, pc: u32, reg: u8) -> &[u32] {
        self.use_defs.get(&(pc, reg)).map_or(&[], |v| v)
    }

    /// PCs of the uses reached by def `id`.
    pub fn uses_of(&self, id: u32) -> &[u32] {
        &self.def_uses[id as usize]
    }

    /// Is `id` one of the entry pseudo-defs?
    pub fn is_entry_def(&self, id: u32) -> bool {
        (id as usize) < NUM_LOGICAL_REGS
    }

    /// Does def `id` survive (un-killed) to the program exit on some
    /// path?
    pub fn reaches_exit(&self, id: u32) -> bool {
        self.exit_reaching.contains(id as usize)
    }

    /// Total number of def sites (pseudo + real).
    pub fn n_defs(&self) -> usize {
        self.defs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn df(src: &str) -> (Program, Cfg, Dataflow) {
        let p = assemble("t", src).unwrap();
        let cfg = Cfg::build(&p);
        let d = Dataflow::compute(&p, &cfg);
        (p, cfg, d)
    }

    #[test]
    fn straightline_def_use_chain() {
        let (_, _, d) = df("li r1, 3\nadd r2, r1, r1\nhalt");
        let def_r1 = d.def_at(0).unwrap();
        assert_eq!(d.defs[def_r1 as usize].reg, 1);
        assert_eq!(d.reaching_defs(1, 1), &[def_r1]);
        assert_eq!(d.uses_of(def_r1), &[1]);
        // The read at pc 1 is fully defined: no entry pseudo-def.
        assert!(!d.reaching_defs(1, 1).iter().any(|&i| d.is_entry_def(i)));
    }

    #[test]
    fn diamond_merges_both_arm_defs() {
        let (_, _, d) = df(r#"
            beq r9, r0, else_ ; 0
            li r1, 5          ; 1
            jmp join          ; 2
        else_:
            li r1, 7          ; 3
        join:
            add r2, r1, r0    ; 4
            halt
            "#);
        let reaching = d.reaching_defs(4, 1);
        let pcs: Vec<u32> = reaching
            .iter()
            .map(|&i| d.defs[i as usize].pc)
            .collect::<Vec<_>>();
        assert!(pcs.contains(&1) && pcs.contains(&3), "both arms: {pcs:?}");
        assert!(!reaching.iter().any(|&i| d.is_entry_def(i)));
    }

    #[test]
    fn one_sided_write_keeps_entry_pseudo_def() {
        let (_, _, d) = df(r#"
            beq r9, r0, skip ; 0
            li r1, 5         ; 1
        skip:
            add r2, r1, r0   ; 2
            halt
            "#);
        assert!(d.reaching_defs(2, 1).iter().any(|&i| d.is_entry_def(i)));
    }

    #[test]
    fn loop_carried_def_reaches_its_own_use() {
        let (_, _, d) = df(r#"
            li r1, 0          ; 0
        loop:
            addi r1, r1, 1    ; 1
            blt r1, r2, loop  ; 2
            halt
            "#);
        let inc = d.def_at(1).unwrap();
        // The increment reaches its own operand read via the back edge.
        assert!(d.reaching_defs(1, 1).contains(&inc));
        assert!(d.uses_of(inc).contains(&1));
        assert!(!d.reaching_defs(1, 1).iter().any(|&i| d.is_entry_def(i)));
    }

    #[test]
    fn killed_on_every_path_does_not_reach_exit() {
        let (_, cfg, d) = df("li r1, 1\nli r1, 2\nadd r2, r1, r0\nhalt");
        let first = d.def_at(0).unwrap();
        let second = d.def_at(1).unwrap();
        assert!(d.uses_of(first).is_empty());
        assert!(!d.reaches_exit(first));
        assert!(d.reaches_exit(second));
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn liveness_masks_are_exact_on_a_diamond() {
        let (_, cfg, d) = df(r#"
            li r1, 1          ; 0  b0
            beq r1, r0, else_ ; 1  b0
            add r2, r1, r0    ; 2  b1
            jmp join          ; 3  b1
        else_:
            li r2, 7          ; 4  b2
        join:
            add r3, r2, r0    ; 5  b3
            halt
            "#);
        let b_of = |pc: u32| cfg.block_of[pc as usize];
        // r1 live into the then-arm (read at 2), dead into the else-arm.
        assert_ne!(d.live_in[b_of(2)] & (1 << 1), 0);
        assert_eq!(d.live_in[b_of(4)] & (1 << 1), 0);
        // r2 live into the join from both arms.
        assert_ne!(d.live_out[b_of(2)] & (1 << 2), 0);
        assert_ne!(d.live_out[b_of(4)] & (1 << 2), 0);
        // Nothing is live out of the exit-bound join block.
        assert_eq!(d.live_out[b_of(5)], 0);
    }

    #[test]
    fn empty_program_yields_empty_facts() {
        let p = Program::new("empty");
        let cfg = Cfg::build(&p);
        let d = Dataflow::compute(&p, &cfg);
        assert_eq!(d.n_defs(), NUM_LOGICAL_REGS);
        assert!(d.reach_in.is_empty());
        assert!(d.live_in.is_empty());
    }
}
