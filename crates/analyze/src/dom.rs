//! Dominator trees via Cooper–Harvey–Kennedy ("A Simple, Fast
//! Dominance Algorithm"): iterate the two-finger `intersect` over a
//! reverse-postorder numbering until fixpoint. Post-dominators are the
//! dominators of the reversed graph rooted at the virtual exit.

/// A dominator (or post-dominator) tree over graph nodes `0..n`.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per node; `idom[root] == Some(root)`,
    /// `None` for nodes unreachable from the root.
    idom: Vec<Option<usize>>,
    root: usize,
}

impl DomTree {
    /// Compute dominators of the graph given as per-node successor
    /// lists, rooted at `root`. For post-dominators pass the *reversed*
    /// graph and the exit node as root.
    pub fn compute(succs: &[Vec<usize>], root: usize) -> DomTree {
        let n = succs.len();
        assert!(root < n, "root out of range");
        // Reverse postorder of the DFS from root.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = 1;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            if *i < succs[node].len() {
                let next = succs[node][*i];
                *i += 1;
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // now RPO, order[0] == root
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            rpo_num[node] = i;
        }
        // Predecessor lists restricted to reachable nodes.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &node in &order {
            for &s in &succs[node] {
                if rpo_num[s] != usize::MAX {
                    preds[s].push(node);
                }
            }
        }
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[root] = Some(root);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a].expect("processed node has idom");
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b].expect("processed node has idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[node] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, root }
    }

    /// Root node of the tree.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Immediate dominator of `node` (`None` for the root itself and
    /// for unreachable nodes).
    pub fn idom_of(&self, node: usize) -> Option<usize> {
        if node == self.root {
            return None;
        }
        self.idom[node]
    }

    /// `true` when `node` is reachable from the root.
    pub fn reachable(&self, node: usize) -> bool {
        self.idom[node].is_some()
    }

    /// `true` when `a` dominates `b` (reflexive). `false` when `b` is
    /// unreachable.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        if self.idom[cur].is_none() {
            return false;
        }
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            cur = self.idom[cur].expect("reachable chain");
        }
    }

    /// Number of idom links from the root (root depth 0); `None` when
    /// unreachable.
    pub fn depth(&self, node: usize) -> Option<usize> {
        self.idom[node]?;
        let mut d = 0;
        let mut cur = node;
        while cur != self.root {
            cur = self.idom[cur].expect("reachable chain");
            d += 1;
        }
        Some(d)
    }
}

/// Reverse a successor-list graph.
pub fn reverse(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); succs.len()];
    for (node, ss) in succs.iter().enumerate() {
        for &s in ss {
            rev[s].push(node);
        }
    }
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_doms() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let g = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom_of(1), Some(0));
        assert_eq!(d.idom_of(2), Some(0));
        assert_eq!(d.idom_of(3), Some(0), "join dominated only by the fork");
        assert!(d.dominates(0, 3));
        assert!(!d.dominates(1, 3));
        assert_eq!(d.depth(3), Some(1));
    }

    #[test]
    fn pdom_of_diamond_is_join() {
        let g = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let p = DomTree::compute(&reverse(&g), 3);
        assert_eq!(p.idom_of(0), Some(3), "branch pdom'd immediately by join");
        assert_eq!(p.idom_of(1), Some(3));
        assert_eq!(p.idom_of(2), Some(3));
    }

    #[test]
    fn unreachable_node_has_no_idom() {
        let g = vec![vec![1], vec![], vec![1]]; // 2 unreachable from 0
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom_of(2), None);
        assert!(!d.reachable(2));
        assert!(!d.dominates(0, 2));
    }

    #[test]
    fn loop_back_edge_keeps_header_dominating() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let g = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom_of(1), Some(0));
        assert_eq!(d.idom_of(2), Some(1));
        assert_eq!(d.idom_of(3), Some(2));
        assert!(d.dominates(1, 2), "header dominates body despite back edge");
    }
}
