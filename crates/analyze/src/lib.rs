//! # cfir-analyze — static CFG / post-dominator analysis of guest programs
//!
//! The simulator's re-convergence detector (`cfir_core::rcp::estimate`)
//! is a *dynamic heuristic*: cheap, per-branch, and occasionally wrong.
//! This crate computes the *static truth* for any [`Program`]:
//!
//! * basic-block CFG with indirect-target resolution ([`cfg`]),
//! * dominator and post-dominator trees via Cooper–Harvey–Kennedy
//!   ([`dom`]),
//! * natural-loop nesting ([`loops`]),
//! * per-branch hammock classification, the exact post-dominator-based
//!   reconvergence PC, and the static control-independent region behind
//!   it ([`branches`]),
//! * static stride classification of loads ([`strides`]),
//! * reaching definitions, liveness and def-use chains via a classic
//!   iterative dataflow engine ([`dataflow`]),
//! * CIDI/CIDD/clobbered reuse verdicts for every hammock's CI region
//!   ([`cidi`]),
//! * a workload lint pass ([`lint`]),
//! * JSON reports and the static-vs-dynamic agreement metric
//!   ([`report`]).
//!
//! The analysis is exact for direct control flow; `jr` targets are
//! over-approximated (see [`cfg::Cfg`]). It is used three ways: the
//! `cfir-analyze` binary dumps per-kernel reports, the simulator seeds
//! its branch scorecards with static truth and counts runtime
//! (dis)agreement, and the workload tests lint every kernel.
//!
//! ```
//! let prog = cfir_isa::assemble(
//!     "demo",
//!     "beq r0, r0, 2\n addi r1, r0, 1\n halt",
//! )
//! .unwrap();
//! let analysis = cfir_analyze::analyze(&prog);
//! assert_eq!(analysis.branches[0].rcp, Some(2));
//! assert!(analysis.lints.is_empty());
//! ```

pub mod branches;
pub mod cfg;
pub mod cidi;
pub mod dataflow;
pub mod dom;
pub mod lint;
pub mod loops;
pub mod report;
pub mod strides;

pub use branches::{BranchClass, BranchInfo};
pub use cfg::{Block, Cfg};
pub use cidi::{BranchCidi, CidiAnalysis, InstVerdict, Verdict, DEFAULT_HORIZON};
pub use dataflow::{BitSet, Dataflow, DefSite};
pub use dom::DomTree;
pub use lint::{Lint, LintKind};
pub use loops::LoopInfo;
pub use report::{report_json, write_report, Agreement, Divergence, ANALYZE_SCHEMA_VERSION};
pub use strides::{LoadClass, RegClass, StrideInfo};

use cfir_isa::Program;

/// Everything the analyzer knows about one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Basic-block control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree rooted at the entry block.
    pub dom: DomTree,
    /// Post-dominator tree rooted at the virtual exit.
    pub pdom: DomTree,
    /// Natural-loop forest and nesting depths.
    pub loops: LoopInfo,
    /// Whole-program load stride classes.
    pub strides: StrideInfo,
    /// Per-conditional-branch static facts, in PC order.
    pub branches: Vec<BranchInfo>,
    /// Reaching definitions, liveness and def-use chains.
    pub dataflow: Dataflow,
    /// CIDI/CIDD/clobbered verdicts for every hammock's CI region.
    pub cidi: CidiAnalysis,
    /// Lint findings, sorted by PC.
    pub lints: Vec<Lint>,
}

impl Analysis {
    /// Static reconvergence PC of the conditional branch at `pc`
    /// (`None` when `pc` is not a conditional branch or the paths only
    /// meet at the virtual exit).
    pub fn static_rcp(&self, pc: u32) -> Option<u32> {
        self.branch(pc).and_then(|b| b.rcp)
    }

    /// Static facts for the conditional branch at `pc`.
    pub fn branch(&self, pc: u32) -> Option<&BranchInfo> {
        self.branches.iter().find(|b| b.pc == pc)
    }
}

/// Run the full static analysis over `prog`.
pub fn analyze(prog: &Program) -> Analysis {
    let cfg = Cfg::build(prog);
    if cfg.is_empty() {
        // Empty program: one virtual node, nothing to analyze.
        let trivial = DomTree::compute(&[Vec::new()], 0);
        return Analysis {
            dataflow: Dataflow::compute(prog, &cfg),
            cfg,
            dom: trivial.clone(),
            pdom: trivial,
            loops: LoopInfo::default(),
            strides: StrideInfo::compute(prog),
            branches: Vec::new(),
            cidi: CidiAnalysis::default(),
            lints: Vec::new(),
        };
    }
    let dom = DomTree::compute(&cfg.succ_adj(), 0);
    let pdom = DomTree::compute(&cfg.pred_adj(), cfg.exit);
    let loops = LoopInfo::compute(&cfg, &dom);
    let strides = StrideInfo::compute(prog);
    let branches = branches::analyze_branches(prog, &cfg, &dom, &pdom, &loops, &strides);
    let dataflow = Dataflow::compute(prog, &cfg);
    let cidi = cidi::classify(
        prog,
        &cfg,
        &pdom,
        &loops,
        &strides,
        &dataflow,
        &branches,
        cidi::DEFAULT_HORIZON,
    );
    let lints = lint::lint(prog, &cfg, &dataflow);
    Analysis {
        cfg,
        dom,
        pdom,
        loops,
        strides,
        branches,
        dataflow,
        cidi,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_analyzes_without_panicking() {
        let a = analyze(&Program::new("empty"));
        assert!(a.branches.is_empty());
        assert!(a.lints.is_empty());
        assert!(a.cfg.is_empty());
    }

    #[test]
    fn figure_1_kernel_end_to_end() {
        let p = cfir_isa::assemble(
            "fig1",
            r#"
            li r1, 0           ; 0
            li r6, 80          ; 1
            li r2, 0           ; 2
            li r3, 0           ; 3
            li r4, 0           ; 4
        loop:
            ld r8, 0(r1)       ; 5
            beq r8, r0, else_  ; 6
            addi r2, r2, 1     ; 7
            jmp ip             ; 8
        else_:
            addi r3, r3, 1     ; 9
        ip:
            add r4, r4, r8     ; 10
            addi r1, r1, 8     ; 11
            blt r1, r6, loop   ; 12
            halt               ; 13
            "#,
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a.lints.is_empty(), "kernel is clean: {:?}", a.lints);
        assert_eq!(a.loops.loops.len(), 1);
        assert_eq!(a.loops.max_depth(), 1);
        let hammock = a.branch(6).unwrap();
        assert_eq!(hammock.class, BranchClass::IfThenElse);
        assert_eq!(hammock.rcp, Some(10));
        assert_eq!(hammock.loop_depth, 1);
        // CI region: join block [10..13) at loop depth 1; stops before
        // the halt block at depth 0.
        assert_eq!(hammock.ci_region_len, 3);
        assert_eq!(a.static_rcp(6), Some(10));
        assert_eq!(a.static_rcp(7), None, "not a branch");
        let latch = a.branch(12).unwrap();
        assert_eq!(latch.class, BranchClass::LoopBack);
        assert_eq!(latch.rcp, Some(13));
    }
}
