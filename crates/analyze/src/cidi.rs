//! CIDI/CIDD classification of control-independent regions.
//!
//! For every hammock branch with an exact reconvergence PC, every
//! instruction of the static CI region (the post-dominator chain
//! behind the join, capped at [`DEFAULT_HORIZON`]) is classified by
//! whether its *inputs* can depend on the divergent arms:
//!
//! * **CIDI** (control-independent, data-independent) — no register
//!   def on either arm, and no arm store, can reach any of its inputs:
//!   after a misprediction its saved result is reusable as-is, and
//!   validation must succeed.
//! * **CIDD** (control-independent, data-dependent) — some arm def
//!   reaches one of its inputs (directly, or transitively through the
//!   def-use chains): reuse needs validation and may be partial,
//!   because only the arm that actually executes decides the value.
//! * **Clobbered** — the instruction is a load whose loaded value may
//!   be killed by an arm store (the arms' memory write mask): the
//!   saved result cannot be trusted at all.
//!
//! The register channel is exact up to the flow-insensitivity of the
//! taint (a static def site tainted once is tainted for every
//! execution of that PC). The memory channel is the documented
//! approximation: an arm store may-aliases a CI load when either base
//! register is load-derived in the stride lattice (pointer chasing —
//! no static claim possible), or when both sites use the same base
//! register with the same offset and the *same* reaching definitions
//! of that base (provably the same address). Regular strided accesses
//! through distinct bases are assumed disjoint — the workload kernels
//! place their arrays in disjoint regions, and DESIGN.md records the
//! imprecision.

use crate::branches::BranchInfo;
use crate::cfg::Cfg;
use crate::dataflow::Dataflow;
use crate::dom::DomTree;
use crate::loops::LoopInfo;
use crate::strides::{RegClass, StrideInfo};
use cfir_isa::{Inst, Program};

/// Default cap on how many CI-region instructions are classified per
/// branch (the region can span whole loop bodies; reuse hardware only
/// ever looks this far behind the join).
pub const DEFAULT_HORIZON: u32 = 64;

/// Static reuse verdict for one CI-region instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Inputs untouched by either arm: reuse must succeed.
    Cidi,
    /// An arm def (transitively) reaches an input: validation required.
    Cidd,
    /// An arm store may kill the loaded value: reuse impossible.
    Clobbered,
}

impl Verdict {
    /// Short lowercase name for reports and snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Cidi => "cidi",
            Verdict::Cidd => "cidd",
            Verdict::Clobbered => "clobbered",
        }
    }
}

/// Per-instruction verdict inside one branch's CI region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstVerdict {
    /// Word PC of the classified instruction.
    pub pc: u32,
    /// Its static reuse verdict.
    pub verdict: Verdict,
}

/// CIDI classification of one hammock branch's CI region.
#[derive(Debug, Clone)]
pub struct BranchCidi {
    /// Word PC of the branch.
    pub branch_pc: u32,
    /// Its exact reconvergence PC.
    pub rcp: u32,
    /// Verdicts in region order (first = the join instruction),
    /// capped at the horizon.
    pub verdicts: Vec<InstVerdict>,
    /// Verdict counts (redundant with `verdicts`, kept for reports).
    pub n_cidi: u32,
    /// Instructions classified CIDD.
    pub n_cidd: u32,
    /// Instructions classified clobbered.
    pub n_clobbered: u32,
}

impl BranchCidi {
    /// Fraction of classified instructions that are CIDI (1.0 for an
    /// empty region: nothing contradicts reuse).
    pub fn cidi_fraction(&self) -> f64 {
        if self.verdicts.is_empty() {
            1.0
        } else {
            self.n_cidi as f64 / self.verdicts.len() as f64
        }
    }
}

/// CIDI classification of every eligible branch of a program.
#[derive(Debug, Clone, Default)]
pub struct CidiAnalysis {
    /// Per-branch classifications, in branch PC order. Only hammock
    /// branches with an exact RCP appear.
    pub branches: Vec<BranchCidi>,
    /// The horizon the classification ran with.
    pub horizon: u32,
}

impl CidiAnalysis {
    /// Classification for the branch at `pc`, if it was eligible.
    pub fn for_branch(&self, pc: u32) -> Option<&BranchCidi> {
        self.branches.iter().find(|b| b.branch_pc == pc)
    }

    /// Mean CIDI fraction over all classified branches (1.0 when there
    /// are none).
    pub fn mean_cidi_fraction(&self) -> f64 {
        if self.branches.is_empty() {
            1.0
        } else {
            self.branches.iter().map(|b| b.cidi_fraction()).sum::<f64>()
                / self.branches.len() as f64
        }
    }
}

/// Classify every hammock branch of `prog` with horizon `horizon`.
#[allow(clippy::too_many_arguments)]
pub fn classify(
    prog: &Program,
    cfg: &Cfg,
    pdom: &DomTree,
    loops: &LoopInfo,
    strides: &StrideInfo,
    dataflow: &Dataflow,
    branches: &[BranchInfo],
    horizon: u32,
) -> CidiAnalysis {
    let mut out = CidiAnalysis {
        branches: Vec::new(),
        horizon,
    };
    for b in branches {
        if !b.class.is_hammock() {
            continue;
        }
        let Some(rcp) = b.rcp else { continue };
        let bb = cfg.block_of[b.pc as usize];
        let jb = cfg.block_of[rcp as usize];
        let arm_pcs = arm_instructions(cfg, bb, jb);
        let region = ci_region_pcs(cfg, pdom, loops, jb, horizon);
        out.branches.push(classify_branch(
            prog, strides, dataflow, b.pc, rcp, &arm_pcs, &region,
        ));
    }
    out
}

/// PCs of both arms: blocks reachable from the branch block's
/// successors without passing through the join (mirrors the hammock
/// cleanliness walk in `branches.rs`).
fn arm_instructions(cfg: &Cfg, bb: usize, jb: usize) -> Vec<u32> {
    let mut pcs = Vec::new();
    let mut seen = vec![false; cfg.len()];
    for &s in &cfg.blocks[bb].succs {
        if s == jb || s == cfg.exit || seen[s] {
            continue;
        }
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(blk) = stack.pop() {
            pcs.extend(cfg.blocks[blk].pcs());
            for &nx in &cfg.blocks[blk].succs {
                if nx != cfg.exit && nx != jb && !seen[nx] {
                    seen[nx] = true;
                    stack.push(nx);
                }
            }
        }
    }
    pcs.sort_unstable();
    pcs
}

/// CI-region PCs behind join block `jb`, in region order, capped at
/// `horizon` (the same post-dominator-chain walk `branches.rs` uses
/// for `ci_region_len`).
fn ci_region_pcs(cfg: &Cfg, pdom: &DomTree, loops: &LoopInfo, jb: usize, horizon: u32) -> Vec<u32> {
    let base_depth = loops.depth_of(jb);
    let mut pcs = Vec::new();
    let mut cur = jb;
    'walk: loop {
        for pc in cfg.blocks[cur].pcs() {
            if pcs.len() as u32 >= horizon {
                break 'walk;
            }
            pcs.push(pc);
        }
        match pdom.idom_of(cur) {
            Some(next) if next != cfg.exit && loops.depth_of(next) >= base_depth => cur = next,
            _ => break,
        }
    }
    pcs
}

fn classify_branch(
    prog: &Program,
    strides: &StrideInfo,
    df: &Dataflow,
    branch_pc: u32,
    rcp: u32,
    arm_pcs: &[u32],
    region: &[u32],
) -> BranchCidi {
    // Arm facts: register def sites and stores.
    let arm_defs: Vec<u32> = arm_pcs.iter().filter_map(|&pc| df.def_at(pc)).collect();
    let arm_stores: Vec<u32> = arm_pcs
        .iter()
        .copied()
        .filter(|&pc| prog.insts[pc as usize].is_store())
        .collect();
    // Memory channel first: clobbered CI loads seed the register taint
    // too (their loaded value is as suspect as an arm-written register).
    let clobbered: Vec<u32> = region
        .iter()
        .copied()
        .filter(|&pc| {
            arm_stores
                .iter()
                .any(|&st| may_alias(prog, strides, df, st, pc))
        })
        .collect();
    // Register channel: taint fixpoint over def sites through the
    // def-use chains. Seeds: arm defs + clobbered CI load defs.
    let mut tainted = vec![false; df.n_defs()];
    let mut work: Vec<u32> = Vec::new();
    for &id in &arm_defs {
        tainted[id as usize] = true;
        work.push(id);
    }
    for &pc in &clobbered {
        if let Some(id) = df.def_at(pc) {
            if !tainted[id as usize] {
                tainted[id as usize] = true;
                work.push(id);
            }
        }
    }
    while let Some(id) = work.pop() {
        for &use_pc in df.uses_of(id) {
            if let Some(did) = df.def_at(use_pc) {
                if !tainted[did as usize] {
                    tainted[did as usize] = true;
                    work.push(did);
                }
            }
        }
    }
    // Verdict per region instruction.
    let mut verdicts = Vec::with_capacity(region.len());
    let (mut n_cidi, mut n_cidd, mut n_clobbered) = (0u32, 0u32, 0u32);
    for &pc in region {
        let verdict = if clobbered.contains(&pc) {
            n_clobbered += 1;
            Verdict::Clobbered
        } else {
            let inst = prog.insts[pc as usize];
            let data_dep = inst.sources().into_iter().flatten().any(|src| {
                df.reaching_defs(pc, src)
                    .iter()
                    .any(|&id| tainted[id as usize])
            });
            if data_dep {
                n_cidd += 1;
                Verdict::Cidd
            } else {
                n_cidi += 1;
                Verdict::Cidi
            }
        };
        verdicts.push(InstVerdict { pc, verdict });
    }
    BranchCidi {
        branch_pc,
        rcp,
        verdicts,
        n_cidi,
        n_cidd,
        n_clobbered,
    }
}

/// May the arm store at `st` write the address the load at `ld` reads?
/// (Both are PCs; `ld` must actually be a load for `true`.)
fn may_alias(prog: &Program, strides: &StrideInfo, df: &Dataflow, st: u32, ld: u32) -> bool {
    let (
        Inst::St {
            base: sb,
            offset: so,
            ..
        },
        Inst::Ld {
            base: lb,
            offset: lo,
            ..
        },
    ) = (prog.insts[st as usize], prog.insts[ld as usize])
    else {
        return false;
    };
    let sc = strides.reg_class[sb as usize];
    let lc = strides.reg_class[lb as usize];
    // Pointer-chasing on either side: no static claim possible.
    if sc == RegClass::LoadDerived || lc == RegClass::LoadDerived {
        return true;
    }
    // Same base register, same offset, same reaching definitions of
    // the base: provably the same address.
    sb == lb && so == lo && df.reaching_defs(st, sb) == df.reaching_defs(ld, lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use cfir_isa::assemble;

    fn cidi_of(src: &str) -> CidiAnalysis {
        analyze(&assemble("t", src).unwrap()).cidi
    }

    #[test]
    fn figure_1_ci_region_is_fully_cidi() {
        // The arms write r2/r3; the CI region (add r4/addi r1/blt)
        // never reads them: textbook CIDI.
        let c = cidi_of(
            r#"
            li r1, 0           ; 0
            li r6, 80          ; 1
            li r2, 0           ; 2
            li r3, 0           ; 3
            li r4, 0           ; 4
        loop:
            ld r8, 0(r1)       ; 5
            beq r8, r0, else_  ; 6
            addi r2, r2, 1     ; 7
            jmp ip             ; 8
        else_:
            addi r3, r3, 1     ; 9
        ip:
            add r4, r4, r8     ; 10
            addi r1, r1, 8     ; 11
            blt r1, r6, loop   ; 12
            halt               ; 13
            "#,
        );
        let b = c.for_branch(6).expect("hammock classified");
        assert_eq!(b.rcp, 10);
        assert_eq!(b.verdicts.len(), 3);
        assert!(b.verdicts.iter().all(|v| v.verdict == Verdict::Cidi));
        assert_eq!(b.cidi_fraction(), 1.0);
    }

    #[test]
    fn arm_def_read_after_join_is_cidd() {
        let c = cidi_of(
            r#"
            beq r9, r0, else_ ; 0
            addi r2, r2, 1    ; 1  arm writes r2
            jmp join          ; 2
        else_:
            addi r3, r3, 1    ; 3  arm writes r3
        join:
            add r4, r2, r3    ; 4  reads both arm defs -> CIDD
            addi r5, r5, 1    ; 5  untouched -> CIDI
            halt              ; 6
            "#,
        );
        let b = c.for_branch(0).unwrap();
        assert_eq!(b.verdicts[0].verdict, Verdict::Cidd);
        assert_eq!(b.verdicts[1].verdict, Verdict::Cidi);
        assert_eq!(b.n_cidd, 1);
    }

    #[test]
    fn taint_propagates_transitively() {
        let c = cidi_of(
            r#"
            beq r9, r0, skip  ; 0
            addi r2, r2, 1    ; 1  arm writes r2
        skip:
            add r3, r2, r0    ; 2  CIDD (reads r2)
            add r4, r3, r0    ; 3  CIDD (reads tainted r3)
            add r5, r6, r0    ; 4  CIDI
            halt              ; 5
            "#,
        );
        let b = c.for_branch(0).unwrap();
        let v: Vec<Verdict> = b.verdicts.iter().map(|x| x.verdict).collect();
        assert_eq!(
            v,
            vec![Verdict::Cidd, Verdict::Cidd, Verdict::Cidi, Verdict::Cidi]
        );
    }

    #[test]
    fn arm_store_clobbers_same_address_load() {
        let c = cidi_of(
            r#"
            li r1, 4096       ; 0
            beq r9, r0, skip  ; 1
            st r8, 0(r1)      ; 2  arm store to [r1]
        skip:
            ld r2, 0(r1)      ; 3  same base, same offset, same def of r1
            ld r3, 8(r1)      ; 4  different offset: assumed disjoint
            halt              ; 5
            "#,
        );
        let b = c.for_branch(1).unwrap();
        assert_eq!(b.verdicts[0].verdict, Verdict::Clobbered);
        // The clobbered load's result taints downstream reads, but the
        // disjoint-offset load stays clean.
        assert_eq!(b.verdicts[1].verdict, Verdict::Cidi);
        assert_eq!(b.n_clobbered, 1);
    }

    #[test]
    fn pointer_chase_store_clobbers_conservatively() {
        let c = cidi_of(
            r#"
            li r1, 4096       ; 0
            ld r7, 0(r1)      ; 1  r7 load-derived
            beq r9, r0, skip  ; 2
            st r8, 0(r7)      ; 3  store through chased pointer
        skip:
            ld r2, 0(r1)      ; 4  may alias: no static claim
            halt              ; 5
            "#,
        );
        let b = c.for_branch(2).unwrap();
        assert_eq!(b.verdicts[0].verdict, Verdict::Clobbered);
    }

    #[test]
    fn clobbered_load_taints_downstream_uses() {
        let c = cidi_of(
            r#"
            li r1, 4096       ; 0
            beq r9, r0, skip  ; 1
            st r8, 0(r1)      ; 2
        skip:
            ld r2, 0(r1)      ; 3  clobbered
            add r3, r2, r0    ; 4  reads the clobbered value -> CIDD
            halt              ; 5
            "#,
        );
        let b = c.for_branch(1).unwrap();
        assert_eq!(b.verdicts[0].verdict, Verdict::Clobbered);
        assert_eq!(b.verdicts[1].verdict, Verdict::Cidd);
    }

    #[test]
    fn horizon_caps_the_classified_region() {
        let mut src = String::from("beq r9, r0, skip\naddi r2, r2, 1\nskip:\n");
        for _ in 0..100 {
            src.push_str("addi r5, r5, 1\n");
        }
        src.push_str("halt\n");
        let c = cidi_of(&src);
        let b = c.for_branch(0).unwrap();
        assert_eq!(b.verdicts.len() as u32, DEFAULT_HORIZON);
    }

    #[test]
    fn non_hammock_branches_are_not_classified() {
        let c = cidi_of(
            r#"
            li r1, 0
        loop:
            addi r1, r1, 1
            blt r1, r2, loop  ; loopback, not a hammock
            halt
            "#,
        );
        assert!(c.branches.is_empty());
        assert_eq!(c.mean_cidi_fraction(), 1.0);
    }
}
