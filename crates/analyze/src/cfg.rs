//! Control-flow graph construction over a [`Program`].
//!
//! Blocks are maximal straight-line instruction runs; a new block starts
//! at PC 0, at every direct branch/jump target and after every control
//! transfer (including `halt`). The graph carries one *virtual exit
//! node* (id [`Cfg::exit`]) that every `halt` — and every block that
//! can run off the end of the program — flows into, so post-dominators
//! are computed over a single-exit graph even when the program has
//! several `halt`s.
//!
//! ## Indirect jumps
//!
//! `jr` targets are not statically known. The builder uses a
//! *jump-table heuristic*: candidate targets are the **orphan blocks** —
//! blocks (other than the entry) that no direct edge or fallthrough
//! reaches. For dispatch loops built like `perlbmk` (a table of
//! handlers jumped over by the prologue and entered only through `jr`)
//! this recovers the handler set exactly. When a program has a `jr` but
//! no orphan block, the builder falls back to treating *every* block as
//! a candidate (a sound over-approximation) and records the fact in
//! [`Cfg::indirect_fallback_all`].

use cfir_isa::{Inst, Program};

/// One basic block: instructions `[start, end)`.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// First instruction PC.
    pub start: u32,
    /// One past the last instruction PC.
    pub end: u32,
    /// Successor node ids (may include the virtual exit).
    pub succs: Vec<usize>,
    /// Predecessor node ids (never contains the virtual exit).
    pub preds: Vec<usize>,
    /// `true` when execution can run past the last instruction of the
    /// program out of this block (lint: no terminating `halt`).
    pub falls_off_end: bool,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// `true` for a zero-length block (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// PCs of the block, in order.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }
}

/// The control-flow graph of one program.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Basic blocks in address order; node ids are indices here.
    pub blocks: Vec<Block>,
    /// Per-PC owning block id.
    pub block_of: Vec<usize>,
    /// Virtual exit node id (`== blocks.len()`).
    pub exit: usize,
    /// Total number of edges (including edges into the virtual exit).
    pub n_edges: usize,
    /// Block ids a `jr` may jump to (empty when the program has none).
    pub indirect_targets: Vec<usize>,
    /// `true` when no orphan block existed and `jr` edges degraded to
    /// the all-blocks over-approximation.
    pub indirect_fallback_all: bool,
    /// Per-block reachability from the entry block.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Build the CFG of `prog`. Out-of-range direct targets get no
    /// edge (the lint pass reports them separately).
    pub fn build(prog: &Program) -> Cfg {
        let n = prog.len();
        if n == 0 {
            return Cfg::default();
        }
        // --- leaders ---
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, inst) in prog.insts.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            let ends_block = inst.is_control() || matches!(inst, Inst::Halt);
            if ends_block && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        // --- blocks ---
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(Block {
                    start: pc as u32,
                    end: pc as u32 + 1,
                    ..Block::default()
                });
            } else {
                blocks.last_mut().unwrap().end = pc as u32 + 1;
            }
            block_of[pc] = blocks.len() - 1;
        }
        let exit = blocks.len();
        let mut cfg = Cfg {
            blocks,
            block_of,
            exit,
            n_edges: 0,
            indirect_targets: Vec::new(),
            indirect_fallback_all: false,
            reachable: Vec::new(),
        };
        // --- direct + fallthrough edges ---
        let mut jr_blocks: Vec<usize> = Vec::new();
        for b in 0..cfg.blocks.len() {
            let last_pc = cfg.blocks[b].end - 1;
            let last = prog.insts[last_pc as usize];
            match last {
                Inst::Br { target, .. } => {
                    if (target as usize) < n {
                        cfg.add_edge(b, cfg.block_of[target as usize]);
                    }
                    cfg.add_fallthrough(b, last_pc, n);
                }
                Inst::Jmp { target } => {
                    if (target as usize) < n {
                        cfg.add_edge(b, cfg.block_of[target as usize]);
                    }
                }
                Inst::Jr { .. } => jr_blocks.push(b),
                Inst::Halt => {
                    let exit = cfg.exit;
                    cfg.add_edge(b, exit);
                }
                _ => cfg.add_fallthrough(b, last_pc, n),
            }
        }
        // --- indirect edges (jump-table heuristic) ---
        if !jr_blocks.is_empty() {
            let mut orphans: Vec<usize> = (1..cfg.blocks.len())
                .filter(|&b| cfg.blocks[b].preds.is_empty())
                .collect();
            if orphans.is_empty() {
                cfg.indirect_fallback_all = true;
                orphans = (0..cfg.blocks.len()).collect();
            }
            for &jb in &jr_blocks {
                for &t in &orphans {
                    cfg.add_edge(jb, t);
                }
            }
            cfg.indirect_targets = orphans;
        }
        // --- reachability from the entry block ---
        let mut reach = vec![false; cfg.blocks.len()];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &cfg.blocks[b].succs {
                if s != cfg.exit && !reach[s] {
                    reach[s] = true;
                    stack.push(s);
                }
            }
        }
        cfg.reachable = reach;
        cfg
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if self.blocks[from].succs.contains(&to) {
            return; // e.g. a branch whose target is its own fallthrough
        }
        self.blocks[from].succs.push(to);
        if to != self.exit {
            self.blocks[to].preds.push(from);
        }
        self.n_edges += 1;
    }

    /// Fallthrough edge out of `b` after non-terminal `last_pc`; runs
    /// into the virtual exit when the program ends there.
    fn add_fallthrough(&mut self, b: usize, last_pc: u32, n: usize) {
        if (last_pc as usize) + 1 < n {
            let next = self.block_of[last_pc as usize + 1];
            self.add_edge(b, next);
        } else {
            self.blocks[b].falls_off_end = true;
            let exit = self.exit;
            self.add_edge(b, exit);
        }
    }

    /// Number of real (non-virtual) blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Node count including the virtual exit.
    pub fn n_nodes(&self) -> usize {
        self.blocks.len() + 1
    }

    /// Forward adjacency over all nodes (virtual exit has no succs).
    pub fn succ_adj(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = self.blocks.iter().map(|b| b.succs.clone()).collect();
        adj.push(Vec::new());
        adj
    }

    /// Reversed adjacency over all nodes (for post-dominators).
    pub fn pred_adj(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n_nodes()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                adj[s].push(b);
            }
        }
        adj
    }

    /// Block id owning `pc`, if in range.
    pub fn block_at(&self, pc: u32) -> Option<usize> {
        self.block_of.get(pc as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble("t", src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("nop\nnop\nhalt");
        assert_eq!(c.len(), 1);
        assert_eq!(c.blocks[0].len(), 3);
        assert_eq!(c.blocks[0].succs, vec![c.exit]);
        assert_eq!(c.n_edges, 1);
    }

    #[test]
    fn hammock_splits_into_diamond() {
        let c = cfg_of(
            r#"
            beq r1, r0, else_   ; 0
            addi r2, r2, 1      ; 1
            jmp join            ; 2
        else_:
            addi r3, r3, 1      ; 3
        join:
            add r4, r4, r2      ; 4
            halt                ; 5
            "#,
        );
        // blocks: [0], [1,2], [3], [4,5]
        assert_eq!(c.len(), 4);
        let b0 = &c.blocks[0];
        assert_eq!(b0.succs.len(), 2, "branch has two successors");
        assert!(c.blocks[c.block_of[4]].preds.len() == 2, "join has 2 preds");
        assert!(c.reachable.iter().all(|&r| r));
    }

    #[test]
    fn branch_to_fallthrough_gets_one_edge() {
        let c = cfg_of("beq r1, r0, 1\nhalt");
        assert_eq!(c.blocks[0].succs.len(), 1, "degenerate branch deduped");
    }

    #[test]
    fn fallthrough_off_end_flows_to_exit() {
        let c = cfg_of("nop\nbeq r1, r0, 0");
        // The branch block can fall off the end of the program.
        let last = c.block_of[1];
        assert!(c.blocks[last].falls_off_end);
        assert!(c.blocks[last].succs.contains(&c.exit));
    }

    #[test]
    fn unreachable_block_detected() {
        let c = cfg_of("jmp 2\nnop\nhalt");
        let dead = c.block_of[1];
        assert!(!c.reachable[dead]);
        assert!(c.reachable[c.block_of[2]]);
    }

    #[test]
    fn jr_targets_orphan_handlers() {
        // perlbmk-shaped dispatch: handlers are only reachable via jr.
        let c = cfg_of(
            r#"
            jmp start          ; 0
            addi r2, r2, 1     ; 1 handler 0
            jmp after          ; 2
            addi r3, r3, 1     ; 3 handler 1
            jmp after          ; 4
        start:
            li r9, 1           ; 5
            jr r9              ; 6
        after:
            halt               ; 7
            "#,
        );
        assert!(!c.indirect_fallback_all);
        let h0 = c.block_of[1];
        let h1 = c.block_of[3];
        let mut t = c.indirect_targets.clone();
        t.sort_unstable();
        assert_eq!(t, vec![h0, h1], "exactly the two handlers");
        let jr_block = c.block_of[6];
        assert!(c.blocks[jr_block].succs.contains(&h0));
        assert!(c.blocks[jr_block].succs.contains(&h1));
        assert!(c.reachable[h0] && c.reachable[h1]);
    }

    #[test]
    fn jr_without_orphans_falls_back_to_all_blocks() {
        let c = cfg_of("li r9, 0\njr r9\nhalt");
        // `halt` is fallthrough-unreachable but IS a direct... no: it has
        // no preds, so it is an orphan. Use a shape with no orphans:
        let c2 = cfg_of("li r9, 0\njr r9");
        assert!(c2.indirect_fallback_all);
        assert_eq!(c2.indirect_targets.len(), c2.len());
        // First shape: halt block is the single orphan.
        assert!(!c.indirect_fallback_all);
        assert_eq!(c.indirect_targets, vec![c.block_of[2]]);
    }

    #[test]
    fn empty_program_is_empty_cfg() {
        let c = Cfg::build(&Program::new("e"));
        assert!(c.is_empty());
        assert_eq!(c.n_edges, 0);
    }

    #[test]
    fn out_of_range_target_gets_no_edge() {
        let p = Program::from_insts(
            "t",
            vec![
                Inst::Br {
                    cond: cfir_isa::Cond::Eq,
                    rs1: 0,
                    rs2: 0,
                    target: 9,
                },
                Inst::Halt,
            ],
        );
        let c = Cfg::build(&p);
        assert_eq!(c.blocks[0].succs, vec![c.block_of[1]]);
    }
}
