//! Dominator / post-dominator torture tests: hand-built CFGs with
//! known answers, plus a seeded randomized cross-check of the
//! Cooper–Harvey–Kennedy implementation against a brute-force bitset
//! dataflow solver.

use cfir_analyze::dom::{reverse, DomTree};
use cfir_obs::Rng64;

/// Brute-force dominator sets: DOM[root] = {root},
/// DOM[v] = {v} ∪ ∩_{p ∈ preds(v)} DOM[p], iterated to fixpoint.
/// Returns per-node bitmasks (u32, so n <= 32); unreachable nodes get 0.
fn brute_force_dom(succs: &[Vec<usize>], root: usize) -> Vec<u32> {
    let n = succs.len();
    assert!(n <= 32);
    let preds = reverse(succs);
    // Reachability first, so unreachable preds don't poison the meet.
    let mut reach = vec![false; n];
    let mut stack = vec![root];
    reach[root] = true;
    while let Some(v) = stack.pop() {
        for &s in &succs[v] {
            if !reach[s] {
                reach[s] = true;
                stack.push(s);
            }
        }
    }
    let all: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut dom = vec![all; n];
    dom[root] = 1 << root;
    loop {
        let mut changed = false;
        for v in 0..n {
            if v == root || !reach[v] {
                continue;
            }
            let mut meet = all;
            for &p in &preds[v] {
                if reach[p] {
                    meet &= dom[p];
                }
            }
            let next = meet | (1 << v);
            if next != dom[v] {
                dom[v] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for v in 0..n {
        if !reach[v] {
            dom[v] = 0;
        }
    }
    dom
}

fn assert_matches_brute_force(succs: &[Vec<usize>], root: usize, what: &str) {
    let tree = DomTree::compute(succs, root);
    let sets = brute_force_dom(succs, root);
    for a in 0..succs.len() {
        for (b, &set) in sets.iter().enumerate() {
            let brute = set != 0 && set & (1 << a) != 0;
            assert_eq!(
                tree.dominates(a, b),
                brute,
                "{what}: dominates({a}, {b}) disagrees with brute force\nsuccs: {succs:?}"
            );
        }
    }
}

// ---- hand-built shapes ---------------------------------------------------

/// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (diamond).
#[test]
fn diamond() {
    let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
    let t = DomTree::compute(&succs, 0);
    assert_eq!(t.idom_of(3), Some(0), "join is dominated by the fork only");
    assert_eq!(t.idom_of(1), Some(0));
    assert_eq!(t.idom_of(2), Some(0));
    assert_matches_brute_force(&succs, 0, "diamond");
    // Post-dominators: reverse and root at the sink.
    let p = DomTree::compute(&reverse(&succs), 3);
    assert_eq!(p.idom_of(0), Some(3), "fork post-dominated by the join");
    assert_eq!(p.idom_of(1), Some(3));
}

/// Nested hammock: outer diamond whose then-arm is itself a diamond.
/// 0 -> {1, 5}; 1 -> {2, 3}; 2 -> 4; 3 -> 4; 4 -> 6; 5 -> 6.
#[test]
fn nested_hammock() {
    let succs = vec![
        vec![1, 5],
        vec![2, 3],
        vec![4],
        vec![4],
        vec![6],
        vec![6],
        vec![],
    ];
    let t = DomTree::compute(&succs, 0);
    assert_eq!(t.idom_of(4), Some(1), "inner join belongs to inner fork");
    assert_eq!(t.idom_of(6), Some(0), "outer join belongs to outer fork");
    let p = DomTree::compute(&reverse(&succs), 6);
    assert_eq!(
        p.idom_of(1),
        Some(4),
        "inner fork reconverges at inner join"
    );
    assert_eq!(
        p.idom_of(0),
        Some(6),
        "outer fork reconverges at outer join"
    );
    assert_matches_brute_force(&succs, 0, "nested hammock");
}

/// Loop with a break: 0 -> 1; 1 -> {2, 4}; 2 -> {3, 4}; 3 -> 1 (latch);
/// 4 is the exit. The break edge 2 -> 4 means 3 does NOT post-dominate 2.
#[test]
fn loop_with_break() {
    let succs = vec![vec![1], vec![2, 4], vec![3, 4], vec![1], vec![]];
    let t = DomTree::compute(&succs, 0);
    assert_eq!(t.idom_of(3), Some(2));
    assert!(t.dominates(1, 3), "header dominates the latch");
    let p = DomTree::compute(&reverse(&succs), 4);
    assert_eq!(p.idom_of(2), Some(4), "break edge skips the latch");
    assert!(!p.dominates(3, 2), "latch must not post-dominate the break");
    assert_eq!(p.idom_of(3), Some(1), "latch always re-enters the header");
    assert_matches_brute_force(&succs, 0, "loop with break");
}

/// Multi-entry ("irreducible-ish") region: both 1 and 2 jump into the
/// shared body {3, 4}, which cycles. No single header dominates it.
#[test]
fn irreducible_multi_entry() {
    let succs = vec![vec![1, 2], vec![3], vec![4], vec![4, 5], vec![3, 5], vec![]];
    let t = DomTree::compute(&succs, 0);
    assert_eq!(t.idom_of(3), Some(0), "entered from both arms");
    assert_eq!(t.idom_of(4), Some(0), "entered from both arms");
    assert!(!t.dominates(3, 4) && !t.dominates(4, 3));
    let p = DomTree::compute(&reverse(&succs), 5);
    assert_eq!(p.idom_of(0), Some(5));
    assert_matches_brute_force(&succs, 0, "irreducible multi-entry");
}

// ---- randomized self-check ----------------------------------------------

/// Random graph on `n` nodes: a spine 0 -> 1 -> ... guarantees
/// reachability; extra edges (including back edges) are sprinkled on
/// top. Dominators AND post-dominators (dom of the reversed graph,
/// rooted at an absorbing exit) must match the brute-force solver.
#[test]
fn randomized_against_brute_force() {
    let mut rng = Rng64::seed_from_u64(0xD04_1D04);
    for round in 0..200 {
        let n = 3 + (rng.gen_range(0, 10) as usize); // 3..=12
        let exit = n - 1;
        let mut succs: Vec<Vec<usize>> = (0..n)
            .map(|v| if v < n - 1 { vec![v + 1] } else { Vec::new() })
            .collect();
        let extra = rng.gen_range(0, 2 * n as u64) as usize;
        for _ in 0..extra {
            let a = rng.gen_range(0, (n - 1) as u64) as usize; // exit stays absorbing
            let b = rng.gen_range(0, n as u64) as usize;
            if !succs[a].contains(&b) {
                succs[a].push(b);
            }
        }
        assert_matches_brute_force(&succs, 0, &format!("random round {round} (dom)"));
        // Post-dominators: every node reaches `exit` via the spine, so
        // the reversed graph rooted there covers all nodes.
        assert_matches_brute_force(
            &reverse(&succs),
            exit,
            &format!("random round {round} (pdom)"),
        );
    }
}
