//! Dataflow torture tests: hand-built shapes with known answers, plus
//! a seeded randomized cross-check of the iterative reaching-defs /
//! liveness solver against brute-force all-paths reachability solvers
//! (mirrors the dom/pdom torture tests).

use cfir_analyze::cfg::Cfg;
use cfir_analyze::dataflow::Dataflow;
use cfir_isa::{AluOp, Cond, Inst, Program, NUM_LOGICAL_REGS};
use cfir_obs::Rng64;

/// Brute-force reaching definitions, one def at a time: def `d` of
/// register `r` in block `B` reaches the entry of block `b` iff `d`
/// survives to the end of `B` (no later def of `r` in `B`) and there
/// is a path `B → … → b` whose interior blocks never define `r`.
/// Plain BFS over "transparent" blocks — independent of the bitset
/// fixpoint under test.
fn brute_force_reach_in(prog: &Program, cfg: &Cfg, df: &Dataflow) -> Vec<Vec<bool>> {
    let nb = cfg.len();
    let defines = |b: usize, reg: u8| -> bool {
        cfg.blocks[b]
            .pcs()
            .any(|pc| prog.insts[pc as usize].dest() == Some(reg))
    };
    let mut reach = vec![vec![false; df.n_defs()]; nb];
    for (id, d) in df.defs.iter().enumerate() {
        // Starting frontier: blocks whose *entry* the def reaches
        // directly. Entry pseudo-defs start live at block 0; a real
        // def must first survive its own block.
        let mut frontier: Vec<usize> = Vec::new();
        if d.is_entry() {
            if nb > 0 && cfg.reachable[0] {
                reach[0][id] = true;
                if !defines(0, d.reg) {
                    frontier.push(0);
                }
            }
        } else {
            let home = cfg.block_of[d.pc as usize];
            if !cfg.reachable[home] {
                continue;
            }
            let survives = !cfg.blocks[home]
                .pcs()
                .any(|pc| pc > d.pc && prog.insts[pc as usize].dest() == Some(d.reg));
            if survives {
                for &s in &cfg.blocks[home].succs {
                    if s != cfg.exit && cfg.reachable[s] && !reach[s][id] {
                        reach[s][id] = true;
                        if !defines(s, d.reg) {
                            frontier.push(s);
                        }
                    }
                }
            }
        }
        // BFS through blocks transparent for the register.
        while let Some(b) = frontier.pop() {
            for &s in &cfg.blocks[b].succs {
                if s != cfg.exit && cfg.reachable[s] && !reach[s][id] {
                    reach[s][id] = true;
                    if !defines(s, d.reg) {
                        frontier.push(s);
                    }
                }
            }
        }
    }
    reach
}

/// Brute-force liveness: register `r` is live at the entry of `b` iff
/// some block with an upward-exposed use of `r` is reachable from `b`
/// through blocks transparent for `r` (reverse BFS from the use
/// sites) — again a different algorithm than the backward fixpoint.
fn brute_force_live_in(prog: &Program, cfg: &Cfg) -> Vec<u64> {
    let nb = cfg.len();
    let mut live = vec![0u64; nb];
    for reg in 0..NUM_LOGICAL_REGS as u8 {
        let mut gen = vec![false; nb];
        let mut transparent = vec![false; nb];
        for b in 0..nb {
            let mut defined = false;
            let mut used_first = false;
            for pc in cfg.blocks[b].pcs() {
                let inst = prog.insts[pc as usize];
                if !defined && inst.sources().into_iter().flatten().any(|s: u8| s == reg) {
                    used_first = true;
                }
                if inst.dest() == Some(reg) {
                    defined = true;
                }
            }
            gen[b] = used_first;
            transparent[b] = !defined;
        }
        // Reverse BFS: live-in at every gen block, propagated to
        // predecessors whose fall-into block is transparent.
        let mut live_in = gen.clone();
        let mut frontier: Vec<usize> = (0..nb).filter(|&b| gen[b]).collect();
        while let Some(b) = frontier.pop() {
            for &p in &cfg.blocks[b].preds {
                if !live_in[p] && transparent[p] {
                    live_in[p] = true;
                    frontier.push(p);
                }
            }
            // A predecessor that defines the register still has the
            // register live *out*, but not live in; only transparent
            // blocks propagate further. Nothing to do here for opaque
            // preds: the solver-under-test comparison is on live_in.
        }
        for b in 0..nb {
            if live_in[b] {
                live[b] |= 1u64 << reg;
            }
        }
    }
    live
}

fn assert_matches_brute_force(prog: &Program, what: &str) {
    let cfg = Cfg::build(prog);
    let df = Dataflow::compute(prog, &cfg);
    let brute_reach = brute_force_reach_in(prog, &cfg, &df);
    for (b, brute_row) in brute_reach.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        for (id, &brute_bit) in brute_row.iter().enumerate() {
            assert_eq!(
                df.reach_in[b].contains(id),
                brute_bit,
                "{what}: reach_in[{b}] bit {id} ({:?}) disagrees with brute force",
                df.defs[id]
            );
        }
    }
    let brute_live = brute_force_live_in(prog, &cfg);
    for (b, &brute_mask) in brute_live.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        assert_eq!(
            df.live_in[b], brute_mask,
            "{what}: live_in[{b}] disagrees with brute force \
             (iterative {:#x}, brute {:#x})",
            df.live_in[b], brute_mask
        );
    }
}

// ---- hand-built shapes ---------------------------------------------------

fn asm(src: &str) -> Program {
    cfir_isa::assemble("t", src).unwrap()
}

#[test]
fn diamond_with_one_sided_def() {
    assert_matches_brute_force(
        &asm(r#"
            li r1, 1          ; 0
            beq r1, r0, else_ ; 1
            li r2, 5          ; 2
            jmp join          ; 3
        else_:
            li r3, 7          ; 4
        join:
            add r4, r2, r3    ; 5
            halt              ; 6
        "#),
        "diamond with one-sided defs",
    );
}

#[test]
fn loop_with_break_and_carried_defs() {
    assert_matches_brute_force(
        &asm(r#"
            li r1, 0          ; 0
            li r2, 8          ; 1
        loop:
            addi r1, r1, 1    ; 2
            beq r1, r2, out   ; 3
            addi r3, r3, 2    ; 4
            blt r1, r2, loop  ; 5
        out:
            add r4, r1, r3    ; 6
            halt              ; 7
        "#),
        "loop with break",
    );
}

#[test]
fn nested_hammocks_share_a_join() {
    assert_matches_brute_force(
        &asm(r#"
            beq r1, r0, outer ; 0
            beq r2, r0, inner ; 1
            li r3, 1          ; 2
        inner:
            li r4, 2          ; 3
        outer:
            add r5, r3, r4    ; 4
            halt              ; 5
        "#),
        "nested hammocks",
    );
}

#[test]
fn dead_code_behind_jmp_is_ignored() {
    assert_matches_brute_force(
        &asm("li r1, 1\njmp 4\nli r2, 2\nadd r3, r2, r1\nhalt"),
        "unreachable block",
    );
}

// ---- randomized self-check ----------------------------------------------

/// Random programs: a body of random ALU/load/store/branch
/// instructions over a small register pool, with every branch target
/// kept in range and a final `halt`. The CFG builder tolerates any
/// shape this produces (fallthrough off the end included), so the
/// solvers just have to agree.
#[test]
fn randomized_against_brute_force() {
    let mut rng = Rng64::seed_from_u64(0xDA7A_F10D);
    for round in 0..200 {
        let n = 4 + rng.gen_range(0, 24) as usize; // 4..=27 insts + halt
        let mut insts: Vec<Inst> = Vec::with_capacity(n + 1);
        for _ in 0..n {
            let reg = |r: u64| r as u8;
            let pick = rng.gen_range(0, 10);
            insts.push(match pick {
                0 | 1 => Inst::Li {
                    rd: reg(rng.gen_range(1, 8)),
                    imm: rng.gen_range(0, 100) as i64,
                },
                2..=4 => Inst::Alu {
                    op: AluOp::Add,
                    rd: reg(rng.gen_range(1, 8)),
                    rs1: reg(rng.gen_range(0, 8)),
                    rs2: reg(rng.gen_range(0, 8)),
                },
                5 => Inst::Ld {
                    rd: reg(rng.gen_range(1, 8)),
                    base: reg(rng.gen_range(0, 8)),
                    offset: 0,
                },
                6 => Inst::St {
                    src: reg(rng.gen_range(0, 8)),
                    base: reg(rng.gen_range(0, 8)),
                    offset: 0,
                },
                7 | 8 => Inst::Br {
                    cond: Cond::Eq,
                    rs1: reg(rng.gen_range(0, 8)),
                    rs2: reg(rng.gen_range(0, 8)),
                    target: rng.gen_range(0, (n + 1) as u64) as u32,
                },
                _ => Inst::Jmp {
                    target: rng.gen_range(0, (n + 1) as u64) as u32,
                },
            });
        }
        insts.push(Inst::Halt);
        let prog = Program::from_insts("rand", insts);
        assert_matches_brute_force(&prog, &format!("random round {round}"));
    }
}
