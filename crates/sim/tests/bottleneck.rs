//! Integration tests for the bottleneck subsystem: the critical path
//! must tile its span exactly, the what-if projections must bound the
//! measured run and order correctly, and — the validation hook — the
//! perfect-branch-prediction projection must land within a documented
//! tolerance of an *actual* oracle-BP simulation of the same workload.

use cfir_sim::{Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, WorkloadSpec};

const WIDTH: u64 = 8;

/// The documented validation tolerance: the perfect-BP *projection*
/// (a DAG re-walk that keeps every observed latency except squash
/// windows and refetch gaps) and the *oracle-BP machine* (which
/// re-times the whole run: no pollution, different cache interleaving,
/// same window limits) measure the same limit two different ways.
/// The gate `LOW <= projected / oracle <= HIGH` is asymmetric:
/// exceeding HIGH would falsify the speed limit (the real oracle
/// machine beat it), while undershooting LOW only means the projection
/// is optimistic — it replays observed latencies from the polluted
/// run, where wrong-path execution prefetched right-path cache lines.
/// See DESIGN.md ("Bottleneck analysis") for the measured per-kernel
/// ratios behind both bounds (this matches the suite-level gate in
/// `crates/bench/src/experiments.rs`).
const ORACLE_RATIO_HIGH: f64 = 1.25;
const ORACLE_RATIO_LOW: f64 = 0.125;

fn run_cfg(bench: &str, mode: Mode, lifecycle: bool, oracle_bp: bool) -> SimStats {
    let spec = WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 5,
    };
    let w = by_name(bench, spec).expect("known benchmark");
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(30_000);
    cfg.cosim_check = false;
    cfg.record_lifecycle = lifecycle;
    cfg.perfect_branch_prediction = oracle_bp;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    p.stats.clone()
}

#[test]
fn critical_path_tiles_and_projections_bound_the_run() {
    for (bench, mode) in [
        ("bzip2", Mode::WideBus),
        ("bzip2", Mode::Ci),
        ("mcf", Mode::Ci),
        ("twolf", Mode::Vect),
    ] {
        let s = run_cfg(bench, mode, true, false);
        let b = s
            .bottleneck
            .as_ref()
            .unwrap_or_else(|| panic!("{bench} {mode:?}: lifecycle run must yield a report"));
        assert_eq!(s.lifecycle_dropped, 0, "{bench} {mode:?}: unbounded ring");
        assert!(s.lifecycle_records > 0, "{bench} {mode:?}");

        // Exact tiling: the per-class attribution sums to the span.
        let attributed: u64 = b.crit.classes.iter().sum();
        assert_eq!(attributed, b.crit.span, "{bench} {mode:?}: tiling");
        assert!(b.crit.span <= s.cycles, "{bench} {mode:?}");
        assert!(!b.crit.top.is_empty(), "{bench} {mode:?}");

        // Every projection bounds the measured run; zero-set supersets
        // are monotone.
        let get = |k: &str| {
            b.whatif
                .iter()
                .find(|r| r.scenario == k)
                .unwrap_or_else(|| panic!("{bench} {mode:?}: missing scenario {k}"))
                .projected_cycles
        };
        for row in &b.whatif {
            assert!(
                row.projected_cycles <= s.cycles,
                "{bench} {mode:?} {}: {} > measured {}",
                row.scenario,
                row.projected_cycles,
                s.cycles
            );
            // The commit-bandwidth floor keeps projections physical.
            assert!(
                row.projected_cycles >= s.committed / WIDTH,
                "{bench} {mode:?} {}",
                row.scenario
            );
        }
        assert!(
            get("perfect_everything") <= get("perfect_bp"),
            "{bench} {mode:?}"
        );
        assert!(
            get("perfect_everything") <= get("perfect_ci_reuse"),
            "{bench} {mode:?}"
        );
        assert!(
            get("perfect_ci_reuse") <= get("infinite_replica_buffer"),
            "{bench} {mode:?}"
        );
    }
}

#[test]
fn perfect_bp_projection_validates_against_a_real_oracle_run() {
    for bench in ["bzip2", "mcf"] {
        let measured = run_cfg(bench, Mode::WideBus, true, false);
        let projected = measured
            .bottleneck
            .as_ref()
            .expect("lifecycle run yields a report")
            .whatif
            .iter()
            .find(|r| r.scenario == "perfect_bp")
            .expect("perfect_bp scenario present")
            .projected_cycles;
        let oracle = run_cfg(bench, Mode::WideBus, false, true);
        eprintln!(
            "[validate] {bench}: measured={} projected_bp={} oracle_bp={} ratio={:.3}",
            measured.cycles,
            projected,
            oracle.cycles,
            projected as f64 / oracle.cycles as f64
        );
        // The projection is a speed limit: it must bound the run it
        // came from...
        assert!(projected <= measured.cycles, "{bench}");
        // ...and land within the documented tolerance of the machine
        // that actually has perfect branch prediction.
        let ratio = projected as f64 / oracle.cycles as f64;
        assert!(
            (ORACLE_RATIO_LOW..=ORACLE_RATIO_HIGH).contains(&ratio),
            "{bench}: projection {projected} vs oracle {} (ratio {ratio:.3}) \
             outside documented tolerance [{ORACLE_RATIO_LOW}, {ORACLE_RATIO_HIGH}]",
            oracle.cycles
        );
    }
}
