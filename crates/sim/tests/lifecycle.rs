//! Integration tests for the per-instruction lifecycle recorder: stage
//! timestamps must be monotonic, squashes must postdate dispatch, the
//! per-instruction wait-cycle sums must reconcile *exactly* with the
//! aggregate stall attribution, and a real run's Konata trace must
//! round-trip through the parser.

use cfir_obs::stall::{ALL_CAUSES, NUM_CAUSES};
use cfir_obs::{parse_konata, Fate, LifecycleLog};
use cfir_sim::{Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, WorkloadSpec};

/// Run `bench` in `mode` with lifecycle tracing on from cycle 0 and an
/// effectively-unbounded ring, returning the stats and a snapshot of
/// the recorder's contents.
fn run(bench: &str, mode: Mode) -> (SimStats, Snapshot) {
    let spec = WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 5,
    };
    let w = by_name(bench, spec).expect("known benchmark");
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(20_000);
    cfg.cosim_check = false;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.enable_lifecycle(1 << 22);
    p.run();
    let snap = Snapshot::of(p.lifecycle().expect("lifecycle enabled"));
    (p.stats.clone(), snap)
}

struct Snapshot {
    records: Vec<cfir_obs::InstRecord>,
    frontend: [u64; NUM_CAUSES],
    dropped: u64,
    konata: String,
}

impl Snapshot {
    fn of(log: &LifecycleLog) -> Snapshot {
        Snapshot {
            records: log.records().cloned().collect(),
            frontend: *log.frontend_waits(),
            dropped: log.dropped(),
            konata: log.render_konata(),
        }
    }
}

#[test]
fn stage_cycles_are_monotonic_and_squashes_postdate_dispatch() {
    for bench in ["gzip", "mcf"] {
        for mode in [Mode::Scalar, Mode::Ci] {
            let (_, snap) = run(bench, mode);
            assert_eq!(snap.dropped, 0, "{bench} {mode:?}: ring must not drop");
            assert!(!snap.records.is_empty(), "{bench} {mode:?}");
            let mut committed = 0u64;
            for r in &snap.records {
                let stages = r.stage_cycles();
                for w in stages.windows(2) {
                    assert!(
                        w[0].1 <= w[1].1,
                        "{bench} {mode:?} lid {}: stage {} at {} after {} at {}",
                        r.lid,
                        w[0].0,
                        w[0].1,
                        w[1].0,
                        w[1].1
                    );
                }
                match r.fate {
                    Fate::Committed => {
                        committed += 1;
                        assert!(r.retire().is_some(), "{bench} {mode:?} lid {}", r.lid);
                    }
                    Fate::Squashed => {
                        if let (Some(d), Some(sq)) = (r.dispatch(), r.retire()) {
                            assert!(
                                sq >= d,
                                "{bench} {mode:?} lid {}: squashed at {sq} before dispatch {d}",
                                r.lid
                            );
                        }
                    }
                    Fate::InFlight => {}
                }
            }
            assert!(committed > 0, "{bench} {mode:?}: no committed records");
        }
    }
}

#[test]
fn wait_sums_reconcile_exactly_with_stall_attribution() {
    for bench in ["gzip", "mcf"] {
        for mode in [Mode::Scalar, Mode::Ci] {
            let (stats, snap) = run(bench, mode);
            assert_eq!(snap.dropped, 0, "{bench} {mode:?}");
            for cause in ALL_CAUSES {
                let per_inst: u64 = snap.records.iter().map(|r| r.wait(cause)).sum::<u64>()
                    + snap.frontend[cause as usize];
                assert_eq!(
                    per_inst,
                    stats.stall.get(cause),
                    "{bench} {mode:?}: cause `{}` diverges",
                    cause.key()
                );
            }
            // The recorder's own bookkeeping agrees with the stats.
            assert_eq!(
                stats.lifecycle_records,
                snap.records.len() as u64,
                "{bench} {mode:?}"
            );
        }
    }
}

#[test]
fn konata_trace_of_a_real_run_round_trips() {
    let (stats, snap) = run("gzip", Mode::Ci);
    assert!(snap.konata.starts_with("Kanata\t0004"));
    let trace = parse_konata(&snap.konata).expect("round-trip parse");
    assert_eq!(trace.insts.len(), snap.records.len());
    // Lane 0 only: delivered replicas (lane 1) also carry fate=commit.
    let committed = trace
        .insts
        .iter()
        .filter(|i| i.tid == 0 && i.fate == Fate::Committed)
        .count() as u64;
    assert_eq!(committed, stats.committed);
    // Squashed instructions carry the flush retire marker.
    assert!(
        trace
            .insts
            .iter()
            .filter(|i| i.fate == Fate::Squashed)
            .all(|i| i.flushed),
        "squashed instructions must use R-type 1"
    );
    // A CI run must show reused instructions in the trace.
    assert!(
        trace.insts.iter().any(|i| i.reused),
        "expected reused instructions in a Ci-mode gzip run"
    );
}
