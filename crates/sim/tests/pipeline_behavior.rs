//! Behavioural tests of pipeline corner paths: recovery, indirect
//! jumps, wide-bus grouping, MSHR limits, commit logging, and the
//! store-forwarding/disambiguation rules — all with the golden-model
//! oracle armed.

use cfir_emu::MemImage;
use cfir_isa::assemble;
use cfir_sim::{Mode, Pipeline, RegFileSize, RunExit, SimConfig};

fn cfg(mode: Mode) -> SimConfig {
    let mut c = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(u64::MAX >> 1);
    c.cosim_check = true;
    c
}

#[test]
fn mispredicted_loop_exit_recovers() {
    // The loop branch is taken 99 times then falls through: the final
    // not-taken is a guaranteed misprediction for a warmed-up gshare.
    let p = assemble(
        "t",
        "li r1, 0\nli r2, 99\ntop:\naddi r1, r1, 1\nblt r1, r2, top\nli r3, 7\nhalt",
    )
    .unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.arch_reg(3), 7);
    assert!(pipe.stats.mispredicts >= 1);
    assert!(
        pipe.stats.squashed > 0,
        "the wrong path past the loop was flushed"
    );
}

#[test]
fn indirect_jump_learns_its_target() {
    // A jr with a stable target mispredicts once, then the jr-BTB
    // learns it.
    let p = assemble(
        "t",
        r#"
            li r5, 6          ; target: the addi below
            li r1, 0
            li r2, 50
        top:
            jr r5
            halt              ; never reached
            addi r1, r1, 1    ; pc 5? adjust: count instructions!
            blt r1, r2, top
            halt
        "#,
    )
    .unwrap();
    // pc layout: 0 li,1 li,2 li,3 jr,4 halt,5 addi,6 blt,7 halt -> r5 must be 5
    let p = assemble(
        "t",
        "li r5, 5\nli r1, 0\nli r2, 50\njr r5\nhalt\naddi r1, r1, 1\nblt r1, r2, 3\nhalt",
    )
    .unwrap_or(p);
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.arch_reg(1), 50);
}

#[test]
fn store_to_load_forwarding_across_the_window() {
    // A store immediately followed by a dependent load, repeatedly:
    // forwarding must supply the value without waiting for commit.
    let p = assemble(
        "t",
        r#"
            li r1, 8192
            li r2, 0
            li r3, 200
        top:
            st r2, 0(r1)
            ld r4, 0(r1)
            add r5, r5, r4
            addi r2, r2, 1
            blt r2, r3, top
            halt
        "#,
    )
    .unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.arch_reg(5), (0..200).sum::<u64>());
}

#[test]
fn wide_bus_groups_same_line_loads() {
    // Four loads from one 32-byte line per iteration: the wide bus
    // serves them with far fewer L1 accesses than the scalar ports.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 300
    top:
        ld r4, 0(r1)
        ld r5, 8(r1)
        ld r6, 16(r1)
        ld r7, 24(r1)
        add r8, r4, r5
        add r8, r8, r6
        add r8, r8, r7
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut scal = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    scal.run();
    let mut wb = Pipeline::new(&p, MemImage::new(), cfg(Mode::WideBus));
    wb.run();
    assert!(
        wb.stats.l1d_accesses * 2 < scal.stats.l1d_accesses,
        "wide {} vs scalar {}",
        wb.stats.l1d_accesses,
        scal.stats.l1d_accesses
    );
    assert!(wb.stats.cycles <= scal.stats.cycles);
}

#[test]
fn mshr_limit_throttles_misses() {
    // A stream of independent loads, each to a fresh line (all miss):
    // with 16 MSHRs the pipeline still completes correctly.
    let mut src = String::from("li r1, 1048576\n");
    for i in 0..64 {
        let r = 2 + (i % 50);
        src.push_str(&format!("ld r{r}, {}(r1)\n", i * 4096));
    }
    src.push_str("halt");
    let p = assemble("t", &src).unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.stats.l1d_misses, 64);
}

#[test]
fn commit_log_records_the_tail() {
    let p = assemble("t", "li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt").unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    pipe.enable_commit_log(2);
    assert_eq!(pipe.run(), RunExit::Halted);
    let log: Vec<_> = pipe.commit_log().collect();
    assert_eq!(log.len(), 2, "ring buffer keeps the last two");
    assert_eq!(log[0].pc, 2);
    assert_eq!(log[0].value, 3);
    assert_eq!(log[1].pc, 3, "halt is last");
}

#[test]
fn deep_nested_hammocks_stay_correct_in_ci() {
    // Three nested data-dependent hammocks per iteration.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 400
    top:
        muli r4, r2, 8
        andi r4, r4, 2047
        add r4, r4, r1
        ld r5, 0(r4)
        andi r6, r5, 1
        beq r6, r0, l1
        andi r7, r5, 2
        beq r7, r0, l2
        addi r10, r10, 1
        jmp j
    l2: addi r11, r11, 1
        jmp j
    l1: andi r8, r5, 4
        beq r8, r0, l3
        addi r12, r12, 1
        jmp j
    l3: addi r13, r13, 1
    j:  add r14, r14, r5
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    for i in 0..256u64 {
        mem.write(4096 + i * 8, (i * 2654435761) % 8);
    }
    for mode in [Mode::Scalar, Mode::Ci, Mode::Vect] {
        let mut pipe = Pipeline::new(&p, mem.clone(), cfg(mode));
        assert_eq!(pipe.run(), RunExit::Halted, "{mode:?}");
        assert_eq!(
            pipe.arch_reg(10) + pipe.arch_reg(11) + pipe.arch_reg(12) + pipe.arch_reg(13),
            400,
            "{mode:?}: exactly one path per iteration"
        );
    }
}

#[test]
fn backward_hammock_inside_loop_is_safe() {
    // A data-dependent *backward* branch (retry-style) — exercises the
    // backward-branch RCP heuristic under the mechanism.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 300
    top:
        muli r4, r2, 8
        andi r4, r4, 1023
        add r4, r4, r1
        ld r5, 0(r4)
    retry:
        addi r6, r6, 1
        andi r7, r6, 3
        bne r7, r0, retry   ; spins 0..3 times depending on alignment
        add r8, r8, r5
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    for i in 0..128u64 {
        mem.write(4096 + i * 8, i);
    }
    for mode in [Mode::Scalar, Mode::Ci] {
        let mut pipe = Pipeline::new(&p, mem.clone(), cfg(mode));
        assert_eq!(pipe.run(), RunExit::Halted, "{mode:?}");
    }
}

#[test]
fn division_heavy_code_uses_long_latency_units() {
    let p = assemble(
        "t",
        "li r1, 1000000\nli r2, 7\nli r3, 0\nli r5, 40\ntop:\ndiv r1, r1, r2\naddi r3, r3, 1\nblt r3, r5, top\nhalt",
    )
    .unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    // 40 dependent 12-cycle divides dominate: at least 480 cycles.
    assert!(pipe.stats.cycles >= 480, "cycles = {}", pipe.stats.cycles);
}

#[test]
fn fp_pipeline_latencies_respected() {
    let one = 1.0f64.to_bits() as i64;
    let src = format!(
        "li r1, {one}\nli r2, {one}\nli r3, 0\nli r4, 30\ntop:\nfmul r2, r2, r1\nfadd r2, r2, r1\naddi r3, r3, 1\nblt r3, r4, top\nhalt"
    );
    let p = assemble("t", &src).unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    // 30 iterations of dependent fmul(4)+fadd(2) >= 180 cycles.
    assert!(pipe.stats.cycles >= 180, "cycles = {}", pipe.stats.cycles);
    assert_eq!(f64::from_bits(pipe.arch_reg(2)), 31.0);
}

#[test]
fn reuse_survives_a_misprediction() {
    // The mechanism's raison d'être: after a mispredicted hammock, the
    // re-fetched CI instructions find their replicas un-squashed. We
    // assert reuse still happens in a loop where every iteration's
    // branch direction is random.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 4000
    top:
        muli r4, r2, 8
        andi r4, r4, 8191
        add r4, r4, r1
        ld r5, 0(r4)
        beq r5, r0, e
        addi r6, r6, 1
        jmp j
    e:  addi r7, r7, 1
    j:  add r8, r8, r5
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    let mut x = 12345u64;
    for i in 0..1024u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        mem.write(4096 + i * 8, (x >> 60) & 1);
    }
    let mut pipe = Pipeline::new(&p, mem, cfg(Mode::Ci));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert!(
        pipe.stats.mispredicts > 200,
        "branches must actually mispredict"
    );
    assert!(
        pipe.stats.committed_reuse > 500,
        "reuse must survive mispredictions: {}",
        pipe.stats.committed_reuse
    );
    let (_, _, reused) = pipe.stats.events.fractions();
    assert!(reused > 0.2, "Figure 5's black bar: {reused:.2}");
}

#[test]
fn perfect_branch_prediction_eliminates_mispredicts() {
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 500
    top:
        muli r4, r2, 8
        andi r4, r4, 1023
        add r4, r4, r1
        ld r5, 0(r4)
        beq r5, r0, e
        addi r6, r6, 1
        jmp j
    e:  addi r7, r7, 1
    j:  addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    let mut x = 0x12345678u64;
    for i in 0..128u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write(4096 + i * 8, (x >> 33) & 1);
    }
    let mut c = cfg(Mode::Scalar);
    c.perfect_branch_prediction = true;
    let mut oracle = Pipeline::new(&p, mem.clone(), c);
    assert_eq!(oracle.run(), RunExit::Halted);
    assert_eq!(oracle.stats.mispredicts, 0, "the oracle never mispredicts");
    assert_eq!(oracle.stats.squashed, 0, "so nothing is ever squashed");
    assert_eq!(oracle.arch_reg(6) + oracle.arch_reg(7), 500);

    let mut real = Pipeline::new(&p, mem, cfg(Mode::Scalar));
    real.run();
    assert!(real.stats.mispredicts > 50);
    assert!(
        oracle.stats.cycles < real.stats.cycles,
        "oracle {} must beat gshare {}",
        oracle.stats.cycles,
        real.stats.cycles
    );
}

#[test]
fn stats_accessors_are_consistent() {
    let p = assemble(
        "t",
        "li r1, 0\nli r2, 60\ntop:\naddi r1, r1, 1\nblt r1, r2, top\nhalt",
    )
    .unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    pipe.run();
    let s = &pipe.stats;
    assert_eq!(s.committed, 2 + 60 * 2 + 1);
    assert!(s.fetched >= s.committed, "fetch includes wrong paths");
    assert!((s.ipc() - s.committed as f64 / s.cycles as f64).abs() < 1e-12);
    assert!(s.branches >= 60);
    assert!(
        s.reg_occupancy_sum >= s.cycles * 65,
        "arch mappings always live"
    );
}

#[test]
fn lsq_full_stalls_dispatch_but_completes() {
    // More in-flight memory ops than LSQ entries: a long chain of
    // independent stores behind a slow load.
    let mut src = String::from("li r1, 1048576\nld r2, 0(r1)\n"); // cold miss: 100 cycles
    for i in 0..100 {
        src.push_str(&format!("st r1, {}(r1)\n", 8 * i + 8));
    }
    src.push_str("halt");
    let p = assemble("t", &src).unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.stats.stores, 100);
}

#[test]
fn window_full_stalls_behind_long_latency_head() {
    // A 100-cycle miss at the head with >256 independent instructions
    // behind it: the window fills, dispatch stalls, everything retires.
    let mut src = String::from("li r1, 1048576\nld r2, 0(r1)\nadd r3, r2, r2\n");
    for i in 0..300 {
        let r = 4 + (i % 56);
        src.push_str(&format!("addi r{r}, r{r}, 1\n"));
    }
    src.push_str("halt");
    let p = assemble("t", &src).unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    assert_eq!(pipe.stats.committed, 304);
}

#[test]
fn store_conflict_triggers_full_flush_and_stays_correct() {
    // ci mode: a loop whose store writes the element the replica engine
    // just pre-loaded. The coherence check must fire, flush, and the
    // result must still be architecturally exact.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 600
    top:
        muli r4, r2, 8
        andi r4, r4, 511
        add r4, r4, r1
        ld r5, 0(r4)
        beq r5, r0, e
        addi r6, r6, 1
        jmp j
    e:  addi r7, r7, 1
    j:  add r8, r8, r5
        addi r9, r2, 1
        andi r9, r9, 511
        muli r9, r9, 8
        add r9, r9, r1
        andi r10, r2, 31
        bne r10, r0, s
        st r6, 0(r9)        ; dirty the next element
    s:  addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    let mut x = 7u64;
    for i in 0..64u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        mem.write(4096 + i * 8, (x >> 62) & 1);
    }
    // Reference result from the emulator.
    let mut emu = cfir_emu::Emulator::new(mem.clone());
    emu.run(&p, 50_000_000);
    assert!(emu.halted);

    let mut pipe = Pipeline::new(&p, mem, cfg(Mode::Ci));
    assert_eq!(pipe.run(), RunExit::Halted);
    for r in 0..64u8 {
        assert_eq!(pipe.arch_reg(r), emu.reg(r), "r{r}");
    }
    assert!(
        pipe.stats.store_conflicts > 0,
        "the ahead-store must hit a replica range at least once"
    );
}

#[test]
fn icache_misses_slow_cold_code() {
    // 600 straight-line instructions: every 64-byte line (16 insts)
    // costs a 100-cycle cold miss.
    let mut src = String::new();
    for i in 0..600 {
        let r = 1 + (i % 60);
        src.push_str(&format!("li r{r}, {i}\n"));
    }
    src.push_str("halt");
    let p = assemble("t", &src).unwrap();
    let mut pipe = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar));
    assert_eq!(pipe.run(), RunExit::Halted);
    let lines = 601_u64.div_ceil(16);
    assert!(
        pipe.stats.cycles >= lines * 100,
        "{} cycles for {} cold lines",
        pipe.stats.cycles,
        lines
    );
}

#[test]
fn interval_samples_record_progress() {
    let p = assemble(
        "t",
        "li r1, 0\nli r2, 30000\ntop:\naddi r1, r1, 1\nblt r1, r2, top\nhalt",
    )
    .unwrap();
    let mut c = cfg(Mode::Scalar);
    c.interval_cycles = 1000;
    let mut pipe = Pipeline::new(&p, MemImage::new(), c);
    assert_eq!(pipe.run(), RunExit::Halted);
    let iv = &pipe.stats.intervals;
    assert!(
        iv.len() >= 3,
        "several samples over {} cycles",
        pipe.stats.cycles
    );
    for w in iv.windows(2) {
        assert!(w[1].cycle > w[0].cycle);
        assert!(w[1].committed >= w[0].committed);
    }
    let total: f64 = pipe.stats.ipc();
    let mid = iv[iv.len() / 2].interval_ipc;
    assert!(
        (mid - total).abs() / total < 0.5,
        "steady loop: interval ~ total IPC"
    );
}

#[test]
fn specmem_mode_injects_copy_uops() {
    // In the §2.4.6 configuration every delivered reuse goes through a
    // copy uop: the stat must track it and the run must stay exact.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 1500
    top:
        muli r4, r2, 8
        andi r4, r4, 2047
        add r4, r4, r1
        ld r5, 0(r4)
        beq r5, r0, e
        addi r6, r6, 1
        jmp j
    e:  addi r7, r7, 1
    j:  add r8, r8, r5
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut mem = MemImage::new();
    let mut x = 3u64;
    for i in 0..256u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
        mem.write(4096 + i * 8, (x >> 61) & 1);
    }
    let mut c = cfg(Mode::Ci);
    c.mech = cfir_core::MechConfig::paper_with_specmem(256);
    let mut pipe = Pipeline::new(&p, mem.clone(), c);
    assert_eq!(pipe.run(), RunExit::Halted);
    assert!(
        pipe.stats.committed_reuse > 0,
        "reuse still works through the copy path"
    );
    assert!(
        pipe.stats.specmem_copies > 0,
        "every monolithic-free delivery must inject a copy"
    );
    // And it costs something: the monolithic machine is at least as fast.
    let mut mono = Pipeline::new(&p, mem, cfg(Mode::Ci));
    mono.run();
    assert!(mono.stats.cycles <= pipe.stats.cycles + pipe.stats.cycles / 10);
}

#[test]
fn one_port_vs_two_ports_never_hurts() {
    // Adding a D-cache port can only help (or tie) on a load-parallel
    // kernel.
    let src = r#"
        li r1, 4096
        li r2, 0
        li r3, 400
    top:
        muli r4, r2, 8
        andi r4, r4, 4095
        add r4, r4, r1
        ld r5, 0(r4)
        ld r6, 2048(r4)
        ld r7, 4096(r4)
        add r8, r5, r6
        add r8, r8, r7
        addi r2, r2, 1
        blt r2, r3, top
        halt
    "#;
    let p = assemble("t", src).unwrap();
    let mut one = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar).with_dports(1));
    one.run();
    let mut two = Pipeline::new(&p, MemImage::new(), cfg(Mode::Scalar).with_dports(2));
    two.run();
    assert!(
        two.stats.cycles <= one.stats.cycles,
        "2 ports {} vs 1 port {}",
        two.stats.cycles,
        one.stats.cycles
    );
}
