//! Integration tests for the observability layer: stall attribution
//! must account for every commit slot on real workloads in every mode,
//! the latency histograms and interval samples must populate, and the
//! JSON snapshot must round-trip through the parser with the same
//! numbers the simulator reported.

use cfir_obs::critpath::CpiStack;
use cfir_obs::json;
use cfir_obs::stall::{StallCause, ALL_CAUSES};
use cfir_sim::{run_json, Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, WorkloadSpec, NAMES};

const WIDTH: u64 = 8; // paper_baseline commit width

fn run_insts(bench: &str, mode: Mode, interval_cycles: u64, max_insts: u64) -> SimStats {
    let spec = WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 5,
    };
    let w = by_name(bench, spec).expect("known benchmark");
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(max_insts);
    cfg.cosim_check = false;
    cfg.interval_cycles = interval_cycles;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    p.stats.clone()
}

fn run(bench: &str, mode: Mode, interval_cycles: u64) -> SimStats {
    run_insts(bench, mode, interval_cycles, 30_000)
}

#[test]
fn stall_attribution_accounts_for_every_commit_slot() {
    // Two kernels x all five machine modes: the invariant is mode- and
    // workload-independent.
    for bench in ["bzip2", "mcf"] {
        for mode in [
            Mode::Scalar,
            Mode::WideBus,
            Mode::CiIw,
            Mode::Ci,
            Mode::Vect,
        ] {
            let s = run(bench, mode, 0);
            s.stall
                .check_sum(s.cycles, WIDTH)
                .unwrap_or_else(|e| panic!("{bench} {mode:?}: {e}"));
            let total: u64 = ALL_CAUSES.iter().map(|&c| s.stall.get(c)).sum();
            assert_eq!(total, s.cycles * WIDTH, "{bench} {mode:?}");
            // Useful slots are exactly the committed instructions.
            assert_eq!(
                s.stall.get(StallCause::Useful),
                s.committed,
                "{bench} {mode:?}"
            );
            assert!(s.stall.get(StallCause::Useful) > 0, "{bench} {mode:?}");
        }
    }
}

#[test]
fn stall_invariant_and_cpi_stack_hold_on_every_kernel_and_mode() {
    // The whole suite: all 12 paper kernels x the four paper machine
    // modes. Both the flat invariant (buckets sum to cycles x width)
    // and the hierarchical CPI stack regrouping (the six top-down
    // groups preserve that sum exactly) must hold everywhere. A
    // reduced instruction budget keeps the 48-run matrix fast.
    for bench in NAMES {
        for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci, Mode::Vect] {
            let s = run_insts(bench, mode, 0, 10_000);
            s.stall
                .check_sum(s.cycles, WIDTH)
                .unwrap_or_else(|e| panic!("{bench} {mode:?}: {e}"));
            let stack = CpiStack::from_breakdown(&s.stall, s.committed_reuse);
            stack
                .check_sum(s.cycles, WIDTH)
                .unwrap_or_else(|e| panic!("{bench} {mode:?}: {e}"));
            // The reuse-recovered group is carved out of useful slots,
            // so base + reuse_recovered == committed.
            assert_eq!(
                stack.base + stack.reuse_recovered,
                s.committed,
                "{bench} {mode:?}"
            );
            if mode.vectorizes() {
                assert_eq!(stack.reuse_recovered, s.committed_reuse, "{bench} {mode:?}");
            } else {
                assert_eq!(stack.reuse_recovered, 0, "{bench} {mode:?}");
            }
        }
    }
}

#[test]
fn histograms_populate_on_real_runs() {
    let s = run("bzip2", Mode::Ci, 0);
    assert!(
        s.h_load_to_use.count() > 0,
        "loads must record load-to-use latencies"
    );
    assert!(
        s.h_branch_resolve.count() > 0,
        "branches must record resolution latencies"
    );
    assert!(
        s.h_reuse_wait.count() > 0,
        "CI mode must record replica-wait latencies"
    );
    assert!(
        s.h_flush_recovery.count() > 0,
        "mispredictions must record recovery latencies"
    );
    // Sanity on the bucketing: sum/mean are consistent and buckets
    // account for every sample.
    let bucketed: u64 = s.h_load_to_use.nonzero_buckets().map(|(_, n)| n).sum();
    assert_eq!(bucketed, s.h_load_to_use.count());
    assert!(
        s.h_load_to_use.mean() >= 1.0,
        "a load takes at least a cycle"
    );
}

#[test]
fn interval_sampling_tracks_cumulative_counters() {
    let s = run("mcf", Mode::Ci, 1_000);
    assert!(
        s.intervals.len() >= 2,
        "a 30k-inst run spans several 1k-cycle intervals"
    );
    let mut prev_cycle = 0;
    let mut prev_committed = 0;
    let mut prev_branches = 0;
    for iv in &s.intervals {
        assert!(iv.cycle > prev_cycle, "sample cycles strictly increase");
        assert!(iv.committed >= prev_committed, "committed is cumulative");
        assert!(iv.branches >= prev_branches, "branches is cumulative");
        assert!(iv.mispredicts <= iv.branches);
        assert!(iv.interval_ipc >= 0.0 && iv.interval_ipc <= WIDTH as f64);
        assert!((0.0..=1.0).contains(&iv.interval_mispredict_rate));
        assert!((0.0..=1.0).contains(&iv.interval_reuse_rate));
        // with_regs(Finite(512)) grows the window to 512 (§3.2).
        assert!(iv.rob_occupancy <= 512, "bounded by the window size");
        prev_cycle = iv.cycle;
        prev_committed = iv.committed;
        prev_branches = iv.branches;
    }
    assert!(s.intervals.last().unwrap().committed <= s.committed);
    assert!(
        s.intervals.iter().any(|iv| iv.rob_occupancy > 0),
        "some sample catches a non-empty window"
    );
}

#[test]
fn snapshot_json_matches_the_stats_it_came_from() {
    let s = run("bzip2", Mode::Vect, 2_000);
    let doc = run_json("bzip2", "vect", &s);
    let v = json::parse(&doc).expect("snapshot must parse");
    assert_eq!(v.get("schema_version").and_then(|x| x.as_u64()), Some(7));
    assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("bzip2"));
    assert_eq!(v.get("cycles").and_then(|x| x.as_u64()), Some(s.cycles));
    assert_eq!(
        v.get("committed").and_then(|x| x.as_u64()),
        Some(s.committed)
    );
    let ipc = v.get("ipc").and_then(|x| x.as_f64()).unwrap();
    assert!((ipc - s.ipc()).abs() < 1e-9);
    // The stall object mirrors the breakdown and keeps the invariant.
    let stall = v.get("stall").expect("stall object");
    let mut total = 0;
    for cause in ALL_CAUSES {
        total += stall.get(cause.key()).and_then(|x| x.as_u64()).unwrap();
    }
    assert_eq!(total, s.cycles * WIDTH);
    // Histogram counts survive the round trip.
    let h = v
        .get("histograms")
        .and_then(|h| h.get("load_to_use"))
        .unwrap();
    assert_eq!(
        h.get("count").and_then(|x| x.as_u64()),
        Some(s.h_load_to_use.count())
    );
    assert_eq!(
        v.get("intervals").and_then(|x| x.as_arr()).map(|a| a.len()),
        Some(s.intervals.len())
    );
}
