//! Integration tests for the per-branch CI-reuse scorecard: on real
//! workloads, in every mode, the per-branch rows (plus the explicit
//! `unattributed` bucket) must sum exactly to the global counters the
//! simulator reports — nothing double-counted, nothing dropped — and
//! the JSON snapshot must carry the same numbers.

use cfir_obs::json;
use cfir_sim::{run_json, Mode, Pipeline, RegFileSize, SimConfig, SimStats};
use cfir_workloads::{by_name, WorkloadSpec};

fn run(bench: &str, mode: Mode) -> SimStats {
    let spec = WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 5,
    };
    let w = by_name(bench, spec).expect("known benchmark");
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(30_000);
    cfg.cosim_check = false;
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    p.stats.clone()
}

#[test]
fn scorecard_totals_reconcile_with_global_stats() {
    // Two kernels x two mechanism modes (plus the comparators): the
    // reconciliation must hold regardless of how reuse is produced.
    for bench in ["bzip2", "mcf"] {
        for mode in [Mode::Ci, Mode::CiIw, Mode::Vect, Mode::Scalar] {
            let s = run(bench, mode);
            let t = s.branch_prof.totals();
            let g = s.branch_prof.grand_totals();
            let ctx = format!("{bench} {mode:?}");

            // Branch commits are always attributed to a PC.
            assert_eq!(g.executed, s.branches, "{ctx}: executed");
            assert_eq!(g.mispredicts, s.mispredicts, "{ctx}: mispredicts");
            assert_eq!(t.executed, g.executed, "{ctx}: branches never spill");

            // Mechanism work reconciles once the spill bucket is added.
            assert_eq!(g.reuse_commits, s.committed_reuse, "{ctx}: reuse");
            assert_eq!(
                g.replicas_created, s.replicas_created,
                "{ctx}: replicas created"
            );
            assert_eq!(
                g.replicas_executed, s.replicas_executed,
                "{ctx}: replicas executed"
            );

            // Event outcomes fold exactly into the Figure 5 counts.
            let (_, sel, reu) = s.events.counts();
            assert_eq!(t.events_reused + t.events_selected, sel + reu, "{ctx}");
            if mode.selects_ci() {
                assert!(t.events > 0, "{ctx}: CI modes open events");
                assert_eq!(t.events_reused, reu, "{ctx}: reused events");
            } else {
                // vect/scal never open events: everything spills.
                assert_eq!(t.events, 0, "{ctx}");
                assert_eq!(t.reuse_commits, 0, "{ctx}");
            }
            if mode == Mode::Scalar {
                assert_eq!(g.reuse_commits, 0, "{ctx}: scalar never reuses");
            }

            // Per-row sanity: mispredicts bounded by executions (events
            // are not — wrong-path branches can open an event at
            // resolution and then be squashed before committing);
            // savings only come with reuses.
            for (pc, row) in s.branch_prof.sorted() {
                assert!(row.mispredicts <= row.executed, "{ctx} pc={pc:#x}");
                assert!(
                    row.events_reused + row.events_selected <= row.events,
                    "{ctx} pc={pc:#x}"
                );
                assert_eq!(
                    row.cycles_saved == 0,
                    row.reuse_commits == 0,
                    "{ctx} pc={pc:#x}: savings iff reuses"
                );
            }
        }
    }
}

#[test]
fn ci_mode_exploits_ci_on_real_kernels() {
    // The paper's headline: a sizable fraction of mispredicted branches
    // have their control-independent work reused. On these kernels the
    // ci mode must at least demonstrate the effect end to end.
    let s = run("bzip2", Mode::Ci);
    assert!(s.mispredicts > 0, "kernel must mispredict");
    let f = s.branch_prof.ci_exploited_fraction();
    assert!(f > 0.0, "some mispredictions must see reuse, got {f}");
    assert!(f <= 1.0);
    // At least one specific branch site shows reuse attribution.
    assert!(s
        .branch_prof
        .sorted()
        .iter()
        .any(|(_, r)| r.reuse_commits > 0 && r.cycles_saved > 0));
}

#[test]
fn snapshot_scorecard_matches_global_stats_in_same_document() {
    // The ISSUE's acceptance check: in one schema-v2 snapshot, the
    // per-branch scorecard totals must match the global stats fields of
    // the same document.
    let s = run("mcf", Mode::Ci);
    let doc = run_json("mcf", "ci", &s);
    let v = json::parse(&doc).expect("snapshot parses");
    assert_eq!(v.get("schema_version").and_then(|x| x.as_u64()), Some(7));

    let bp = v.get("branch_prof").expect("branch_prof object");
    let tot = bp.get("totals").expect("totals");
    let un = bp.get("unattributed").expect("unattributed");
    let sum = |key: &str| {
        tot.get(key).and_then(|x| x.as_u64()).unwrap()
            + un.get(key).and_then(|x| x.as_u64()).unwrap()
    };
    let global = |key: &str| v.get(key).and_then(|x| x.as_u64()).unwrap();

    assert_eq!(sum("executed"), global("branches"));
    assert_eq!(sum("mispredicts"), global("mispredicts"));
    assert_eq!(sum("reuse_commits"), global("committed_reuse"));
    assert_eq!(sum("replicas_created"), global("replicas_created"));
    assert_eq!(sum("replicas_executed"), global("replicas_executed"));

    // The rows themselves also sum to the totals object.
    let rows = bp.get("branches").and_then(|x| x.as_arr()).unwrap();
    assert_eq!(
        bp.get("static_branches").and_then(|x| x.as_u64()),
        Some(rows.len() as u64)
    );
    for key in ["executed", "mispredicts", "reuse_commits", "cycles_saved"] {
        let row_sum: u64 = rows
            .iter()
            .map(|r| r.get(key).and_then(|x| x.as_u64()).unwrap())
            .sum();
        assert_eq!(
            Some(row_sum),
            tot.get(key).and_then(|x| x.as_u64()),
            "rows must sum to totals for {key}"
        );
    }
}
