//! Per-cycle stall attribution (the CPI stack).
//!
//! Every cycle has `commit_width` commit slots. Slots that retire an
//! instruction are charged to [`StallCause::Useful`]; all remaining
//! slots of the cycle are charged to **one** cause picked by a priority
//! cascade over the machine state (standard CPI-stack practice: the
//! oldest instruction's condition explains the cycle). The invariant —
//! asserted in `finalize_stats` and by an integration test — is that
//! the buckets sum to exactly `cycles × commit_width`.
//!
//! Cascade, highest priority first:
//!
//! 1. a flush happened this cycle → `RepairFlush`;
//! 2. window empty → `FetchStarved` (decode queue dry) or `IqFull`
//!    (decode backed up behind a not-yet-ready instruction);
//! 3. head `Done` → `CommitBandwidth` (store ports / store limit);
//! 4. head waiting on a pending replica value → `ReplicaArbitration`;
//! 5. head `Executing` → `DCacheMiss` (load that missed L1D) or
//!    `FuContention`;
//! 6. head `Dispatched` with unready sources → the dispatch-side
//!    resource that blocked this cycle (`RobFull` / `LsqFull` /
//!    `RenameRegs`) or plain `DataDependency`;
//! 7. head `Dispatched` and ready → `FuContention` (issue bandwidth).

use crate::pipeline::Pipeline;
use crate::rob::RobState;
use cfir_obs::{StallCause, WaitEdgeKind};

/// Why dispatch stopped early this cycle (recorded by `dispatch`,
/// consulted by the cascade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DispatchBlock {
    /// Front of the decode queue not through decode yet.
    DecodeWait,
    /// Reorder buffer full.
    RobFull,
    /// Load/store queue full.
    LsqFull,
    /// No free physical register.
    NoRegs,
}

impl Pipeline<'_> {
    /// Charge this cycle's commit slots. `committed_before` is the
    /// commit counter at the start of the cycle.
    pub(crate) fn attribute_stalls(&mut self, committed_before: u64) {
        let width = self.cfg.commit_width as u64;
        let used = (self.stats.committed - committed_before).min(width);
        if used > 0 {
            self.stats.stall.charge(StallCause::Useful, used);
            // The lifecycle view receives its `useful` charges in
            // `note_commit` (one per retired instruction; the commit
            // loop is bounded by `commit_width`, so the sums agree).
        }
        let idle = width - used;
        if idle > 0 {
            let cause = self.idle_cause();
            self.stats.stall.charge(cause, idle);
            if self.lifecycle.is_some() {
                self.lifecycle_idle(cause, idle);
            }
        }
    }

    /// Mirror this cycle's idle charge into the per-instruction view:
    /// the window head's record absorbs it (it is the instruction the
    /// cascade blamed), or the front-end bucket when the window is
    /// empty — plus the causal wait-edge where one is identifiable.
    fn lifecycle_idle(&mut self, cause: StallCause, idle: u64) {
        let cycle = self.cycle;
        let head = self.rob.front();
        let head_lid = head.map(|e| e.lid);
        let edge = match cause {
            // Blame the oldest in-flight producer of the head's first
            // unready source operand.
            StallCause::DataDependency => head
                .and_then(|h| {
                    h.src_phys
                        .iter()
                        .flatten()
                        .find(|&&p| !self.rf.is_ready(p))
                        .and_then(|&p| {
                            self.rob
                                .iter()
                                .find(|e| e.new_phys == Some(p))
                                .map(|e| e.lid)
                        })
                })
                .map(|prod| (WaitEdgeKind::Producer, Some(prod))),
            StallCause::ReplicaArbitration => Some((WaitEdgeKind::ReplicaValue, None)),
            // Extends the issue-time edge that recorded the miss level.
            StallCause::DCacheMiss => Some((WaitEdgeKind::CacheMiss, None)),
            _ => None,
        };
        let Some(log) = &mut self.lifecycle else {
            return;
        };
        log.charge(head_lid, cause, idle);
        if let (Some(lid), Some((kind, target))) = (head_lid, edge) {
            log.edge(lid, kind, target, "", cycle);
        }
    }

    /// One cause for all idle slots of the cycle.
    fn idle_cause(&self) -> StallCause {
        if self.flushed_this_cycle {
            return StallCause::RepairFlush;
        }
        let Some(head) = self.rob.front() else {
            return if self.decode_q.is_empty() {
                StallCause::FetchStarved
            } else {
                StallCause::IqFull
            };
        };
        match head.state {
            RobState::Done => StallCause::CommitBandwidth,
            RobState::Executing => {
                if head.reuse.is_some_and(|r| r.pending) {
                    StallCause::ReplicaArbitration
                } else if head.dcache_miss {
                    StallCause::DCacheMiss
                } else {
                    StallCause::FuContention
                }
            }
            RobState::Dispatched => {
                let ready = head.src_phys.iter().flatten().all(|&p| self.rf.is_ready(p));
                if ready {
                    StallCause::FuContention
                } else {
                    match self.dispatch_block {
                        Some(DispatchBlock::RobFull) => StallCause::RobFull,
                        Some(DispatchBlock::LsqFull) => StallCause::LsqFull,
                        Some(DispatchBlock::NoRegs) => StallCause::RenameRegs,
                        _ => StallCause::DataDependency,
                    }
                }
            }
        }
    }
}
