//! Mechanism integration: decode hooks (CI detection, validation,
//! vectorization), the replica engine, squash-reuse harvesting and the
//! misprediction-side bookkeeping.

use crate::config::Mode;
use crate::mech::{Mech, RepKind, RepSrc, RepState, Replica, SquashReuse};
use crate::pipeline::Pipeline;
use crate::rob::{ReuseInfo, RobEntry, RobState};
use cfir_core::srsmt::{AllocOutcome, SeqId, SrsmtEntry, StorageId, VecKind};
use cfir_isa::{Inst, Program};
use cfir_obs::{trace_event, EventKind, Subsystem, WaitEdgeKind};
use std::collections::HashMap;

/// Human-readable labels for the `valfail_reasons` buckets (§2.3.4
/// validation failure taxonomy). Index k labels `valfail_reasons[k]`.
pub const VALFAIL_REASONS: [&str; 5] = [
    "inst_mismatch",
    "replica_not_ready",
    "stride_untrusted",
    "address_mismatch",
    "seq_mismatch",
];

impl Pipeline<'_> {
    /// Number of in-flight (dispatched, not committed) dynamic
    /// instances of the static instruction at `pc`.
    pub(crate) fn inflight_same_pc(&self, pc: u32) -> u64 {
        self.rob.iter().filter(|e| e.pc == pc).count() as u64
    }

    /// ROB-only variant of [`Pipeline::frontier_addr`], used at entry
    /// creation while the mechanism is checked out.
    fn frontier_addr_precreate(&self, pc: u32, stride: i64) -> Option<u64> {
        let mut younger = 0u64;
        for e in self.rob.iter().rev() {
            if e.pc != pc {
                continue;
            }
            if let Some(a) = e.addr {
                return Some(a.wrapping_add((stride as u64).wrapping_mul(younger + 1)));
            }
            younger += 1;
        }
        None
    }

    /// Address the *next dispatched* instance of the load at `pc` will
    /// access, anchored on real evidence: the youngest in-flight
    /// instance whose address has already been computed, advanced one
    /// stride per younger in-flight instance. Falls back to the
    /// commit-anchored stride-predictor estimate.
    pub(crate) fn frontier_addr(&self, m: &Mech, pc: u32, stride: i64) -> Option<u64> {
        let mut younger = 0u64;
        for e in self.rob.iter().rev() {
            if e.pc != pc {
                continue;
            }
            if let Some(a) = e.addr {
                return Some(a.wrapping_add((stride as u64).wrapping_mul(younger + 1)));
            }
            younger += 1;
        }
        let bpc = Program::byte_pc(pc);
        m.stride.lookup(bpc).and_then(|se| {
            if se.trusted() && se.stride == stride {
                Some(se.predict(younger + 1))
            } else {
                None
            }
        })
    }

    // ----------------------------------------------------------------
    // Decode hooks
    // ----------------------------------------------------------------

    /// Runs at dispatch for every instruction, in program order.
    /// Returns a [`ReuseInfo`] when a validation succeeds and the
    /// instruction must not execute.
    pub(crate) fn mech_decode(&mut self, e: &mut RobEntry) -> Option<ReuseInfo> {
        let mut m = self.mech.take()?;
        let r = self.mech_decode_inner(&mut m, e);
        self.mech = Some(m);
        r
    }

    fn mech_decode_inner(&mut self, m: &mut Mech, e: &mut RobEntry) -> Option<ReuseInfo> {
        let pc = e.pc;
        let bpc = Program::byte_pc(pc);
        let inst = e.inst;
        let mode = self.cfg.mode;

        // --- CRP / NRBQ tracking (§2.3.2), ci and ci-iw modes ---
        let mut is_ci = false;
        if mode.selects_ci() {
            let reached = m.crp.on_fetch(pc);
            if reached {
                is_ci = !inst.is_control()
                    && inst.dest().is_some()
                    && m.crp.is_control_independent(inst.sources());
                if is_ci {
                    self.stats.events.mark_selected(m.crp.event);
                    if mode == Mode::Ci {
                        // Select the strided loads in the backward slice
                        // for speculative vectorization (S flag).
                        for s in inst.sources().iter().flatten() {
                            for &lp in self.ext[*s as usize].strided_pcs() {
                                if m.stride.is_strided(lp) && m.stride.set_selected(lp, true) {
                                    m.set_sel_event(lp, m.crp.event);
                                }
                            }
                        }
                        // A strided load that is itself control
                        // independent selects itself.
                        if inst.is_load() && m.stride.is_strided(bpc) {
                            m.stride.set_selected(bpc, true);
                            m.set_sel_event(bpc, m.crp.event);
                        }
                    }
                }
            }
            if inst.is_cond_branch() {
                let rcp = cfir_core::rcp::estimate(self.prog, pc).unwrap_or(pc + 1);
                m.nrbq.on_branch_decode(e.seq, pc, rcp);
            }
            if let Some(d) = inst.dest() {
                m.nrbq.on_dest_write(d);
                m.crp.on_dest_write(d, is_ci);
            }
        }

        // --- ci-iw: squash-reuse buffer lookup ---
        if mode == Mode::CiIw {
            if is_ci {
                if let Some(sr) = m.squash_buf[pc as usize].pop_front() {
                    self.stats.squash_reuse_hits += 1;
                    return Some(ReuseInfo {
                        value: sr.value,
                        pending: false,
                        srsmt_idx: None,
                        gen: 0,
                        replica: 0,
                        event: Some(sr.event),
                    });
                }
            }
            return None;
        }

        if !mode.vectorizes() {
            return None;
        }

        // --- Validation (§2.3.4) ---
        if let Some(idx) = m.srsmt.find(bpc) {
            // Exact address of *this* dynamic load instance, when the
            // base register is already available (in steady reuse the
            // whole index chain is reused, so it usually is).
            let exact_addr = if let Inst::Ld { offset, .. } = inst {
                let base = inst.sources()[0].unwrap();
                let phys = self.rmap[base as usize];
                if self.rf.is_ready(phys) {
                    Some(cfir_emu::MemImage::align(
                        self.rf.read(phys).wrapping_add(offset as u64),
                    ))
                } else {
                    None
                }
            } else {
                None
            };
            // Soft miss: no pre-executed instance available right now
            // (the window ran ahead of the replica engine). Execute
            // normally; the entry stays for later instances but its
            // instance numbering is no longer in step.
            if m.srsmt
                .get(idx)
                .map(|ent| ent.decode >= ent.head)
                .unwrap_or(false)
            {
                let is_load_kind = m
                    .srsmt
                    .get(idx)
                    .map(|e| matches!(e.kind, VecKind::Load { .. }))
                    .unwrap_or(false);
                if is_load_kind {
                    // The numbering is no longer in step; re-align on
                    // (estimate or exact) evidence at a later instance.
                    // A previously confirmed entry keeps its
                    // confirmation: realignment snaps back onto the same
                    // verified address sequence.
                    if let Some(ent) = m.srsmt.get_mut(idx) {
                        ent.synced = false;
                    }
                } else {
                    // Dependent entries have no address evidence to
                    // re-align with: tear down and re-vectorize.
                    self.teardown_srsmt(m, idx, "soft_miss");
                }
                return None;
            }
            // Synchronisation state machine for loads: a desynced entry
            // may only validate against exact-address evidence, either
            // at the current slot or by skipping ahead to the matching
            // instance.
            let is_load_entry = m
                .srsmt
                .get(idx)
                .map(|e| matches!(e.kind, VecKind::Load { .. }))
                .unwrap_or(false);
            if is_load_entry {
                let ent = m.srsmt.get(idx).unwrap();
                let cur_matches = ent
                    .next_slot()
                    .map(|k| Some(ent.addr_of(k)) == exact_addr)
                    .unwrap_or(false);
                // Alignment evidence: the exact address when the base
                // register is ready, else the commit-anchored estimate
                // (last committed address plus one stride per in-flight
                // instance of this load — exact along a single path).
                let stride = match ent.kind {
                    VecKind::Load { stride, .. } => stride,
                    VecKind::Op => 0,
                };
                let evidence = exact_addr.or_else(|| self.frontier_addr(m, pc, stride));
                if !ent.synced {
                    match evidence {
                        None => return None, // cannot prove alignment: execute normally
                        Some(exp) => {
                            let cur_ev = ent
                                .next_slot()
                                .map(|k| ent.addr_of(k) == exp)
                                .unwrap_or(false);
                            if cur_ev {
                                trace_event!(
                                    self.tracer,
                                    Subsystem::Vec,
                                    pc as u64,
                                    self.cycle,
                                    EventKind::Note {
                                        msg: format!("sync-accept exp={exp:#x}")
                                    }
                                );
                                let ent = m.srsmt.get_mut(idx).unwrap();
                                ent.synced = true;
                                if exact_addr == Some(exp) {
                                    ent.confirmed = true;
                                }
                            } else {
                                // Search ahead for the matching instance.
                                let skip_to = if ent.decode == ent.commit {
                                    (ent.decode + 1..ent.head)
                                        .find(|&k| !ent.is_dead(k) && ent.addr_of(k) == exp)
                                } else {
                                    None
                                };
                                match skip_to {
                                    Some(k) => {
                                        let (freed, from) = {
                                            let ent = m.srsmt.get_mut(idx).unwrap();
                                            let from = ent.decode;
                                            (ent.skip_to(k), from)
                                        };
                                        self.free_storage(m, &freed);
                                        let gen = m.srsmt.get(idx).unwrap().gen;
                                        self.reap_replicas(|r| {
                                            r.pc == bpc
                                                && r.gen == gen
                                                && r.idx >= from
                                                && r.idx < k
                                        });
                                        self.teardown_consumers_of(m, bpc);
                                        if let Some(ent) = m.srsmt.get_mut(idx) {
                                            ent.synced = true;
                                            if exact_addr == Some(exp) {
                                                ent.confirmed = true;
                                            }
                                        }
                                    }
                                    None => {
                                        // Exact evidence contradicts every
                                        // live instance: stale addresses.
                                        self.stats.validation_failures += 1;
                                        self.stats.valfail_reasons[3] += 1;
                                        trace_event!(
                                            self.tracer,
                                            Subsystem::Vec,
                                            pc as u64,
                                            self.cycle,
                                            EventKind::Validate {
                                                ok: false,
                                                reason: "address_mismatch",
                                            }
                                        );
                                        self.teardown_srsmt(m, idx, "stale_addresses");
                                        return None;
                                    }
                                }
                            }
                        }
                    }
                } else if exact_addr.is_some() && !cur_matches {
                    // Synced count contradicted by exact evidence:
                    // desynchronise and retry the alignment next time.
                    let ent = m.srsmt.get_mut(idx).unwrap();
                    ent.synced = false;
                    ent.confirmed = false;
                    return None;
                }
            }
            let r = self.try_validate(m, idx, inst, exact_addr);
            trace_event!(self.tracer, Subsystem::Vec, pc as u64, self.cycle, {
                let msg =
                    match m.srsmt.get(idx) {
                        Some(ent) => format!(
                        "validate -> {:?} dec={} com={} head={} synced={} exact={:?} slotaddr={:?}",
                        r, ent.decode, ent.commit, ent.head, ent.synced,
                        exact_addr, ent.next_slot().map(|k| ent.addr_of(k))
                    ),
                        None => format!("validate -> {r:?} (entry gone)"),
                    };
                EventKind::Note { msg }
            });
            match r {
                Ok(replica) => {
                    let ent = m.srsmt.get_mut(idx).unwrap();
                    ent.advance_decode();
                    let gen = ent.gen;
                    let event = ent.event;
                    self.stats.branch_prof.note_validation(event);
                    if !ent.confirmed {
                        // Probe: consume the slot but execute normally;
                        // the alignment is verified at issue against the
                        // real result before any value may be delivered.
                        e.probe = Some(crate::rob::ProbeInfo {
                            srsmt_idx: idx,
                            gen,
                            replica,
                            verified: false,
                        });
                        trace_event!(
                            self.tracer,
                            Subsystem::Vec,
                            pc as u64,
                            self.cycle,
                            EventKind::Note {
                                msg: format!("probe k={replica} seq={}", e.seq)
                            }
                        );
                        return None;
                    }
                    let pending = !ent.is_complete(replica);
                    let value = ent.value_of(replica);
                    if inst.is_load() && !pending {
                        e.addr = Some(ent.addr_of(replica));
                    }
                    trace_event!(
                        self.tracer,
                        Subsystem::Vec,
                        pc as u64,
                        self.cycle,
                        EventKind::Validate {
                            ok: true,
                            reason: "ok"
                        }
                    );
                    return Some(ReuseInfo {
                        value,
                        pending,
                        srsmt_idx: Some(idx),
                        gen,
                        replica,
                        event,
                    });
                }
                Err(reason) => {
                    // §2.3.4: wrong speculation — deallocate and
                    // re-vectorize with the new operands (falls through
                    // to the vectorization triggers below).
                    self.stats.validation_failures += 1;
                    self.stats.valfail_reasons[reason] += 1;
                    trace_event!(
                        self.tracer,
                        Subsystem::Vec,
                        pc as u64,
                        self.cycle,
                        EventKind::Validate {
                            ok: false,
                            reason: VALFAIL_REASONS[reason]
                        }
                    );
                    self.teardown_srsmt(m, idx, "validation_failure");
                }
            }
        }

        None
    }

    /// Vectorization triggers (§2.3.2 / §2.3.3). Runs *after* rename so
    /// a loop-carried self-dependence can be seeded from the creating
    /// instruction's destination register. `e.src_phys` holds the
    /// pre-rename source mappings.
    pub(crate) fn mech_vectorize(&mut self, e: &RobEntry) {
        if !self.cfg.mode.vectorizes() {
            return;
        }
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let mode = self.cfg.mode;
        let pc = e.pc;
        let bpc = Program::byte_pc(pc);
        let inst = e.inst;
        if inst.is_load() {
            let base = inst.sources()[0].unwrap();
            if self.ext[base as usize].vs {
                // Load whose address depends on a vectorized producer:
                // replicate as a dependent op.
                if m.srsmt.find(bpc).is_none() {
                    self.vectorize_op(&mut m, bpc, e);
                }
            } else if let Some(se) = m.stride.lookup(bpc) {
                let gate = match mode {
                    Mode::Vect => true,
                    Mode::Ci => se.selected,
                    _ => false,
                };
                if se.trusted() && gate && m.srsmt.find(bpc).is_none() {
                    self.vectorize_load(&mut m, bpc, pc, e.seq, inst, se.last_addr, se.stride);
                }
            }
        } else if matches!(
            inst,
            Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Fp { .. }
        ) {
            let any_vec = inst
                .sources()
                .iter()
                .flatten()
                .any(|&s| self.ext[s as usize].vs);
            if any_vec && m.srsmt.find(bpc).is_none() {
                self.vectorize_op(&mut m, bpc, e);
            }
        }
        self.mech = Some(m);
    }

    /// Tear down every entry whose sources reference the vectorized
    /// instruction at `pc` (their instance alignment is no longer
    /// valid).
    fn teardown_consumers_of(&mut self, m: &mut Mech, pc: u64) {
        let victims: Vec<usize> = m
            .srsmt
            .iter_valid()
            .filter(|(_, e)| {
                matches!(e.seq1, SeqId::Vec { pc: p, .. } if p == pc)
                    || matches!(e.seq2, SeqId::Vec { pc: p, .. } if p == pc)
            })
            .map(|(i, _)| i)
            .collect();
        for v in victims {
            self.teardown_srsmt(m, v, "producer_realigned");
        }
    }

    /// Check the §2.3.4 validation conditions. Returns the consumed
    /// instance index on success, the failure-reason bucket otherwise.
    fn try_validate(
        &self,
        m: &Mech,
        idx: usize,
        inst: Inst,
        expected_addr: Option<u64>,
    ) -> Result<u32, usize> {
        let ent = m.srsmt.get(idx).ok_or(0usize)?;
        if ent.inst != inst {
            return Err(0); // PC aliasing across different instructions
        }
        let replica = ent.next_slot().ok_or(1usize)?;
        match ent.kind {
            VecKind::Load { stride, .. } => {
                // "For a load, the stride must keep on being the same."
                let se = m.stride.lookup(ent.pc).ok_or(2usize)?;
                if !se.trusted() || se.stride != stride {
                    return Err(2);
                }
                // Address alignment is enforced by the sync-state
                // machine in the caller; when exact evidence is present
                // it must agree with the slot (belt and braces).
                if let Some(exp) = expected_addr {
                    if exp != ent.addr_of(replica) {
                        return Err(3);
                    }
                }
                Ok(replica)
            }
            VecKind::Op => {
                // Dependent loads additionally check the replica's
                // effective address against this instance's expected
                // address when both are known.
                if inst.is_load() && ent.is_complete(replica) {
                    if let Some(exp) = expected_addr {
                        if ent.addr_of(replica) != exp {
                            return Err(3);
                        }
                    }
                }
                // "checking whether the producer's identifiers currently
                // found in the rename table ... are equal to those of
                // the SRSMT".
                let srcs = inst.sources();
                for (seq, src) in [(ent.seq1, srcs[0]), (ent.seq2, srcs[1])] {
                    match (seq, src) {
                        (SeqId::None, None) => {}
                        (SeqId::None, Some(_)) => return Err(4),
                        (_, None) => return Err(4),
                        (SeqId::Vec { pc, gen, off }, Some(s)) => {
                            let x = &self.ext[s as usize];
                            if !x.vs || x.seq != pc {
                                return Err(4);
                            }
                            // Source synchronisation (§2.3.4: the
                            // validation "will wait until the fields
                            // decode and commit of its source operands
                            // ... are equal"): the producer must have
                            // consumed exactly the instance this replica
                            // read, i.e. its dynamic stream is in step
                            // with ours. A producer that soft-missed (or
                            // was re-created) is out of step.
                            let p = m
                                .srsmt
                                .find(pc)
                                .and_then(|i| m.srsmt.get(i))
                                .ok_or(4usize)?;
                            if p.gen != gen || p.decode != off + replica + 1 {
                                return Err(4);
                            }
                        }
                        (SeqId::SelfLoop, Some(s)) => {
                            let x = &self.ext[s as usize];
                            if !x.vs || x.seq != ent.pc {
                                return Err(4);
                            }
                        }
                        (SeqId::Scalar(_), Some(s)) => {
                            if self.ext[s as usize].vs {
                                return Err(4);
                            }
                        }
                    }
                }
                Ok(replica)
            }
        }
    }

    // ----------------------------------------------------------------
    // Vectorization
    // ----------------------------------------------------------------

    /// Allocate one replica destination: a physical register in the
    /// monolithic configuration, a speculative-memory position in the
    /// §2.4.6 configuration. `None` under pressure ("a lower number of
    /// replicas or none at all").
    fn alloc_one_storage(&mut self, m: &mut Mech) -> Option<(StorageId, u32)> {
        if let Some(sm) = &mut m.specmem {
            sm.alloc()
        } else {
            if self.rf.available() <= self.cfg.mech.replica_headroom {
                return None;
            }
            self.rf.alloc().map(|p| (p, 0))
        }
    }

    fn free_storage(&mut self, m: &mut Mech, storage: &[(StorageId, u32)]) {
        for &(id, _g) in storage {
            if let Some(sm) = &mut m.specmem {
                sm.release(id);
            } else {
                self.rf.free(id);
            }
        }
    }

    /// Tear down every entry created by an instruction younger than
    /// `seq` (the creator was squashed, so the entry's instance
    /// numbering no longer matches the dynamic stream).
    pub(crate) fn teardown_created_after(&mut self, m: &mut Mech, seq: u64) {
        let victims: Vec<usize> = m
            .srsmt
            .iter_valid()
            .filter(|(_, e)| e.creator > seq)
            .map(|(i, _)| i)
            .collect();
        for v in victims {
            self.teardown_srsmt(m, v, "creator_squashed");
        }
    }

    /// Tear down an SRSMT entry: free unconsumed storage and drop its
    /// in-flight replicas. `reason` labels the teardown in the trace.
    pub(crate) fn teardown_srsmt(&mut self, m: &mut Mech, idx: usize, reason: &'static str) {
        let Some(ent) = m.srsmt.invalidate(idx) else {
            return;
        };
        let storage = ent.unconsumed_storage();
        trace_event!(
            self.tracer,
            Subsystem::Vec,
            ent.pc >> 2, // SRSMT stores byte PCs; the trace uses word PCs
            self.cycle,
            EventKind::Teardown {
                reason,
                entries: storage.len() as u32
            }
        );
        self.free_storage(m, &storage);
        self.reap_replicas(|r| r.srsmt_idx == idx && r.pc == ent.pc && r.gen == ent.gen);
    }

    /// Drop every replica matching `pred`, closing its lifecycle record
    /// (if tracing is on) as squashed-undelivered.
    pub(crate) fn reap_replicas(&mut self, pred: impl Fn(&Replica) -> bool) {
        let cyc = self.cycle;
        let killed = self.replicas.reap(pred);
        if let Some(log) = &mut self.lifecycle {
            for &lid in killed {
                log.finish_replica(lid, cyc, false);
            }
        }
    }

    /// Whether the PC has mis-speculated at commit too often to be
    /// worth vectorizing again (off unless configured — see
    /// `MechConfig::misspec_blacklist`).
    fn blacklisted(&self, m: &Mech, bpc: u64) -> bool {
        m.misspec(bpc) >= self.cfg.mech.misspec_blacklist
    }

    /// Vectorize a strided load (§2.3.3). The stride predictor trains
    /// at commit, so `last_addr` is the last *committed* instance; the
    /// instance being decoded sits one stride per in-flight instance
    /// further on, and replicas cover the instances after it.
    #[allow(clippy::too_many_arguments)] // the paper's trigger needs all of them
    fn vectorize_load(
        &mut self,
        m: &mut Mech,
        bpc: u64,
        pc32: u32,
        creator: u64,
        inst: Inst,
        last_addr: u64,
        stride: i64,
    ) {
        // Address of the instance being decoded (= "instance -1" of the
        // replica stream), anchored on in-flight evidence when possible.
        let base = self
            .frontier_addr_precreate(pc32, stride)
            .unwrap_or_else(|| {
                let gap = self.inflight_same_pc(pc32) + 1;
                last_addr.wrapping_add((stride as u64).wrapping_mul(gap))
            });
        let mut ent = SrsmtEntry::new(
            bpc,
            inst,
            VecKind::Load { stride, base },
            self.cfg.mech.replicas_per_inst,
            SeqId::None,
            SeqId::None,
        );
        ent.event = m.sel_event(bpc);
        ent.creator = creator;
        match m.srsmt.alloc(ent) {
            AllocOutcome::Placed { idx, evicted } => {
                if let Some(old) = evicted {
                    let s = old.unconsumed_storage();
                    self.free_storage(m, &s);
                    self.reap_replicas(|r| r.pc == old.pc && r.gen == old.gen);
                }
                self.stats.vectorizations += 1;
                trace_event!(
                    self.tracer,
                    Subsystem::Vec,
                    pc32 as u64,
                    self.cycle,
                    EventKind::Vectorize {
                        kind: "load",
                        base,
                        stride,
                        count: self.cfg.mech.replicas_per_inst as u32,
                    }
                );
                while self.grow_one(m, idx) {}
            }
            AllocOutcome::Full => {}
        }
    }

    /// Vectorize an instruction dependent on vectorized producers
    /// (§2.3.3: "every time an instruction is fetched, if any of its
    /// source operands is vectorized, the instruction is also
    /// vectorized").
    fn vectorize_op(&mut self, m: &mut Mech, bpc: u64, e: &RobEntry) {
        if self.blacklisted(m, bpc) {
            return;
        }
        let inst = e.inst;
        let srcs = inst.sources();
        let mut seqs = [SeqId::None, SeqId::None];
        let mut seed = 0u64;
        for (i, s) in srcs.iter().enumerate() {
            let Some(s) = s else { continue };
            let x = self.ext[*s as usize];
            if x.vs && x.seq == bpc {
                // Loop-carried self-dependence (the paper's I11
                // accumulator): instance k consumes instance k-1 of
                // this very entry; instance 0 is seeded by the creating
                // instruction's own result (delivered at writeback).
                if e.new_phys.is_none() {
                    return;
                }
                seqs[i] = SeqId::SelfLoop;
                seed = e.seq;
            } else if x.vs {
                let Some(pidx) = m.srsmt.find(x.seq) else {
                    return;
                };
                let p = m.srsmt.get(pidx).unwrap();
                if !p.synced {
                    return; // producer's numbering not trustworthy yet
                }
                // This instruction's next dynamic instance pairs with
                // the producer's next unconsumed instance.
                seqs[i] = SeqId::Vec {
                    pc: x.seq,
                    gen: p.gen,
                    off: p.decode,
                };
            } else {
                // Scalar operand: read its value now (§2.3.3). If not
                // ready we skip vectorization rather than stalling the
                // front end (documented simplification). Read through
                // the pre-rename mapping captured at dispatch.
                let Some(phys) = e.src_phys[i] else { return };
                if !self.rf.is_ready(phys) {
                    return;
                }
                seqs[i] = SeqId::Scalar(self.rf.read(phys));
            }
        }
        let mut ent = SrsmtEntry::new(
            bpc,
            inst,
            VecKind::Op,
            self.cfg.mech.replicas_per_inst,
            seqs[0],
            seqs[1],
        );
        ent.seed = seed;
        ent.creator = e.seq;
        // Dependent entries are anchored to their producers' instance
        // streams; require those to be in step at creation.
        ent.synced = true;
        let wants_seed = seed != 0;
        ent.event = [seqs[0], seqs[1]].iter().find_map(|s| match s {
            SeqId::Vec { pc, .. } => m
                .srsmt
                .find(*pc)
                .and_then(|i| m.srsmt.get(i))
                .and_then(|p| p.event),
            _ => None,
        });
        match m.srsmt.alloc(ent) {
            AllocOutcome::Placed { idx, evicted } => {
                if let Some(old) = evicted {
                    let s = old.unconsumed_storage();
                    self.free_storage(m, &s);
                    self.reap_replicas(|r| r.pc == old.pc && r.gen == old.gen);
                }
                if wants_seed {
                    let gen = m.srsmt.get(idx).unwrap().gen;
                    m.add_seed_waiter(seed, idx, gen);
                }
                self.stats.vectorizations += 1;
                trace_event!(
                    self.tracer,
                    Subsystem::Vec,
                    e.pc as u64,
                    self.cycle,
                    EventKind::Vectorize {
                        kind: "op",
                        base: 0,
                        stride: 0,
                        count: self.cfg.mech.replicas_per_inst as u32,
                    }
                );
                while self.grow_one(m, idx) {}
            }
            AllocOutcome::Full => {}
        }
    }

    /// Deliver a just-produced result to a self-loop entry waiting for
    /// its seed (called when the creating instruction completes).
    pub(crate) fn notify_seed(&mut self, seq: u64, value: u64) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        if let Some((idx, gen)) = m.take_seed_waiter(seq) {
            if let Some(ent) = m.srsmt.get_mut(idx) {
                if ent.gen == gen {
                    ent.seed_value = Some(value);
                }
            }
        }
        self.mech = Some(m);
    }

    /// The creating instruction of a waiting self-loop entry was
    /// squashed: the chain can never be seeded correctly — tear it
    /// down (called from the squash paths).
    pub(crate) fn kill_seed_waiter(&mut self, seq: u64) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        if let Some((idx, gen)) = m.take_seed_waiter(seq) {
            if m.srsmt.get(idx).map(|e| e.gen == gen).unwrap_or(false) {
                self.teardown_srsmt(&mut m, idx, "seed_squashed");
            }
        }
        self.mech = Some(m);
    }

    // ----------------------------------------------------------------
    // Replica engine
    // ----------------------------------------------------------------

    /// Pre-execute one more instance of the entry at `idx` if a window
    /// slot and storage are available. Returns whether it grew.
    fn grow_one(&mut self, m: &mut Mech, idx: usize) -> bool {
        let Some(ent) = m.srsmt.get(idx) else {
            return false;
        };
        if !ent.can_grow() {
            return false;
        }
        let event = ent.event;
        let (pc, gen, kind) = (ent.pc, ent.gen, ent.kind);
        let inst = ent.inst;
        let (seq1, seq2) = (ent.seq1, ent.seq2);
        let Some(storage) = self.alloc_one_storage(m) else {
            return false;
        };
        let ent = m.srsmt.get_mut(idx).unwrap();
        let k = ent.grow(storage);
        let work = match kind {
            VecKind::Load { .. } => {
                let addr = ent.load_addr(k).unwrap();
                ent.addrs[ent.slot(k)] = addr;
                RepKind::StridedLoad { addr }
            }
            VecKind::Op => {
                let own_gen = ent.gen;
                let mut srcs = [RepSrc::None, RepSrc::None];
                for (i, s) in [seq1, seq2].iter().enumerate() {
                    srcs[i] = match *s {
                        SeqId::None => RepSrc::None,
                        SeqId::Scalar(v) => RepSrc::Val(v),
                        SeqId::Vec { pc, gen, off } => RepSrc::Dep {
                            pc,
                            gen,
                            idx: off + k,
                        },
                        SeqId::SelfLoop => {
                            if k == 0 {
                                RepSrc::SeedSelf
                            } else {
                                RepSrc::Dep {
                                    pc,
                                    gen: own_gen,
                                    idx: k - 1,
                                }
                            }
                        }
                    };
                }
                RepKind::Op { inst, srcs }
            }
        };
        // SRSMT stores byte PCs; the lifecycle view uses word PCs.
        let lid = match &mut self.lifecycle {
            Some(log) => log.begin_replica(pc / 4, || inst.to_string(), self.cycle),
            None => 0,
        };
        self.replicas.push(Replica {
            lid,
            pc,
            srsmt_idx: idx,
            gen,
            idx: k,
            kind: work,
            state: RepState::Waiting,
            value: 0,
            addr: None,
        });
        self.stats.replicas_created += 1;
        self.stats.branch_prof.note_replica_created(event);
        true
    }

    /// Grow windows (continuous re-dispatch, §2.3.3) and keep growing
    /// each entry until its window or the storage budget is exhausted.
    fn grow_pass(&mut self, m: &mut Mech) {
        let idxs: Vec<usize> = m.srsmt.iter_valid().map(|(i, _)| i).collect();
        for idx in idxs {
            while self.grow_one(m, idx) {}
        }
    }

    /// Re-dispatch and issue replicas with the cycle's leftover
    /// resources (§2.4.1: lower priority than scalar instructions).
    pub(crate) fn replica_pump(&mut self) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        if self.cfg.mode.vectorizes() {
            self.grow_pass(&mut m);
            self.issue_replicas(&mut m);
        }
        self.mech = Some(m);
    }

    fn issue_replicas(&mut self, m: &mut Mech) {
        for ri in 0..self.replicas.len() {
            if self.res.issue == 0 {
                break;
            }
            if self.replicas[ri].state != RepState::Waiting {
                continue;
            }
            let rep = self.replicas[ri];
            // Entry still alive and on the same generation?
            let alive = m
                .srsmt
                .get(rep.srsmt_idx)
                .map(|e| e.pc == rep.pc && e.gen == rep.gen)
                .unwrap_or(false);
            if !alive {
                continue; // purged lazily in complete_replicas
            }
            // Resolve sources.
            let mut vals = [0u64; 2];
            let mut ready = true;
            let mut dead = false;
            if let RepKind::Op { srcs, .. } = rep.kind {
                for (k, s) in srcs.iter().enumerate() {
                    match *s {
                        RepSrc::None => {}
                        RepSrc::Val(v) => vals[k] = v,
                        RepSrc::SeedSelf => {
                            match m.srsmt.get(rep.srsmt_idx).and_then(|e| e.seed_value) {
                                Some(v) => vals[k] = v,
                                None => ready = false,
                            }
                        }
                        RepSrc::Dep { pc, gen, idx } => {
                            match m.srsmt.find(pc).and_then(|i| m.srsmt.get(i)) {
                                Some(p) if p.gen == gen => {
                                    if idx < p.commit || idx >= p.head {
                                        // Value recycled or never produced.
                                        dead = idx < p.commit;
                                        if idx >= p.head {
                                            ready = false; // producer not grown yet
                                        }
                                    } else if p.is_dead(idx) {
                                        dead = true;
                                    } else if p.is_complete(idx) {
                                        vals[k] = p.value_of(idx);
                                    } else {
                                        ready = false;
                                    }
                                }
                                _ => dead = true,
                            }
                        }
                    }
                }
            }
            if dead {
                if let Some(e) = m.srsmt.get_mut(rep.srsmt_idx) {
                    e.kill_replica(rep.idx);
                }
                // Reaped in complete_replicas (dead path).
                self.replicas[ri].state = RepState::Exec { done_at: 0 };
                continue;
            }
            if !ready {
                continue;
            }
            // Resources + compute.
            let (value, addr, done_at) = match rep.kind {
                RepKind::StridedLoad { addr } => {
                    let Some(lat) = self.arbitrate_load(addr) else {
                        continue;
                    };
                    (self.mem.read(addr), Some(addr), self.cycle + lat as u64)
                }
                RepKind::Op { inst, .. } => match inst {
                    Inst::Ld { offset, .. } => {
                        let a = cfir_emu::MemImage::align(vals[0].wrapping_add(offset as u64));
                        let Some(lat) = self.arbitrate_load(a) else {
                            continue;
                        };
                        (self.mem.read(a), Some(a), self.cycle + lat as u64)
                    }
                    Inst::Alu { op, .. } => {
                        if !self.take_fu_replica(inst) {
                            continue;
                        }
                        (
                            op.eval(vals[0], vals[1]),
                            None,
                            self.cycle + inst.class().latency().unwrap() as u64,
                        )
                    }
                    Inst::AluImm { op, imm, .. } => {
                        if !self.take_fu_replica(inst) {
                            continue;
                        }
                        (
                            op.eval(vals[0], imm as u64),
                            None,
                            self.cycle + inst.class().latency().unwrap() as u64,
                        )
                    }
                    Inst::Fp { op, .. } => {
                        if !self.take_fu_replica(inst) {
                            continue;
                        }
                        (
                            op.eval(vals[0], vals[1]),
                            None,
                            self.cycle + inst.class().latency().unwrap() as u64,
                        )
                    }
                    _ => continue,
                },
            };
            // Spec-memory write port (2 per cycle).
            if m.specmem.is_some() {
                if self.res.specmem_writes == 0 {
                    continue;
                }
                self.res.specmem_writes -= 1;
            }
            self.res.issue -= 1;
            let r = &mut self.replicas[ri];
            r.state = RepState::Exec { done_at };
            r.value = value;
            r.addr = addr;
            if let Some(e) = m.srsmt.get_mut(rep.srsmt_idx) {
                e.issue += 1;
            }
            self.stats.replicas_executed += 1;
            let event = m.srsmt.get(rep.srsmt_idx).and_then(|e| e.event);
            self.stats.branch_prof.note_replica_executed(event);
            // Lifecycle: the replica issued this cycle; a load that ran
            // longer than an L1 hit also gets a cache-miss wait-edge.
            let lat = done_at.saturating_sub(self.cycle) as u32;
            let miss = addr.is_some() && lat > self.cfg.hierarchy.l1_hit;
            let level = if miss { self.miss_level(lat) } else { "" };
            let (lid, cyc) = (rep.lid, self.cycle);
            if let Some(log) = &mut self.lifecycle {
                log.note_issue(lid, cyc);
                if miss {
                    log.edge(lid, WaitEdgeKind::CacheMiss, None, level, cyc);
                }
            }
        }
    }

    fn take_fu_replica(&mut self, inst: Inst) -> bool {
        use cfir_isa::FuClass;
        let slot = match inst.class() {
            FuClass::IntAlu | FuClass::Store => &mut self.res.int_alu,
            FuClass::IntMul | FuClass::IntDiv => &mut self.res.int_muldiv,
            FuClass::FpAlu => &mut self.res.fp_alu,
            FuClass::FpMul | FuClass::FpDiv => &mut self.res.fp_muldiv,
            FuClass::Load => return false,
        };
        if *slot == 0 {
            false
        } else {
            *slot -= 1;
            true
        }
    }

    /// Deliver completed replicas (called from writeback).
    pub(crate) fn complete_replicas(&mut self) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let cycle = self.cycle;
        let mut i = 0;
        while i < self.replicas.len() {
            let rep = self.replicas[i];
            let done = matches!(rep.state, RepState::Exec { done_at } if done_at <= cycle);
            let alive = m
                .srsmt
                .get(rep.srsmt_idx)
                .map(|e| e.pc == rep.pc && e.gen == rep.gen)
                .unwrap_or(false);
            if !alive {
                // Entry gone: drop the record (storage already freed).
                self.replicas.swap_remove(i);
                if let Some(log) = &mut self.lifecycle {
                    log.finish_replica(rep.lid, cycle, false);
                }
                continue;
            }
            if done {
                let ent = m.srsmt.get_mut(rep.srsmt_idx).unwrap();
                if rep.idx < ent.commit || ent.is_dead(rep.idx) {
                    // Slot recycled/skipped while executing.
                    ent.issue = ent.issue.saturating_sub(1);
                    self.replicas.swap_remove(i);
                    if let Some(log) = &mut self.lifecycle {
                        log.finish_replica(rep.lid, cycle, false);
                    }
                    continue;
                }
                ent.complete_replica(rep.idx, rep.value, rep.addr);
                ent.issue = ent.issue.saturating_sub(1);
                let s = ent.slot(rep.idx);
                let storage = ent.regs[s];
                if let Some(sm) = &mut m.specmem {
                    sm.write(storage, rep.value);
                } else {
                    self.rf.write(storage, rep.value);
                }
                self.replicas.swap_remove(i);
                if let Some(log) = &mut self.lifecycle {
                    log.finish_replica(rep.lid, cycle, true);
                }
                continue;
            }
            i += 1;
        }
        self.mech = Some(m);
    }

    // ----------------------------------------------------------------
    // Misprediction-side bookkeeping
    // ----------------------------------------------------------------

    /// Runs at recovery, *before* the pipeline squash, while the wrong
    /// path is still in the window.
    pub(crate) fn mech_on_mispredict(
        &mut self,
        rob_idx: usize,
        bseq: u64,
        bpc: u32,
        is_cond: bool,
    ) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let mode = self.cfg.mode;
        if is_cond {
            let hard = mode.selects_ci()
                && (!self.cfg.mech.mbs_gating || m.mbs.is_hard(Program::byte_pc(bpc)));
            if hard {
                let event = self.stats.events.open_event();
                self.stats.branch_prof.note_event(bpc, event);
                let rcp_est = if self.cfg.mech.full_rcp_heuristic {
                    cfir_core::rcp::estimate(self.prog, bpc)
                } else {
                    Some(bpc + 1) // naive: fall-through only (ablation)
                };
                // Static oracle: score whatever estimate the configured
                // detector produced against the post-dominator truth
                // seeded at pipeline build (the naive ablation is scored
                // too — that is the point of the metric).
                if let Some(truth) = self.stats.branch_prof.static_truth(bpc) {
                    self.stats
                        .branch_prof
                        .note_rcp_check(bpc, rcp_est == truth.rcp);
                }
                if let Some(rcp) = rcp_est {
                    // The NRBQ OR (kept for the or_masks_from API and its
                    // tests) over-taints when the wrong path runs past the
                    // re-convergent point; the window walk computes the
                    // §2.3.2 quantity — writes after the branch and
                    // *before the RCP is reached* — exactly.
                    let mask = self.wrong_path_mask(rob_idx, rcp);
                    m.crp.activate(rcp, mask, event);
                    if mode == Mode::CiIw {
                        self.harvest_squash_buf(&mut m, rob_idx, rcp, mask, event);
                    }
                }
            } else {
                self.stats.events.mispredict_without_event();
            }
        }
        m.nrbq.squash_younger(bseq);
        // Entries whose creating instruction is being squashed lose
        // their instance alignment.
        self.teardown_created_after(&mut m, bseq);
        // §2.4.4: decode <- commit for every entry; replicas are NOT
        // squashed. §2.4.2: DAEC ticks, idle entries torn down.
        let released = m.srsmt.recovery();
        for ent in released {
            let storage = ent.unconsumed_storage();
            self.free_storage(&mut m, &storage);
            self.reap_replicas(|r| r.pc == ent.pc && r.gen == ent.gen);
        }
        self.mech = Some(m);
    }

    /// Rebuild the ci-iw squash-reuse buffer from the wrong path that
    /// is about to be squashed.
    fn harvest_squash_buf(
        &mut self,
        m: &mut Mech,
        branch_idx: usize,
        rcp: u32,
        init_mask: u64,
        event: u64,
    ) {
        m.clear_squash_buf();
        let mut mask = init_mask;
        let mut reached = false;
        for j in branch_idx + 1..self.rob.len() {
            let e = &self.rob[j];
            if !reached && e.pc == rcp {
                reached = true;
            }
            let mut is_ci = false;
            if reached
                && e.state == RobState::Done
                && e.reuse.is_none()
                && e.ldest.is_some()
                && !e.inst.is_control()
            {
                is_ci = e
                    .inst
                    .sources()
                    .iter()
                    .flatten()
                    .all(|&r| mask & (1u64 << r) == 0);
            }
            if is_ci {
                self.stats.events.mark_selected(event);
                m.squash_buf[e.pc as usize].push_back(SquashReuse {
                    value: e.value,
                    event,
                });
            } else if let Some(d) = e.ldest {
                mask |= 1u64 << d;
            }
        }
    }

    /// After a squash, restore per-entry `decode` to `commit` plus the
    /// number of *surviving* in-flight validations (the §2.4.4 copy
    /// assumes all in-flight validations died; those older than the
    /// branch did not).
    pub(crate) fn recount_srsmt_decode(&mut self) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for e in &self.rob {
            if let Some(r) = &e.reuse {
                if let Some(idx) = r.srsmt_idx {
                    if let Some(ent) = m.srsmt.get(idx) {
                        if ent.pc == Program::byte_pc(e.pc) && ent.gen == r.gen {
                            *counts.entry(idx).or_insert(0) += 1;
                        }
                    }
                }
            }
            if let Some(pr) = &e.probe {
                if let Some(ent) = m.srsmt.get(pr.srsmt_idx) {
                    if ent.pc == Program::byte_pc(e.pc) && ent.gen == pr.gen {
                        *counts.entry(pr.srsmt_idx).or_insert(0) += 1;
                    }
                }
            }
        }
        for (idx, k) in counts {
            if let Some(ent) = m.srsmt.get_mut(idx) {
                ent.decode = ent.commit + k;
            }
        }
        self.mech = Some(m);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Mode, RegFileSize, SimConfig};
    use crate::pipeline::Pipeline;
    use cfir_emu::MemImage;
    use cfir_isa::{assemble, Program};

    /// Figure-1 style hammock with a strided load and a CI accumulator.
    fn hammock() -> (Program, MemImage) {
        let p = assemble(
            "h",
            r#"
                li r1, 4096
                li r2, 0
                li r3, 2000
            top:
                muli r4, r2, 8
                andi r4, r4, 4095
                add r4, r4, r1
                ld r5, 0(r4)
                beq r5, r0, e
                addi r6, r6, 1
                jmp j
            e:  addi r7, r7, 1
            j:  add r8, r8, r5
                addi r2, r2, 1
                blt r2, r3, top
                halt
            "#,
        )
        .unwrap();
        let mut mem = MemImage::new();
        let mut x = 99u64;
        for i in 0..512u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            mem.write(4096 + i * 8, (x >> 62) & 1);
        }
        (p, mem)
    }

    fn run(mode: Mode) -> Pipeline<'static> {
        let (p, mem) = hammock();
        let p: &'static Program = Box::leak(Box::new(p));
        let mut cfg = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_regs(RegFileSize::Finite(512))
            .with_max_insts(u64::MAX >> 1);
        cfg.cosim_check = true;
        let mut pipe = Pipeline::new(p, mem, cfg);
        pipe.run();
        pipe
    }

    #[test]
    fn selection_sets_the_s_flag_on_the_hot_load() {
        let pipe = run(Mode::Ci);
        let m = pipe.mech.as_ref().unwrap();
        // The load is at pc 6 (byte pc 24).
        assert!(
            m.stride.selected(24),
            "the CI-feeding strided load must carry S"
        );
        assert!(m.stride.is_strided(24));
    }

    #[test]
    fn srsmt_holds_the_vectorized_chain() {
        let pipe = run(Mode::Ci);
        let m = pipe.mech.as_ref().unwrap();
        assert!(
            m.srsmt.occupancy() >= 1,
            "at least the load stays vectorized"
        );
        assert!(
            m.srsmt.find(24).is_some(),
            "load entry present at end of run"
        );
        assert!(
            pipe.stats.vectorizations >= 2,
            "load + dependents vectorized"
        );
    }

    #[test]
    fn replica_window_counters_are_sane_at_rest() {
        let pipe = run(Mode::Ci);
        let m = pipe.mech.as_ref().unwrap();
        for (_, e) in m.srsmt.iter_valid() {
            assert!(e.commit <= e.decode, "commit may not pass decode");
            assert!(e.decode <= e.head, "decode may not pass head");
            assert!(
                e.head - e.commit <= e.nregs as u32,
                "window never exceeds Nregs outstanding"
            );
        }
    }

    #[test]
    fn mbs_learns_both_branch_characters() {
        let pipe = run(Mode::Ci);
        let m = pipe.mech.as_ref().unwrap();
        // The hammock branch (pc 7 -> byte 28) is data-random: hard.
        assert!(m.mbs.is_hard(28), "hammock branch must classify hard");
        // The loop-closing branch is near-always taken: its *final*
        // not-taken resets the MBS counter to mid (by design), so test
        // its character through the misprediction counts instead — the
        // hammock dominates.
        assert!(
            pipe.stats.mispredicts as f64 > 0.3 * 2000.0,
            "the random hammock mispredicts often"
        );
        assert!(
            pipe.stats.mispredicts < 2000 + 50,
            "the loop branch contributes almost none"
        );
    }

    #[test]
    fn scalar_mode_carries_no_mechanism() {
        let pipe = run(Mode::Scalar);
        assert!(pipe.mech.is_none());
        assert!(pipe.replicas.is_empty());
        assert_eq!(pipe.stats.replicas_created, 0);
    }

    #[test]
    fn vect_mode_skips_ci_selection() {
        let pipe = run(Mode::Vect);
        let m = pipe.mech.as_ref().unwrap();
        // vect vectorizes on trust alone; nothing sets S flags or events.
        assert!(!m.stride.selected(24));
        assert!(pipe.stats.vectorizations > 0);
        let (_, sel, reu) = pipe.stats.events.counts();
        assert_eq!(sel, 0, "no CI selection events in vect mode");
        let _ = reu;
    }

    #[test]
    fn replicas_do_not_leak_registers() {
        let pipe = run(Mode::Ci);
        let m = pipe.mech.as_ref().unwrap();
        // Every live replica register is owned by a live SRSMT entry;
        // the total in-use count must be bounded by arch mappings +
        // in-flight window + replica windows.
        let replica_regs: usize = m
            .srsmt
            .iter_valid()
            .map(|(_, e)| (e.head - e.commit) as usize)
            .sum();
        let bound = 65 + pipe.rob.len() + replica_regs;
        assert!(
            pipe.rf.in_use() <= bound,
            "{} registers in use, bound {}",
            pipe.rf.in_use(),
            bound
        );
    }
}
