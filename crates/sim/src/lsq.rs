//! Load/store queue with store→load forwarding.
//!
//! Table 1: 64 entries, store-load forwarding, and loads may execute
//! only when all prior store addresses are known (conservative
//! disambiguation, as in SimpleScalar's default).

use std::collections::VecDeque;

/// One LSQ entry (loads and stores share the queue, in program order).
#[derive(Debug, Clone, Copy)]
pub struct LsqEntry {
    /// Dynamic sequence number of the owning instruction.
    pub seq: u64,
    /// `true` for stores.
    pub store: bool,
    /// Effective address once computed.
    pub addr: Option<u64>,
    /// Store data once available.
    pub data: Option<u64>,
}

/// What a load should do this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSearch {
    /// No older conflicting store: access the data cache.
    CacheAccess,
    /// An older store to the same word supplies the value.
    Forwarded(u64),
    /// Cannot execute yet (unknown older store address, or matching
    /// store data not ready).
    Stall,
}

/// The bounded load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    q: VecDeque<LsqEntry>,
    cap: usize,
}

impl Lsq {
    /// Create a queue with `cap` entries.
    pub fn new(cap: usize) -> Self {
        Lsq {
            q: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Whether a new memory instruction can be accepted.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.q.len() < self.cap
    }

    /// Occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Append a memory instruction at dispatch (program order).
    ///
    /// # Panics
    /// Panics when full — callers must check [`Lsq::has_room`].
    pub fn push(&mut self, seq: u64, store: bool) {
        assert!(self.has_room(), "LSQ overflow");
        debug_assert!(self.q.back().map(|e| e.seq < seq).unwrap_or(true));
        self.q.push_back(LsqEntry {
            seq,
            store,
            addr: None,
            data: None,
        });
    }

    fn find_mut(&mut self, seq: u64) -> Option<&mut LsqEntry> {
        self.q.iter_mut().find(|e| e.seq == seq)
    }

    /// Record the computed effective address (word-aligned).
    pub fn set_addr(&mut self, seq: u64, addr: u64) {
        if let Some(e) = self.find_mut(seq) {
            e.addr = Some(addr);
        }
    }

    /// Record a store's data value.
    pub fn set_data(&mut self, seq: u64, data: u64) {
        if let Some(e) = self.find_mut(seq) {
            e.data = Some(data);
        }
    }

    /// Entry lookup (diagnostics / commit).
    pub fn get(&self, seq: u64) -> Option<&LsqEntry> {
        self.q.iter().find(|e| e.seq == seq)
    }

    /// Decide what the load `seq` at `addr` should do, scanning older
    /// stores youngest-first.
    pub fn search_for_load(&self, seq: u64, addr: u64) -> LoadSearch {
        let mut unknown_older_addr = false;
        let mut forward: Option<LoadSearch> = None;
        for e in self.q.iter().rev() {
            if e.seq >= seq || !e.store {
                continue;
            }
            match e.addr {
                None => {
                    unknown_older_addr = true;
                    // Keep scanning: a younger-than-this store match would
                    // still be unsafe because this unknown store sits in
                    // between only if it is *younger* than the match; since
                    // we scan youngest-first, any match found later is older
                    // than this unknown store, so bail out conservatively.
                    break;
                }
                Some(a) if a == addr && forward.is_none() => {
                    forward = Some(match e.data {
                        Some(d) => LoadSearch::Forwarded(d),
                        None => LoadSearch::Stall,
                    });
                    break;
                }
                _ => {}
            }
        }
        if let Some(f) = forward {
            return f;
        }
        if unknown_older_addr {
            return LoadSearch::Stall;
        }
        LoadSearch::CacheAccess
    }

    /// The store that currently makes [`Lsq::search_for_load`] return
    /// [`LoadSearch::Stall`] for the load `seq` at `addr`: the youngest
    /// older store with an unknown address, or the matching store whose
    /// data is not ready yet. `None` when nothing blocks (the
    /// disambiguation side of the lifecycle wait-edge taxonomy).
    pub fn blocking_store_for_load(&self, seq: u64, addr: u64) -> Option<u64> {
        for e in self.q.iter().rev() {
            if e.seq >= seq || !e.store {
                continue;
            }
            match e.addr {
                None => return Some(e.seq),
                Some(a) if a == addr => {
                    return if e.data.is_none() { Some(e.seq) } else { None };
                }
                _ => {}
            }
        }
        None
    }

    /// Remove the head entry when its instruction commits.
    pub fn pop_committed(&mut self, seq: u64) {
        if let Some(head) = self.q.front() {
            if head.seq == seq {
                self.q.pop_front();
                return;
            }
        }
        debug_assert!(
            self.q.front().map(|e| e.seq > seq).unwrap_or(true),
            "LSQ head older than committing instruction"
        );
    }

    /// Drop entries of squashed instructions (younger than `seq`).
    pub fn squash_younger(&mut self, seq: u64) {
        while let Some(tail) = self.q.back() {
            if tail.seq > seq {
                self.q.pop_back();
            } else {
                break;
            }
        }
    }

    /// Clear everything (full flush).
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_from_matching_store() {
        let mut l = Lsq::new(8);
        l.push(1, true);
        l.set_addr(1, 1000);
        l.set_data(1, 77);
        l.push(2, false);
        assert_eq!(l.search_for_load(2, 1000), LoadSearch::Forwarded(77));
        assert_eq!(l.search_for_load(2, 1008), LoadSearch::CacheAccess);
    }

    #[test]
    fn youngest_matching_store_wins() {
        let mut l = Lsq::new(8);
        l.push(1, true);
        l.set_addr(1, 1000);
        l.set_data(1, 1);
        l.push(2, true);
        l.set_addr(2, 1000);
        l.set_data(2, 2);
        l.push(3, false);
        assert_eq!(l.search_for_load(3, 1000), LoadSearch::Forwarded(2));
    }

    #[test]
    fn unknown_older_store_address_stalls() {
        let mut l = Lsq::new(8);
        l.push(1, true); // no address yet
        l.push(2, false);
        assert_eq!(l.search_for_load(2, 1000), LoadSearch::Stall);
        l.set_addr(1, 2000);
        l.set_data(1, 9);
        assert_eq!(l.search_for_load(2, 1000), LoadSearch::CacheAccess);
    }

    #[test]
    fn matching_store_without_data_stalls() {
        let mut l = Lsq::new(8);
        l.push(1, true);
        l.set_addr(1, 1000);
        l.push(2, false);
        assert_eq!(l.search_for_load(2, 1000), LoadSearch::Stall);
    }

    #[test]
    fn younger_stores_are_ignored() {
        let mut l = Lsq::new(8);
        l.push(1, false);
        l.push(2, true);
        l.set_addr(2, 1000);
        l.set_data(2, 5);
        assert_eq!(l.search_for_load(1, 1000), LoadSearch::CacheAccess);
    }

    #[test]
    fn intervening_unknown_store_blocks_older_match() {
        let mut l = Lsq::new(8);
        l.push(1, true);
        l.set_addr(1, 1000);
        l.set_data(1, 5);
        l.push(2, true); // unknown address between the match and the load
        l.push(3, false);
        assert_eq!(l.search_for_load(3, 1000), LoadSearch::Stall);
    }

    #[test]
    fn blocking_store_mirrors_the_stall_verdict() {
        let mut l = Lsq::new(8);
        l.push(1, true); // unknown address
        l.push(2, true);
        l.set_addr(2, 1000); // matching, data missing
        l.push(3, false);
        // Youngest blocker first: store 2 matches but has no data.
        assert_eq!(l.search_for_load(3, 1000), LoadSearch::Stall);
        assert_eq!(l.blocking_store_for_load(3, 1000), Some(2));
        l.set_data(2, 7);
        // Now the match forwards; nothing blocks.
        assert_eq!(l.search_for_load(3, 1000), LoadSearch::Forwarded(7));
        assert_eq!(l.blocking_store_for_load(3, 1000), None);
        // A different address is still behind store 1's unknown addr.
        assert_eq!(l.search_for_load(3, 2000), LoadSearch::Stall);
        assert_eq!(l.blocking_store_for_load(3, 2000), Some(1));
        l.set_addr(1, 3000);
        l.set_data(1, 0);
        assert_eq!(l.blocking_store_for_load(3, 2000), None);
        assert_eq!(l.search_for_load(3, 2000), LoadSearch::CacheAccess);
    }

    #[test]
    fn commit_pops_head_and_squash_pops_tail() {
        let mut l = Lsq::new(8);
        l.push(1, true);
        l.push(2, false);
        l.push(3, false);
        l.squash_younger(2);
        assert_eq!(l.len(), 2);
        l.pop_committed(1);
        assert_eq!(l.len(), 1);
        l.pop_committed(2);
        assert!(l.is_empty());
    }

    #[test]
    fn capacity_respected() {
        let mut l = Lsq::new(2);
        l.push(1, false);
        l.push(2, false);
        assert!(!l.has_room());
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut l = Lsq::new(1);
        l.push(1, false);
        l.push(2, false);
    }
}
