//! # cfir-sim
//!
//! An execution-driven, cycle-level, 8-way out-of-order superscalar
//! simulator built from scratch for the CFIR reproduction (Pajuelo,
//! González, Valero — IPDPS 2005). It models the Table-1 machine:
//!
//! * 8-wide fetch (gshare-directed, ≤ 1 taken branch, I-cache latency),
//! * register renaming over a bounded/unbounded physical register file
//!   with per-branch checkpoints,
//! * a 256-entry instruction window (growing with the register file,
//!   §3.2), 64-entry LSQ with store→load forwarding,
//! * Table-1 functional units and latencies, 1–2 L1D ports, wide-bus
//!   option (§2.4.5), MSHR-limited outstanding misses,
//! * full wrong-path execution with squash/recovery,
//! * and the paper's five machine variants ([`Mode`]): `scal`, `wb`,
//!   `ci-iw` (squash reuse), `ci` (the proposal) and `vect` (the
//!   full-blown dynamic vectorization comparator of reference [12]).
//!
//! Correctness is enforced two ways: every committed instruction can be
//! checked against the `cfir-emu` golden model (`cosim_check`), and
//! every *reused* value is verified against committed architectural
//! state at commit, with a repair flush on mismatch — so the CI
//! mechanism can never corrupt architectural state, exactly like the
//! hardware proposal.
//!
//! ```
//! use cfir_sim::{Pipeline, SimConfig, RunExit};
//! use cfir_emu::MemImage;
//!
//! let prog = cfir_isa::assemble("demo", "li r1, 2\nli r2, 3\nadd r3, r1, r2\nhalt").unwrap();
//! let mut pipe = Pipeline::new(&prog, MemImage::new(), SimConfig::paper_baseline());
//! assert_eq!(pipe.run(), RunExit::Halted);
//! assert_eq!(pipe.arch_reg(3), 5);
//! ```

pub mod commit_stage;
pub mod config;
pub mod exec;
pub mod lsq;
pub mod mech;
pub mod pipeline;
pub mod prof;
pub mod regfile;
pub mod rob;
pub mod snapshot;
pub mod stall_attr;
pub mod stats;
pub mod vec_engine;

pub use config::{Mode, RegFileSize, SimConfig};
pub use pipeline::{CommitRecord, Pipeline, PipelineSnapshot, RunExit, WarmStart};
pub use prof::{BranchProf, BranchScore};
pub use snapshot::{
    run_json, run_json_sampled, SampleEstimate, SampleWindow, SamplingInfo, SCHEMA_VERSION,
};
pub use stats::{harmonic_mean, SimStats};
