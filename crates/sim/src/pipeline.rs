//! The execution-driven out-of-order pipeline.
//!
//! Stage order inside one simulated cycle (reverse pipeline order so a
//! producer completing in `writeback` can wake a consumer issuing the
//! same cycle, modelling full bypassing):
//!
//! 1. `commit` — in-order retire (≤ 8), store write-back + coherence,
//!    reuse finalisation, golden-model check;
//! 2. `writeback` — finish executing instructions & replicas, resolve
//!    branches (misprediction recovery happens here);
//! 3. `issue` — oldest-first out-of-order select (≤ 8) over the window,
//!    constrained by FUs, D-cache ports, the wide bus and MSHRs;
//! 4. `replica_pump` — the CI replica engine uses *leftover* issue
//!    bandwidth, FUs and ports (§2.4.1: lower priority);
//! 5. `dispatch` — rename + window insertion, mechanism decode hooks
//!    (validation, vectorization, NRBQ/CRP bookkeeping);
//! 6. `fetch` — gshare-directed instruction fetch (≤ 8, one taken
//!    branch), I-cache latency modelled.

use crate::config::{RegFileSize, SimConfig};
use crate::lsq::Lsq;
use crate::mech::{Mech, ReplicaArena};
use crate::regfile::{PhysId, PhysRegFile};
use crate::rob::{Checkpoint, ReuseInfo, RobEntry, RobState};
use crate::stall_attr::DispatchBlock;
use crate::stats::SimStats;
use cfir_core::RenameExt;
use cfir_emu::{Emulator, MemImage};
use cfir_isa::{Inst, Program, NUM_LOGICAL_REGS};
use cfir_mem::Hierarchy;
use cfir_obs::{LifecycleLog, PipeviewSpec, Tracer, WaitEdgeKind};
use cfir_predict::Gshare;
use std::collections::VecDeque;

const NLR: usize = NUM_LOGICAL_REGS;

/// Sentinel for an empty [`Pipeline::jr_btb`] slot (no program target
/// can be `u32::MAX`).
pub(crate) const JR_BTB_EMPTY: u32 = u32::MAX;

/// An instruction in flight between fetch and dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub pc: u32,
    pub inst: Inst,
    pub pred_taken: bool,
    pub pred_target: u32,
    /// Gshare history *before* this branch's prediction was shifted in.
    pub ghist: u64,
    /// Cycle at which the instruction reaches rename.
    pub ready_at: u64,
    /// Lifecycle id (0 when lifecycle tracing is off).
    pub lid: u64,
}

/// Per-cycle consumable resources.
#[derive(Debug, Default)]
pub(crate) struct CycleRes {
    pub issue: u32,
    pub int_alu: u32,
    pub int_muldiv: u32,
    pub fp_alu: u32,
    pub fp_muldiv: u32,
    pub dports: u32,
    /// Open wide-bus line groups this cycle: (line, loads left, latency).
    pub wide_groups: Vec<(u64, u32, u32)>,
    pub specmem_reads: u32,
    pub specmem_writes: u32,
    pub stores_committed: u32,
}

/// One committed instruction, as seen by the commit-log observer.
#[derive(Debug, Clone, Copy)]
pub struct CommitRecord {
    /// Cycle of the commit.
    pub cycle: u64,
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
    /// Result value (stores: the stored data).
    pub value: u64,
    /// Whether a precomputed result was reused.
    pub reused: bool,
}

/// Point-in-time pipeline occupancy (see [`Pipeline::snapshot`]).
#[derive(Debug, Clone, Copy)]
pub struct PipelineSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Next fetch PC.
    pub fetch_pc: u32,
    /// Instructions between fetch and rename.
    pub decode_q: usize,
    /// Window occupancy.
    pub rob: usize,
    /// Window entries with results, waiting to retire in order.
    pub rob_done: usize,
    /// Load/store queue occupancy.
    pub lsq: usize,
    /// Physical registers in use.
    pub regs_in_use: usize,
    /// Replica-engine work items in flight.
    pub replicas_in_flight: usize,
    /// Live SRSMT entries.
    pub srsmt_entries: usize,
    /// Instructions committed so far.
    pub committed: u64,
}

/// Architectural + warm microarchitectural state for starting a
/// pipeline mid-program (see [`Pipeline::restore_checkpoint`]). The
/// sampling subsystem (`cfir-sample`) captures this during functional
/// fast-forward and re-injects it before each detailed window.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Architectural register values (`regs[0]` must be 0).
    pub regs: [u64; NLR],
    /// Program counter to resume at (instruction index, not bytes).
    pub pc: u32,
    /// Committed memory image at the checkpoint.
    pub mem: MemImage,
    /// Committed global branch history (16-bit, as commit maintains it).
    pub ghist: u64,
    /// Gshare counter table (length must match `cfg.gshare_entries`).
    pub gshare_table: Vec<u8>,
    /// Gshare speculative history at the checkpoint.
    pub gshare_history: u64,
    /// Cache-hierarchy warm state (all four levels).
    pub hier: cfir_mem::WarmHierarchy,
}

/// Why [`Pipeline::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `halt` committed.
    Halted,
    /// The committed-instruction budget was reached.
    InstBudget,
    /// The cycle budget was reached.
    CycleBudget,
}

/// The simulator.
pub struct Pipeline<'a> {
    pub(crate) prog: &'a Program,
    /// Configuration (read-only during the run).
    pub cfg: SimConfig,
    /// Statistics.
    pub stats: SimStats,

    pub(crate) cycle: u64,
    pub(crate) next_seq: u64,
    pub(crate) last_committed_seq: u64,
    pub(crate) halted: bool,

    // Front end.
    pub(crate) fetch_pc: u32,
    pub(crate) fetch_wait_until: u64,
    pub(crate) fetch_halted: bool,
    pub(crate) decode_q: VecDeque<Fetched>,

    // Rename.
    pub(crate) rf: PhysRegFile,
    pub(crate) rmap: [PhysId; NLR],
    pub(crate) ext: [RenameExt; NLR],
    pub(crate) arch_map: [PhysId; NLR],
    pub(crate) arch_regs: [u64; NLR],
    pub(crate) arch_pc: u32,
    /// Gshare history as of the last *committed* branch (restored on a
    /// full flush so the predictor does not desynchronise).
    pub(crate) arch_ghist: u64,

    // Window.
    pub(crate) rob: VecDeque<RobEntry>,
    pub(crate) lsq: Lsq,

    // Memory system.
    pub(crate) mem: MemImage,
    pub(crate) hier: Hierarchy,
    /// In-flight L1D line fills: (line, ready_at). Doubles as the MSHR
    /// occupancy (Table 1: up to 16 outstanding misses).
    pub(crate) outstanding_misses: Vec<(u64, u64)>,

    // Predictors.
    pub(crate) gshare: Gshare,
    /// Indirect-jump BTB: last resolved target per static word PC, or
    /// [`JR_BTB_EMPTY`] when the PC has never resolved. Dense (one slot
    /// per program instruction) so the fetch-path lookup is a single
    /// indexed load; program targets can never be `u32::MAX`, so the
    /// sentinel is unambiguous.
    pub(crate) jr_btb: Vec<u32>,

    // Mechanism.
    pub(crate) mech: Option<Mech>,
    pub(crate) replicas: ReplicaArena,

    // Golden model.
    pub(crate) emu: Option<Emulator>,
    /// Fetch-side oracle for perfect branch prediction (limit study):
    /// an emulator kept in lock-step with the fetch stream.
    pub(crate) oracle: Option<Box<Emulator>>,

    // Per-cycle resources.
    pub(crate) res: CycleRes,

    /// Structured tracing (`CFIR_TRACE`/`CFIR_DEBUG`/`CFIR_CSTREAM`,
    /// parsed once). `None` = disabled: every trace site is one branch.
    pub(crate) tracer: Option<Tracer>,

    // Per-cycle stall-attribution state.
    /// A flush (branch recovery or repair) happened this cycle.
    pub(crate) flushed_this_cycle: bool,
    /// Why dispatch stopped early this cycle, if it did.
    pub(crate) dispatch_block: Option<DispatchBlock>,
    /// Cycle of the most recent flush with no commit since.
    pub(crate) last_flush_cycle: Option<u64>,

    /// Ring buffer of recent commits (enabled by
    /// [`Pipeline::enable_commit_log`]).
    pub(crate) commit_log: Option<(usize, std::collections::VecDeque<CommitRecord>)>,

    /// Per-instruction lifecycle recorder (`cfir-viz`); `None` =
    /// disabled, every hook is one branch. Boxed: the log is large and
    /// cold relative to the pipeline state.
    pub(crate) lifecycle: Option<Box<LifecycleLog>>,
    /// Cycle at which lifecycle recording was enabled; the wait-sum
    /// reconciliation against the stall breakdown is exact only from
    /// cycle 0.
    pub(crate) lifecycle_since: u64,
    /// Physical register → lid of the instruction that produces it
    /// (0 = no producer recorded; real lids start at 1). Maintained
    /// only while lifecycle recording is on; gives every dispatched
    /// instruction true dataflow (`Producer`) wait-edges so the
    /// bottleneck DAG re-walk respects dependence chains even when the
    /// per-cycle stall cascade never blamed them. Dense, indexed by
    /// physical register id; grows on demand so `RegFileSize::Infinite`
    /// runs stay correct. Entries are never erased (exactly like the
    /// map this replaces): a slot is only ever overwritten by the next
    /// rename of the same physical register.
    pub(crate) prod_lid: Vec<u64>,
    /// Where to write the Konata pipeview document at the end of the
    /// run (`--pipeview` / `CFIR_PIPEVIEW`).
    pub(crate) pipeview_path: Option<String>,
}

impl<'a> Pipeline<'a> {
    /// Build a pipeline over `prog` with initial memory `mem`.
    pub fn new(prog: &'a Program, mem: MemImage, cfg: SimConfig) -> Self {
        assert!(prog.validate().is_ok(), "program has invalid targets");
        let capacity = match cfg.regs {
            RegFileSize::Finite(n) => Some(n),
            RegFileSize::Infinite => None,
        };
        let mut rf = PhysRegFile::new(capacity);
        // Architectural mappings: r0 -> p0 (zero), r1..r63 -> fresh regs.
        let mut rmap = [0 as PhysId; NLR];
        for (r, slot) in rmap.iter_mut().enumerate().skip(1) {
            let p = rf.alloc().expect("register file too small for arch state");
            rf.force_ready(p, 0);
            *slot = p;
            let _ = r;
        }
        let mech = if cfg.mode.vectorizes() || cfg.mode.selects_ci() {
            Some(Mech::new(cfg.mech.clone(), prog.insts.len()))
        } else {
            None
        };
        let emu = if cfg.cosim_check {
            Some(Emulator::new(mem.clone()))
        } else {
            None
        };
        let oracle = if cfg.perfect_branch_prediction {
            Some(Box::new(Emulator::new(mem.clone())))
        } else {
            None
        };
        let gshare = Gshare::new(cfg.gshare_entries);
        let hier = Hierarchy::new(cfg.hierarchy.clone());
        let lsq = Lsq::new(cfg.lsq as usize);
        let mut pipe = Pipeline {
            prog,
            stats: SimStats::default(),
            cycle: 0,
            next_seq: 1,
            last_committed_seq: 0,
            halted: false,
            fetch_pc: 0,
            fetch_wait_until: 0,
            fetch_halted: false,
            decode_q: VecDeque::new(),
            rf,
            arch_map: rmap,
            rmap,
            ext: [RenameExt::new(); NLR],
            arch_regs: [0; NLR],
            arch_pc: 0,
            arch_ghist: 0,
            rob: VecDeque::with_capacity(cfg.window as usize),
            lsq,
            mem,
            hier,
            outstanding_misses: Vec::new(),
            gshare,
            jr_btb: vec![JR_BTB_EMPTY; prog.insts.len()],
            mech,
            replicas: ReplicaArena::default(),
            emu,
            oracle,
            res: CycleRes::default(),
            tracer: Tracer::from_env(),
            flushed_this_cycle: false,
            dispatch_block: None,
            last_flush_cycle: None,
            commit_log: None,
            prod_lid: Vec::new(),
            lifecycle: None,
            lifecycle_since: 0,
            pipeview_path: None,
            cfg,
        };
        if let Some(spec) = PipeviewSpec::from_env() {
            pipe.enable_pipeview(&spec.path, spec.cap);
        } else if pipe.cfg.record_lifecycle {
            // Unbounded ring: the bottleneck analysis needs the whole
            // causal DAG (`dropped > 0` would truncate it).
            pipe.enable_lifecycle(0);
        }
        // Seed the per-branch scorecards with static oracle truth: the
        // post-dominator reconvergence PC and hammock class of every
        // conditional branch, so the runtime detector's estimates can
        // be scored against ground truth as events open.
        let analysis = cfir_analyze::analyze(prog);
        for b in &analysis.branches {
            pipe.stats.branch_prof.set_static_truth(
                b.pc,
                crate::prof::StaticTruth {
                    rcp: b.rcp,
                    class: b.class.name(),
                    is_hammock: b.class.is_hammock(),
                },
            );
        }
        // ... and with the dataflow engine's CIDI/CIDD/clobbered
        // verdicts, so every reuse outcome in a hammock's CI region
        // can be scored against the static dataflow prediction.
        for bc in &analysis.cidi.branches {
            for v in &bc.verdicts {
                pipe.stats
                    .branch_prof
                    .set_cidi_verdict(bc.branch_pc, v.pc, v.verdict.name());
            }
        }
        pipe
    }

    /// Start this pipeline from a mid-program architectural state with
    /// warm predictor/cache contents, instead of from reset. Must be
    /// called before the first cycle: the committed register map laid
    /// down by [`Pipeline::new`] is reused, each architectural register
    /// is forced ready with the checkpointed value, and the golden
    /// co-simulation / perfect-BP oracle emulators (when enabled) are
    /// re-seeded so they stay in lockstep from the restored PC onward.
    ///
    /// The indirect-jump BTB starts cold (it is speculative fetch
    /// state, not architectural); the detailed warmup portion of a
    /// sampling window absorbs that transient.
    pub fn restore_checkpoint(&mut self, warm: &WarmStart) {
        assert_eq!(
            self.cycle, 0,
            "restore_checkpoint must run before the first cycle"
        );
        assert_eq!(warm.regs[0], 0, "r0 must be zero in a checkpoint");
        for r in 1..NLR {
            self.arch_regs[r] = warm.regs[r];
            self.rf.force_ready(self.arch_map[r], warm.regs[r]);
        }
        self.arch_pc = warm.pc;
        self.fetch_pc = warm.pc;
        self.arch_ghist = warm.ghist & ((1u64 << 16) - 1);
        self.gshare
            .import_warm(&warm.gshare_table, warm.gshare_history);
        self.hier.import_warm(&warm.hier);
        self.mem = warm.mem.clone();
        if let Some(e) = &mut self.emu {
            e.regs = warm.regs;
            e.pc = warm.pc;
            e.mem = warm.mem.clone();
            e.halted = false;
        }
        if let Some(o) = &mut self.oracle {
            o.regs = warm.regs;
            o.pc = warm.pc;
            o.mem = warm.mem.clone();
            o.halted = false;
        }
    }

    /// Rebuild the tracer (if any) with its file sinks suffixed by
    /// `scope`, so concurrent pipelines sharing one `CFIR_TRACE` value
    /// write distinct trace files instead of interleaving. No-op when
    /// tracing is off; the text sink is unaffected.
    pub fn scope_trace(&mut self, scope: &str) {
        if let Some(t) = &self.tracer {
            self.tracer = Some(Tracer::new(t.filter().scoped(scope)));
        }
        if let Some(p) = &self.pipeview_path {
            self.pipeview_path = Some(cfir_obs::filter::scope_path(p, scope));
        }
    }

    /// Record a per-instruction lifecycle (stage-entry cycles + causal
    /// wait-edges) for every dynamic instruction from now on, keeping
    /// up to `cap` retired records (0 = unbounded). Enable before the
    /// first cycle for the wait-sum reconciliation invariant to hold.
    pub fn enable_lifecycle(&mut self, cap: usize) {
        self.lifecycle_since = self.cycle;
        self.lifecycle = Some(Box::new(LifecycleLog::new(cap)));
    }

    /// [`Pipeline::enable_lifecycle`] plus a Konata pipeview document
    /// written to `path` when the run finishes.
    pub fn enable_pipeview(&mut self, path: &str, cap: usize) {
        self.pipeview_path = Some(path.to_string());
        self.enable_lifecycle(cap);
    }

    /// The lifecycle recorder, when enabled.
    pub fn lifecycle(&self) -> Option<&LifecycleLog> {
        self.lifecycle.as_deref()
    }

    /// Keep the last `n` committed instructions for inspection
    /// ([`Pipeline::commit_log`]).
    pub fn enable_commit_log(&mut self, n: usize) {
        self.commit_log = Some((n, std::collections::VecDeque::with_capacity(n)));
    }

    /// The recorded commit log (empty unless enabled).
    pub fn commit_log(&self) -> impl Iterator<Item = &CommitRecord> {
        self.commit_log.iter().flat_map(|(_, q)| q.iter())
    }

    /// A one-line snapshot of pipeline occupancy, for teaching-style
    /// per-cycle views (`cfir-run --pipeview`).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.cycle,
            fetch_pc: self.fetch_pc,
            decode_q: self.decode_q.len(),
            rob: self.rob.len(),
            rob_done: self
                .rob
                .iter()
                .filter(|e| e.state == RobState::Done)
                .count(),
            lsq: self.lsq.len(),
            regs_in_use: self.rf.in_use(),
            replicas_in_flight: self.replicas.len(),
            srsmt_entries: self.mech.as_ref().map(|m| m.srsmt.occupancy()).unwrap_or(0),
            committed: self.stats.committed,
        }
    }

    /// Current cycle (diagnostics).
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Committed architectural register value (diagnostics/tests).
    pub fn arch_reg(&self, r: u8) -> u64 {
        self.arch_regs[r as usize]
    }

    /// Committed memory (diagnostics/tests).
    pub fn memory(&self) -> &MemImage {
        &self.mem
    }

    /// Run to completion. Returns why the run stopped and fills
    /// [`Pipeline::stats`].
    pub fn run(&mut self) -> RunExit {
        let mut last_commit_cycle = 0u64;
        let mut last_committed = 0u64;
        loop {
            self.step();
            if self.halted {
                self.finalize_stats();
                return RunExit::Halted;
            }
            if self.stats.committed >= self.cfg.max_insts {
                self.finalize_stats();
                return RunExit::InstBudget;
            }
            if self.cfg.max_cycles > 0 && self.cycle >= self.cfg.max_cycles {
                self.finalize_stats();
                return RunExit::CycleBudget;
            }
            // Deadlock detector: the pipeline must commit something
            // every so often; a simulator bug would otherwise hang.
            if self.stats.committed != last_committed {
                last_committed = self.stats.committed;
                last_commit_cycle = self.cycle;
            } else {
                assert!(
                    self.cycle - last_commit_cycle < 200_000,
                    "pipeline deadlock at cycle {} (pc {}, rob {}, decode_q {}, free regs {})",
                    self.cycle,
                    self.fetch_pc,
                    self.rob.len(),
                    self.decode_q.len(),
                    self.rf.available()
                );
            }
        }
    }

    /// Simulate one cycle.
    pub fn step(&mut self) {
        // Reset the per-cycle resource pool in place: `wide_groups`
        // keeps its allocation across cycles instead of being dropped
        // and re-grown every cycle of a wide-bus run.
        self.res.issue = self.cfg.issue_width;
        self.res.int_alu = self.cfg.int_alu;
        self.res.int_muldiv = self.cfg.int_muldiv;
        self.res.fp_alu = self.cfg.fp_alu;
        self.res.fp_muldiv = self.cfg.fp_muldiv;
        self.res.dports = self.cfg.dports;
        self.res.wide_groups.clear();
        self.res.specmem_reads = 2;
        self.res.specmem_writes = 2;
        self.res.stores_committed = 0;
        if !self.outstanding_misses.is_empty() {
            self.outstanding_misses.retain(|&(_, d)| d > self.cycle);
        }
        self.flushed_this_cycle = false;
        self.dispatch_block = None;
        let committed_before = self.stats.committed;

        self.commit();
        if !self.halted {
            self.writeback();
            if self.cfg.mech.replicas_first {
                // §2.4.1 ablation: replicas steal bandwidth first.
                self.replica_pump();
                self.issue();
            } else {
                self.issue();
                self.replica_pump();
            }
            self.dispatch();
            self.fetch();
        }

        self.attribute_stalls(committed_before);
        self.stats.reg_occupancy_sum += self.rf.in_use() as u64;
        self.stats.reg_high_water = self.stats.reg_high_water.max(self.rf.high_water as u64);
        self.stats.cycles += 1;
        self.cycle += 1;
        if self.cfg.interval_cycles > 0 && self.cycle.is_multiple_of(self.cfg.interval_cycles) {
            let prev = self.stats.intervals.last().copied().unwrap_or_default();
            let dc = self.cycle - prev.cycle;
            let di = self.stats.committed - prev.committed;
            let dr = self.stats.committed_reuse - prev.committed_reuse;
            let db = self.stats.branches - prev.branches;
            let dm = self.stats.mispredicts - prev.mispredicts;
            let rate = |num: u64, den: u64| {
                if den == 0 {
                    0.0
                } else {
                    num as f64 / den as f64
                }
            };
            self.stats.intervals.push(crate::stats::IntervalSample {
                cycle: self.cycle,
                committed: self.stats.committed,
                committed_reuse: self.stats.committed_reuse,
                branches: self.stats.branches,
                mispredicts: self.stats.mispredicts,
                interval_ipc: rate(di, dc),
                interval_mispredict_rate: rate(dm, db),
                interval_reuse_rate: rate(dr, di),
                rob_occupancy: self.rob.len() as u32,
                regs_in_use: self.rf.in_use() as u32,
            });
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.l1d_misses = self.hier.l1d.misses;
        self.stats.l1d_writebacks = self.hier.l1d.writebacks;
        self.stats.l1i_accesses = self.hier.l1i.accesses;
        self.stats.l1i_misses = self.hier.l1i.misses;
        self.stats.l2_accesses = self.hier.l2.accesses;
        self.stats.l2_misses = self.hier.l2.misses;
        self.stats.l3_accesses = self.hier.l3.accesses;
        self.stats.l3_misses = self.hier.l3.misses;
        self.stats.mem_accesses = self.hier.mem_accesses;
        if let Some(m) = &self.mech {
            self.stats.srsmt = m.srsmt.stats;
            // Static-oracle cross-check of the MBS table: tags are
            // exact full byte PCs, so every valid entry must name a
            // conditional branch of the program.
            for pc in m.mbs.valid_pcs() {
                self.stats.oracle_mbs_checked += 1;
                let word = (pc / 4) as u32;
                let is_branch = self
                    .prog
                    .fetch(word)
                    .map(|i| i.is_cond_branch())
                    .unwrap_or(false);
                if !is_branch {
                    self.stats.oracle_mbs_nonbranch += 1;
                }
            }
        }
        // Fold per-event outcomes into the per-branch scorecards (the
        // clone is a few bytes per misprediction, once per run).
        let events = self.stats.events.clone();
        self.stats.branch_prof.finalize(&events);
        // Accounting invariant: every commit slot of every cycle was
        // charged to exactly one cause.
        if let Err(e) = self
            .stats
            .stall
            .check_sum(self.stats.cycles, self.cfg.commit_width as u64)
        {
            panic!("stall attribution broken: {e}");
        }
        if let Some(log) = &self.lifecycle {
            self.stats.lifecycle_records = log.len() as u64 + log.dropped();
            self.stats.lifecycle_dropped = log.dropped();
            // Per-instruction wait sums must reconcile exactly with the
            // aggregate stall attribution — same invariant, finer grain
            // (only exact when the recorder saw the whole run).
            if self.lifecycle_since == 0 {
                if let Err(e) = log.reconcile(&self.stats.stall) {
                    panic!("lifecycle attribution broken: {e}");
                }
                // Whole-run causal DAG available: derive the critical
                // path and the what-if speed-limit projections.
                self.stats.bottleneck = Some(cfir_obs::critpath::analyze(
                    log,
                    self.cfg.commit_width as u64,
                    self.cfg.window as usize,
                ));
            }
            if let Some(path) = &self.pipeview_path {
                if let Err(e) = std::fs::write(path, log.render_konata()) {
                    eprintln!("cfir-sim: could not write pipeview {path}: {e}");
                }
            }
        }
        if let Some(t) = &self.tracer {
            t.flush();
        }
    }

    // ----------------------------------------------------------------
    // Fetch
    // ----------------------------------------------------------------

    fn fetch(&mut self) {
        if self.fetch_halted || self.cycle < self.fetch_wait_until {
            return;
        }
        if self.decode_q.len() >= (3 * self.cfg.fetch_width) as usize {
            return; // decoupled front end: bounded fetch buffer
        }
        // One I-cache access per fetch cycle.
        let lat = self.hier.access_inst(Program::byte_pc(self.fetch_pc));
        if lat > self.cfg.hierarchy.l1_hit {
            self.fetch_wait_until = self.cycle + lat as u64;
            return;
        }
        let mut taken_seen = false;
        for _ in 0..self.cfg.fetch_width {
            let pc = self.fetch_pc;
            let Some(&inst) = self.prog.fetch(pc) else {
                // Ran off the program: stop fetching (workloads halt).
                self.fetch_halted = true;
                break;
            };
            let ghist = self.gshare.history();
            let (pred_taken, pred_target) = if let Some(oracle) = &mut self.oracle {
                // Limit study: the oracle emulator supplies the true
                // direction and target for every control transfer.
                debug_assert_eq!(oracle.pc, pc, "oracle out of step with fetch");
                let r = oracle.step(self.prog).expect("oracle must keep running");
                if inst.is_cond_branch() {
                    // Keep gshare's speculative history shaped like the
                    // real stream so its state stays comparable.
                    let _ = self.gshare.predict_and_update(Program::byte_pc(pc));
                    self.gshare.restore_history(ghist);
                    self.gshare.push(r.taken);
                }
                (r.taken, r.next_pc)
            } else {
                match inst {
                    Inst::Br { target, .. } => {
                        let t = self.gshare.predict_and_update(Program::byte_pc(pc));
                        (t, if t { target } else { pc + 1 })
                    }
                    Inst::Jmp { target } => (true, target),
                    Inst::Jr { .. } => {
                        let t = match self.jr_btb[pc as usize] {
                            JR_BTB_EMPTY => pc + 1,
                            t => t,
                        };
                        (true, t)
                    }
                    _ => (false, pc + 1),
                }
            };
            let ready_at = self.cycle + self.cfg.decode_delay as u64;
            let lid = match &mut self.lifecycle {
                Some(log) => log.begin_fetch(pc as u64, || inst.to_string(), self.cycle, ready_at),
                None => 0,
            };
            self.decode_q.push_back(Fetched {
                pc,
                inst,
                pred_taken,
                pred_target,
                ghist,
                ready_at,
                lid,
            });
            self.stats.fetched += 1;
            if matches!(inst, Inst::Halt) {
                self.fetch_halted = true;
                break;
            }
            self.fetch_pc = pred_target;
            if pred_taken {
                if taken_seen {
                    break; // at most one taken branch per fetch group
                }
                taken_seen = true;
            }
        }
    }

    // ----------------------------------------------------------------
    // Dispatch (decode + rename + window insertion)
    // ----------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.issue_width {
            let Some(f) = self.decode_q.front().copied() else {
                break;
            };
            if f.ready_at > self.cycle {
                self.dispatch_block = Some(DispatchBlock::DecodeWait);
                break;
            }
            if self.rob.len() >= self.cfg.window as usize {
                self.dispatch_block = Some(DispatchBlock::RobFull);
                break;
            }
            let is_mem = f.inst.is_load() || f.inst.is_store();
            if is_mem && !self.lsq.has_room() {
                self.dispatch_block = Some(DispatchBlock::LsqFull);
                break;
            }
            if f.inst.dest().is_some() && self.rf.available() < 1 {
                // No physical register for the destination.
                self.dispatch_block = Some(DispatchBlock::NoRegs);
                break;
            }
            self.decode_q.pop_front();

            let seq = self.next_seq;
            self.next_seq += 1;
            let mut e = RobEntry::new(seq, f.pc, f.inst);
            e.lid = f.lid;
            e.pred_taken = f.pred_taken;
            e.pred_target = f.pred_target;
            e.ghist = f.ghist;
            e.dispatched_at = self.cycle;
            if let Some(log) = &mut self.lifecycle {
                log.note_dispatch(f.lid, seq, self.cycle);
            }

            // Mechanism decode hooks (validation may deliver a reuse).
            let reuse = self.mech_decode(&mut e);

            // Rename sources. With lifecycle recording on, each source
            // also records a true dataflow `Producer` edge (the stall
            // cascade only blames the window head, which misses chains
            // of back-to-back misses; the bottleneck re-walk needs the
            // full dependence DAG).
            let srcs = f.inst.sources();
            for (i, s) in srcs.iter().enumerate() {
                if let Some(r) = s {
                    let p = self.rmap[*r as usize];
                    e.src_phys[i] = Some(p);
                    if let Some(log) = &mut self.lifecycle {
                        match self.prod_lid.get(p as usize) {
                            Some(&plid) if plid != 0 => {
                                log.edge(f.lid, WaitEdgeKind::Producer, Some(plid), "", self.cycle);
                            }
                            _ => {}
                        }
                    }
                }
            }
            // Checkpoint for everything that can redirect (Br, Jr).
            if matches!(f.inst, Inst::Br { .. } | Inst::Jr { .. }) {
                e.checkpoint = Some(Box::new(Checkpoint {
                    rmap: self.rmap,
                    ext: self.ext,
                    ghist: f.ghist,
                }));
            }
            // Rename destination.
            if let Some(d) = f.inst.dest() {
                let p = self.rf.alloc().expect("checked above");
                e.old_phys = Some(self.rmap[d as usize]);
                e.new_phys = Some(p);
                e.ldest = Some(d);
                self.rmap[d as usize] = p;
                if self.lifecycle.is_some() {
                    if self.prod_lid.len() <= p as usize {
                        self.prod_lid.resize(p as usize + 1, 0);
                    }
                    self.prod_lid[p as usize] = f.lid;
                }
            }
            // Memory instructions enter the LSQ.
            if is_mem {
                self.lsq.push(seq, f.inst.is_store());
                e.in_lsq = true;
            }
            // Vectorization triggers run post-rename (the destination
            // register seeds loop-carried self-dependences); skipped
            // when the instruction is a validated reuse.
            if reuse.is_none() {
                self.mech_vectorize(&e);
            }
            // Rename-extension propagation + reuse wiring.
            self.update_ext_and_state(&mut e, reuse);

            self.rob.push_back(e);
        }
    }

    /// Apply the stridedPC/V-S propagation rules to the destination and
    /// wire a validated reuse into the entry.
    fn update_ext_and_state(&mut self, e: &mut RobEntry, reuse: Option<ReuseInfo>) {
        // Destination extension update.
        if let Some(d) = e.ldest {
            let d = d as usize;
            match e.inst {
                Inst::Ld { .. } => {
                    let mut x = RenameExt::new();
                    if let Some(m) = &self.mech {
                        let bpc = Program::byte_pc(e.pc);
                        if m.stride.is_strided(bpc) {
                            x.set_strided_load(bpc);
                        }
                    }
                    self.ext[d] = x;
                }
                Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Fp { .. } => {
                    let cap = self.cfg.mech.strided_pc_slots;
                    let srcs = e.inst.sources();
                    let mut refs: Vec<&RenameExt> = Vec::with_capacity(2);
                    for s in srcs.iter().flatten() {
                        refs.push(&self.ext[*s as usize]);
                    }
                    let (x, dropped) = RenameExt::propagate_from(&refs, cap);
                    self.stats.strided_pc_dropped += dropped as u64;
                    if x.len() + dropped > 0 {
                        self.stats.strided_pc_sum += (x.len() + dropped) as u64;
                        self.stats.strided_pc_samples += 1;
                    }
                    self.ext[d] = x;
                }
                _ => self.ext[d] = RenameExt::new(),
            }
            // V/S: set when this PC currently has an SRSMT entry (it was
            // vectorized, either fresh this cycle or still live).
            let vectorized = self
                .mech
                .as_ref()
                .map(|m| m.srsmt.find(Program::byte_pc(e.pc)).is_some())
                .unwrap_or(false);
            if vectorized {
                self.ext[d].set_vectorized(Program::byte_pc(e.pc));
            } else {
                self.ext[d].clear_vectorized();
            }
        }

        // Reuse wiring: the instruction does not execute.
        if let Some(r) = reuse {
            e.value = r.value;
            e.reuse = Some(r);
            if let Some(log) = &mut self.lifecycle {
                log.set_reused(e.lid, true);
            }
            if r.pending {
                // The replica is still executing; the validating
                // instruction waits for the value (polled in writeback;
                // `done_at` records when the wait started so a stuck
                // chain can fall back to normal execution).
                e.state = RobState::Executing;
                e.done_at = self.cycle;
            } else {
                self.stats.h_reuse_wait.record(0);
                self.deliver_reuse_value(e, r.value);
            }
            if e.inst.is_load() {
                if let Some(a) = e.addr {
                    self.lsq.set_addr(e.seq, a);
                }
            }
            return;
        }

        // Non-executing instructions are done at dispatch.
        match e.inst {
            Inst::Nop | Inst::Halt => e.state = RobState::Done,
            Inst::Jmp { target } => {
                e.state = RobState::Done;
                e.actual_taken = true;
                e.actual_target = target;
                e.resolved = true;
            }
            _ => {}
        }
        if e.state == RobState::Done {
            if let Some(log) = &mut self.lifecycle {
                log.note_complete(e.lid, self.cycle);
            }
        }
    }

    /// Hand a (now available) replica value to a validating
    /// instruction: immediately with a monolithic register file, or
    /// through the §2.4.6 copy uop (2-cycle speculative memory, 2 read
    /// ports per cycle) when the spec memory is configured.
    pub(crate) fn deliver_reuse_value(&mut self, e: &mut RobEntry, value: u64) {
        e.value = value;
        self.notify_seed(e.seq, value);
        if let Some(r) = &mut e.reuse {
            r.value = value;
            r.pending = false;
        }
        let specmem_lat = self
            .mech
            .as_ref()
            .and_then(|m| m.specmem.as_ref())
            .map(|s| s.latency);
        if let Some(lat) = specmem_lat {
            let port_penalty = if self.res.specmem_reads == 0 { 1 } else { 0 };
            self.res.specmem_reads = self.res.specmem_reads.saturating_sub(1);
            self.stats.specmem_copies += 1;
            e.state = RobState::Executing;
            e.done_at = self.cycle + lat as u64 + port_penalty;
        } else {
            if let Some(p) = e.new_phys {
                self.rf.write(p, value);
            }
            e.state = RobState::Done;
            if let Some(log) = &mut self.lifecycle {
                log.note_complete(e.lid, self.cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use cfir_isa::{assemble, AluOp, Cond, Program, ProgramBuilder};

    fn run_program(src: &str, mode: Mode) -> (SimStats, [u64; NLR]) {
        run_built(assemble("t", src).unwrap(), mode)
    }

    /// Debug kernels with generated instruction sequences go through
    /// [`ProgramBuilder`] — the entry point the workloads crate builds
    /// every suite kernel with — rather than `format!`-assembled text,
    /// so there is only one generator path to keep correct.
    fn run_built(p: Program, mode: Mode) -> (SimStats, [u64; NLR]) {
        let mut cfg = SimConfig::paper_baseline().with_mode(mode);
        cfg.cosim_check = true;
        let mut pl = Pipeline::new(&p, MemImage::new(), cfg);
        let exit = pl.run();
        assert_eq!(exit, RunExit::Halted);
        (pl.stats.clone(), pl.arch_regs)
    }

    #[test]
    fn straightline_commits_in_order() {
        let (s, regs) = run_program("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt", Mode::Scalar);
        assert_eq!(regs[3], 42);
        assert_eq!(s.committed, 4);
        assert!(s.cycles > 0);
    }

    #[test]
    fn dependent_chain_respects_latency() {
        // 10 dependent multiplies: at least 2 cycles each.
        let mut b = ProgramBuilder::new("dep-chain");
        b.li(1, 1).li(2, 3);
        for _ in 0..10 {
            b.alu(AluOp::Mul, 1, 1, 2);
        }
        b.halt();
        let (s, regs) = run_built(b.finish(), Mode::Scalar);
        assert_eq!(regs[1], 3u64.pow(10));
        assert!(
            s.cycles >= 20,
            "10 dependent muls need >= 20 cycles, got {}",
            s.cycles
        );
    }

    #[test]
    fn independent_ops_go_wide() {
        // A warm loop of independent instructions should commit far
        // faster than 1 IPC (cold straight-line code would miss the
        // I-cache on every 64B line instead).
        let mut b = ProgramBuilder::new("wide");
        b.li(61, 0).li(62, 40);
        let top = b.label_here();
        for i in 1..=24u8 {
            b.li(i, i as i64);
        }
        b.alui(AluOp::Add, 61, 61, 1);
        b.br(Cond::Lt, 61, 62, top);
        b.halt();
        let (s, _) = run_built(b.finish(), Mode::Scalar);
        assert_eq!(s.committed, 2 + 40 * 26 + 1);
        assert!(s.ipc() > 2.0, "ipc = {}", s.ipc());
    }

    #[test]
    fn loop_with_memory_and_branches() {
        let src = r#"
            li r1, 1000
            li r2, 0
            li r3, 50
            li r4, 0
        top:
            muli r5, r2, 8
            add r5, r5, r1
            ld r6, 0(r5)
            add r4, r4, r6
            addi r2, r2, 1
            blt r2, r3, top
            halt
        "#;
        let p = assemble("t", src).unwrap();
        let mut mem = MemImage::new();
        for i in 0..50u64 {
            mem.write(1000 + i * 8, i);
        }
        let mut cfg = SimConfig::paper_baseline();
        cfg.cosim_check = true;
        let mut pl = Pipeline::new(&p, mem, cfg);
        assert_eq!(pl.run(), RunExit::Halted);
        assert_eq!(pl.arch_reg(4), (0..50).sum::<u64>());
        assert!(pl.stats.branches >= 50);
    }

    #[test]
    fn store_load_forwarding_roundtrip() {
        let (_, regs) = run_program(
            "li r1, 4096\nli r2, 99\nst r2, 0(r1)\nld r3, 0(r1)\naddi r3, r3, 1\nhalt",
            Mode::Scalar,
        );
        assert_eq!(regs[3], 100);
    }

    #[test]
    fn hammock_runs_in_every_mode() {
        let src = r#"
            li r1, 1000
            li r2, 0
            li r3, 64
            li r4, 0
            li r7, 0
        top:
            muli r5, r2, 8
            add r5, r5, r1
            ld r6, 0(r5)
            beq r6, r0, else_
            addi r4, r4, 1
            jmp join
        else_:
            addi r7, r7, 1
        join:
            addi r2, r2, 1
            blt r2, r3, top
            halt
        "#;
        let p = assemble("t", src).unwrap();
        let mut mem = MemImage::new();
        for i in 0..64u64 {
            // Pseudo-random zero/non-zero pattern.
            let v = (i * 2654435761) % 7 % 2;
            mem.write(1000 + i * 8, v);
        }
        for mode in [
            Mode::Scalar,
            Mode::WideBus,
            Mode::CiIw,
            Mode::Ci,
            Mode::Vect,
        ] {
            let mut cfg = SimConfig::paper_baseline().with_mode(mode);
            cfg.cosim_check = true;
            let mut pl = Pipeline::new(&p, mem.clone(), cfg);
            assert_eq!(pl.run(), RunExit::Halted, "mode {mode:?}");
            assert_eq!(
                pl.arch_reg(4) + pl.arch_reg(7),
                64,
                "counts must add up in mode {mode:?}"
            );
        }
    }
}
