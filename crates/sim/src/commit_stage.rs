//! In-order commit: store write-back + coherence check (§2.4.3), reuse
//! finalisation with an architectural verify, predictor training, and
//! the golden-model co-simulation check.

use crate::pipeline::Pipeline;
use crate::rob::{RobEntry, RobState};
use cfir_core::RenameExt;
use cfir_emu::MemImage;
use cfir_isa::{Inst, Program, NUM_LOGICAL_REGS};
use cfir_obs::{trace_event, EventKind, Subsystem};

impl Pipeline<'_> {
    /// Architecturally-correct result of `e`, computed from committed
    /// state (exact: commit is in program order).
    fn arch_value_of(&self, e: &RobEntry) -> u64 {
        match e.inst {
            Inst::Alu { op, rs1, rs2, .. } => {
                op.eval(self.arch_regs[rs1 as usize], self.arch_regs[rs2 as usize])
            }
            Inst::AluImm { op, rs1, imm, .. } => op.eval(self.arch_regs[rs1 as usize], imm as u64),
            Inst::Fp { op, rs1, rs2, .. } => {
                op.eval(self.arch_regs[rs1 as usize], self.arch_regs[rs2 as usize])
            }
            Inst::Li { imm, .. } => imm as u64,
            Inst::Ld { base, offset, .. } => {
                let a = MemImage::align(self.arch_regs[base as usize].wrapping_add(offset as u64));
                self.mem.read(a)
            }
            _ => e.value,
        }
    }

    pub(crate) fn commit(&mut self) {
        let mut slots = self.cfg.commit_width;
        while slots > 0 {
            let Some(head) = self.rob.front() else { break };
            if head.state != RobState::Done {
                break;
            }
            let is_store = head.inst.is_store();
            if is_store {
                if self.res.dports == 0 {
                    break; // stores write the D-cache through a port
                }
                // §2.4.3: with the mechanism, at most 2 stores commit
                // per cycle (range-check bandwidth).
                if self.mech.is_some() && self.res.stores_committed >= 2 {
                    break;
                }
            }
            let mut e = self.rob.pop_front().unwrap();
            let mut flush_after = false;

            // --- Reuse finalisation (architectural verify) ---
            if let Some(r) = e.reuse {
                let correct = self.arch_value_of(&e);
                // Dataflow oracle: a reused value surviving to commit
                // unchanged is a definitive "clean" outcome for the
                // static CIDI verdict. A repair is dataflow evidence
                // only when the instance pairing is still provably
                // sound here: squash-reuse pairs the same dynamic
                // instance by FIFO construction (no SRSMT entry), and
                // an SRSMT reuse is sound only if its entry is live
                // with a matching generation and a completed replica
                // slot. A repair with broken pairing (stale
                // generation, torn-down entry, incomplete replica)
                // says nothing about cross-path dataflow and is
                // recorded as a mechanism repair instead.
                if correct == r.value {
                    self.stats
                        .branch_prof
                        .note_cidi_outcome(r.event, e.pc, true);
                } else {
                    // Two mechanism fingerprints are excluded even
                    // when the entry is live: a reuse that delivered
                    // something other than what its replica slot
                    // computed (pending slot grabbed before the value
                    // landed — unfaithful delivery), and instance
                    // skew, where an intervening squash offset the
                    // architectural stream so the correct value sits
                    // in a *different* replica slot of the same
                    // entry. Neither says an arm definition reached
                    // the input.
                    let sound = match r.srsmt_idx {
                        None => true,
                        Some(idx) => self
                            .mech
                            .as_ref()
                            .and_then(|m| m.srsmt.get(idx))
                            .is_some_and(|ent| {
                                ent.gen == r.gen
                                    && r.replica < ent.head
                                    && ent.is_complete(r.replica)
                                    && ent.value_of(r.replica) == r.value
                                    && !(0..ent.head).any(|k| {
                                        k != r.replica
                                            && ent.is_complete(k)
                                            && ent.value_of(k) == correct
                                    })
                            }),
                    };
                    if sound {
                        self.stats
                            .branch_prof
                            .note_cidi_outcome(r.event, e.pc, false);
                    } else {
                        self.stats
                            .branch_prof
                            .note_cidi_mechanism_repair(r.event, e.pc);
                    }
                }
                if correct == r.value {
                    self.stats.committed_reuse += 1;
                    // Scorecard: this reuse skipped one execution; the
                    // cycles saved are the FU latency it avoided (loads:
                    // the L1 hit the replica already paid for it).
                    let saved =
                        e.inst
                            .class()
                            .latency()
                            .unwrap_or(self.cfg.hierarchy.l1_hit) as u64;
                    self.stats.branch_prof.note_reuse_commit(r.event, saved);
                    if let Some(ev) = r.event {
                        self.stats.events.mark_reused(ev);
                    }
                    // Attribute the reuse to the most recent
                    // misprediction as well: its recovery is the one
                    // this precomputed value survived.
                    self.stats.events.mark_reused_current();
                    if let Some(idx) = r.srsmt_idx {
                        self.finish_reuse_commit(&e, idx, r.gen);
                    }
                } else {
                    // The decode-time checks let a wrong value through;
                    // repair architecturally and flush the poisoned
                    // pipeline (counts as mis-speculation recovery).
                    self.stats.commit_check_failures += 1;
                    trace_event!(self.tracer, Subsystem::Commit, e.pc as u64, self.cycle, {
                        let entdbg = r
                            .srsmt_idx
                            .and_then(|i| self.mech.as_ref().unwrap().srsmt.get(i))
                            .map(|ent| {
                                format!(
                                    "ent pc={:#x} gen={} dec={} com={} head={} seq1={:?} seq2={:?} vals={:?}",
                                    ent.pc, ent.gen, ent.decode, ent.commit, ent.head,
                                    ent.seq1, ent.seq2, &ent.values[..4]
                                )
                            })
                            .unwrap_or_default();
                        let true_addr = if let Inst::Ld { base, offset, .. } = e.inst {
                            Some(MemImage::align(
                                self.arch_regs[base as usize].wrapping_add(offset as u64),
                            ))
                        } else {
                            None
                        };
                        EventKind::Note {
                            msg: format!(
                                "commitfail seq={} inst={} got={:#x} want={:#x} true_addr={:x?} e.addr={:x?} replica={} gen={} pending_was={} | {}",
                                e.seq, e.inst, r.value, correct, true_addr, e.addr, r.replica,
                                r.gen, r.pending, entdbg
                            ),
                        }
                    });
                    e.value = correct;
                    if let Some(p) = e.new_phys {
                        self.rf.force_ready(p, correct);
                    }
                    if let Some(idx) = r.srsmt_idx {
                        let mut m = self.mech.take().unwrap();
                        self.teardown_srsmt(&mut m, idx, "commit_repair");
                        // Confidence: repeated commit-time repairs
                        // blacklist the PC from re-vectorization.
                        m.bump_misspec(Program::byte_pc(e.pc));
                        self.mech = Some(m);
                    }
                    flush_after = true;
                }
            }

            // Probes consumed a slot; verify the entry's alignment
            // against this architecturally-final result (confirming the
            // entry or tearing it down), then release the slot like a
            // verified reuse would (without the value benefit).
            if let Some(pr) = e.probe {
                self.finish_reuse_commit_probe(pr);
            }

            // --- Per-kind architectural action ---
            match e.inst {
                Inst::St { src, base, offset } => {
                    let addr =
                        MemImage::align(self.arch_regs[base as usize].wrapping_add(offset as u64));
                    let value = self.arch_regs[src as usize];
                    debug_assert_eq!(Some(addr), e.addr, "store address diverged");
                    debug_assert_eq!(value, e.value, "store data diverged");
                    self.mem.write(addr, value);
                    let _ = self.hier.access_data(addr, true);
                    self.stats.l1d_accesses += 1;
                    self.res.dports -= 1;
                    self.res.stores_committed += 1;
                    self.stats.stores += 1;
                    if self.mech.is_some() {
                        // §2.4.3: an additional cycle per committed store
                        // is modelled as one extra commit slot.
                        slots = slots.saturating_sub(1);
                        // Coherence: kill speculative loads covering addr.
                        let mut m = self.mech.take().unwrap();
                        let hits = m.srsmt.store_check(addr);
                        if !hits.is_empty() {
                            self.stats.store_conflicts += hits.len() as u64;
                            for idx in hits {
                                self.teardown_srsmt(&mut m, idx, "store_conflict");
                            }
                            flush_after = true;
                        }
                        self.mech = Some(m);
                    }
                }
                Inst::Br { .. } => {
                    self.stats.branches += 1;
                    self.stats
                        .branch_prof
                        .note_branch(e.pc, e.actual_target != e.pred_target);
                    self.arch_ghist =
                        ((self.arch_ghist << 1) | e.actual_taken as u64) & ((1u64 << 16) - 1);
                    self.gshare
                        .train(Program::byte_pc(e.pc), e.ghist, e.actual_taken);
                    if let Some(m) = &mut self.mech {
                        m.mbs.observe(Program::byte_pc(e.pc), e.actual_taken);
                    }
                    if e.actual_target != e.pred_target {
                        self.stats.mispredicts += 1;
                    }
                }
                Inst::Ld { base, offset, .. } => {
                    self.stats.loads += 1;
                    // The stride predictor trains at commit: in-order,
                    // architectural, immune to wrong-path pollution
                    // (SimpleScalar trains its predictors the same way).
                    if let Some(m) = &mut self.mech {
                        let a = MemImage::align(
                            self.arch_regs[base as usize].wrapping_add(offset as u64),
                        );
                        m.stride.observe(Program::byte_pc(e.pc), a);
                    }
                }
                _ => {}
            }

            // --- Architectural state update ---
            if let Some(d) = e.ldest {
                self.arch_regs[d as usize] = e.value;
                self.arch_map[d as usize] = e.new_phys.expect("dest without phys");
            }
            if let Some(old) = e.old_phys {
                self.rf.free(old);
            }
            self.arch_pc = if e.inst.is_control() {
                e.actual_target
            } else if matches!(e.inst, Inst::Halt) {
                e.pc
            } else {
                e.pc + 1
            };
            if e.in_lsq {
                self.lsq.pop_committed(e.seq);
            }
            if e.is_cond_branch() {
                if let Some(m) = &mut self.mech {
                    m.nrbq.retire_through(e.seq);
                }
            }

            trace_event!(
                self.tracer,
                Subsystem::Commit,
                e.pc as u64,
                self.cycle,
                EventKind::Commit {
                    seq: e.seq,
                    value: e.value
                }
            );

            if let Some((cap, q)) = &mut self.commit_log {
                if q.len() == *cap {
                    q.pop_front();
                }
                q.push_back(crate::pipeline::CommitRecord {
                    cycle: self.cycle,
                    seq: e.seq,
                    pc: e.pc,
                    inst: e.inst,
                    value: e.value,
                    reused: e.reuse.is_some(),
                });
            }

            // --- Golden-model check ---
            self.cosim_check(&e);

            self.last_committed_seq = e.seq;
            if let Some(fc) = self.last_flush_cycle.take() {
                self.stats.h_flush_recovery.record(self.cycle - fc);
            }
            if let Some(log) = &mut self.lifecycle {
                log.note_commit(e.lid, self.cycle);
            }
            self.stats.committed += 1;
            // The mis-speculation blacklist ages: bootstrap-phase
            // failures should not bar a PC forever, only chronic ones.
            if self.stats.committed.is_multiple_of(32_768) {
                if let Some(m) = &mut self.mech {
                    m.age_misspec();
                }
            }
            slots = slots.saturating_sub(1);

            if matches!(e.inst, Inst::Halt) {
                self.halted = true;
                return;
            }
            if flush_after {
                self.full_flush(self.arch_pc);
                return;
            }
        }
    }

    /// Probe variant of [`Pipeline::finish_reuse_commit`].
    fn finish_reuse_commit_probe(&mut self, pr: crate::rob::ProbeInfo) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let matches_entry = m
            .srsmt
            .get(pr.srsmt_idx)
            .map(|ent| ent.gen == pr.gen && ent.commit < ent.decode)
            .unwrap_or(false);
        if matches_entry {
            let ent = m.srsmt.get_mut(pr.srsmt_idx).unwrap();
            let storage = ent.advance_commit();
            if let Some(sm) = &mut m.specmem {
                sm.release(storage.0);
            } else {
                self.rf.free(storage.0);
            }
        }
        self.mech = Some(m);
    }

    /// Advance the SRSMT `commit` pointer for a verified reuse and free
    /// the consumed replica's storage.
    fn finish_reuse_commit(&mut self, e: &RobEntry, idx: usize, gen: u32) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        let matches_entry = m
            .srsmt
            .get(idx)
            .map(|ent| ent.pc == Program::byte_pc(e.pc) && ent.gen == gen)
            .unwrap_or(false);
        if matches_entry {
            let ent = m.srsmt.get_mut(idx).unwrap();
            if ent.commit < ent.decode {
                let storage = ent.advance_commit();
                if let Some(sm) = &mut m.specmem {
                    sm.release(storage.0);
                } else {
                    self.rf.free(storage.0);
                }
            }
        }
        self.mech = Some(m);
    }

    /// Flush the whole speculative pipeline and restart fetch at
    /// `resume_pc` with the committed architectural state. Used by the
    /// store-coherence squash (§2.4.3) and the commit-time validation
    /// repair. Replicas are *not* squashed (§2.4.4).
    pub(crate) fn full_flush(&mut self, resume_pc: u32) {
        let mut squashed = 0u64;
        while let Some(e) = self.rob.pop_back() {
            if let Some(p) = e.new_phys {
                self.rf.free(p);
            }
            if let Some(log) = &mut self.lifecycle {
                log.note_squash(e.lid, self.cycle);
            }
            self.kill_seed_waiter(e.seq);
            squashed += 1;
        }
        squashed += self.decode_q.len() as u64;
        if let Some(log) = &mut self.lifecycle {
            for f in &self.decode_q {
                log.note_squash(f.lid, self.cycle);
            }
        }
        self.decode_q.clear();
        self.lsq.clear();
        self.stats.squashed += squashed;
        self.flushed_this_cycle = true;
        self.last_flush_cycle = Some(self.cycle);
        trace_event!(
            self.tracer,
            Subsystem::Flush,
            resume_pc as u64,
            self.cycle,
            EventKind::RepairFlush {
                resume_pc: resume_pc as u64,
                squashed
            }
        );
        self.rmap = self.arch_map;
        self.ext = [RenameExt::new(); NUM_LOGICAL_REGS];
        // Resume with the committed branch history so the predictor's
        // speculative state matches the restart point.
        self.gshare.restore_history(self.arch_ghist);
        let flush_seq = self.next_seq; // everything in flight dies
        let _ = flush_seq;
        if let Some(mut m) = self.mech.take() {
            m.nrbq.clear();
            m.crp.deactivate();
            m.clear_squash_buf();
            // Entries created by any squashed (uncommitted) instruction
            // lose their instance alignment.
            let last_committed = self.last_committed_seq;
            self.teardown_created_after(&mut m, last_committed);
            // A full flush is a recovery action: decode <- commit (all
            // in-flight validations died with the window) + DAEC tick.
            let released = m.srsmt.recovery();
            for ent in released {
                for (id, _g) in ent.unconsumed_storage() {
                    if let Some(sm) = &mut m.specmem {
                        sm.release(id);
                    } else {
                        self.rf.free(id);
                    }
                }
                self.reap_replicas(|r| r.pc == ent.pc && r.gen == ent.gen);
            }
            self.mech = Some(m);
        }
        self.fetch_pc = resume_pc;
        self.fetch_halted = false;
        self.fetch_wait_until = self.cycle + 1;
        // Perfect-branch-prediction oracle: rebuild it from committed
        // architectural state so it stays in step with the new fetch
        // stream (flushes are rare; the memory clone is acceptable).
        if let Some(oracle) = &mut self.oracle {
            oracle.regs = self.arch_regs;
            oracle.pc = resume_pc;
            oracle.mem = self.mem.clone();
            oracle.halted = false;
        }
    }

    /// Lock-step golden-model comparison at commit.
    fn cosim_check(&mut self, e: &RobEntry) {
        let Some(mut emu) = self.emu.take() else {
            return;
        };
        let r = emu
            .step(self.prog)
            .unwrap_or_else(|| panic!("golden model stopped before pc {}", e.pc));
        assert_eq!(
            r.pc, e.pc,
            "cosim: committed pc {} but golden model executed pc {} (cycle {})",
            e.pc, r.pc, self.cycle
        );
        if let Some((d, v)) = r.wrote {
            let got = self.arch_regs[d as usize];
            assert_eq!(
                got,
                v,
                "cosim: pc {} wrote r{d}={got:#x}, golden model says {v:#x} (cycle {}, reuse={})",
                e.pc,
                self.cycle,
                e.reuse.is_some()
            );
        }
        if e.inst.is_store() {
            assert_eq!(
                r.addr, e.addr,
                "cosim: store address mismatch at pc {}",
                e.pc
            );
            // Both models have applied the store by this point (the
            // architectural action precedes the check), so the touched
            // word itself must agree — this catches a wrong store
            // *value* that a matching address would hide.
            if let Some(a) = r.addr {
                assert_eq!(
                    self.mem.read(a),
                    emu.mem.read(a),
                    "cosim: stored value mismatch at pc {} addr {a:#x} (cycle {})",
                    e.pc,
                    self.cycle
                );
            }
        }
        if e.inst.is_control() {
            assert_eq!(
                r.next_pc, e.actual_target,
                "cosim: control target mismatch at pc {}",
                e.pc
            );
        }
        self.emu = Some(emu);
    }
}
