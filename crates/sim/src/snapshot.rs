//! Machine-readable per-run telemetry snapshot (`--emit-json`).
//!
//! One run → one versioned JSON document containing every headline
//! metric plus the stall breakdown, latency histograms and interval
//! time series. The schema is documented in `DESIGN.md`; bump
//! [`SCHEMA_VERSION`] on any breaking change so downstream tooling can
//! reject snapshots it does not understand.

use crate::prof::BranchScore;
use crate::stats::SimStats;
use cfir_obs::critpath::{CpiStack, ALL_CLASSES};
use cfir_obs::stall::ALL_CAUSES;
use cfir_obs::{Hist, JsonWriter};

/// Version stamped into every snapshot (`"schema_version"` field).
///
/// History:
/// * **1** — initial schema (metrics, valfail reasons, memory, stall
///   breakdown, histograms, intervals).
/// * **2** — additive: histogram percentiles (`p50`/`p90`/`p99`),
///   extended interval samples (branch counters, rates, occupancy) and
///   the per-branch `branch_prof` scorecard. Every v1 key is unchanged,
///   so v1 consumers can read v2 documents.
/// * **3** — additive: the static-vs-dynamic `oracle` object
///   (runtime RCP-agreement counters and the MBS cross-check), plus
///   per-branch `rcp_checks`/`rcp_agree` counters and the optional
///   `static_rcp`/`hammock_class` keys (omitted when unknown). Every
///   v2 key is unchanged, so v2 consumers can read v3 documents.
/// * **4** — additive: the `lifecycle` object (`records`/`dropped`
///   counters from the per-instruction recorder; both 0 unless
///   `--pipeview` was on). Every v3 key is unchanged, so v3 consumers
///   can read v4 documents.
/// * **5** — additive: the `bottleneck` object. `bottleneck.cpi_stack`
///   (the six top-down groups; always present, groups sum to
///   `cycles × commit_width`) plus — only when lifecycle recording
///   covered the whole run — `bottleneck.critical_path` (per-class
///   cycle attribution summing exactly to `span`, top segments with
///   PCs, per-branch refetch cycles) and `bottleneck.whatif` (the
///   speed-limit rows; every `projected_cycles` ≤ `cycles`). Every v4
///   key is unchanged, so v4 consumers can read v5 documents.
/// * **6** — additive: the `dataflow_oracle` object (runtime scoring
///   of the static CIDI/CIDD verdicts against actual reuse outcomes)
///   plus per-branch `cidi_checks`/`cidi_agree` counters. Every v5
///   key is unchanged, so v5 consumers can read v6 documents.
/// * **7** — additive: the optional `sampling` object (present only on
///   runs produced by the `cfir-sample` statistical-sampling driver):
///   sampling parameters, fast-forward/detailed instruction counts,
///   per-metric `{n, mean, half_width}` 95%-CI estimates for IPC /
///   reuse rate / CI-exploited fraction, and the per-window rows with
///   their content-addressed checkpoint ids. Every v6 key is
///   unchanged, so v6 consumers can read v7 documents.
pub const SCHEMA_VERSION: u32 = 7;

/// One `{n, mean, half_width}` estimate inside the `sampling` object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    /// Number of measurement windows the estimate aggregates.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (0 when `n < 2`).
    pub half_width: f64,
}

/// One measurement window inside the `sampling` object.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleWindow {
    /// Retired-instruction position of the checkpoint the window
    /// started from.
    pub start_inst: u64,
    /// Content id of that checkpoint (FNV-1a of its serialized bytes).
    pub checkpoint: u64,
    /// Instructions committed inside the measured window.
    pub committed: u64,
    /// Cycles the measured window took.
    pub cycles: u64,
    /// Window IPC.
    pub ipc: f64,
    /// Window reuse rate (reused commits / commits).
    pub reuse_rate: f64,
    /// Window CI-exploited fraction (reused events / mispredictions).
    pub ci_exploited: f64,
}

/// Everything the `sampling` object of a sampled run's snapshot
/// carries (schema v7). Produced by `cfir-sample`; plain data so the
/// dependency arrow stays sample → sim.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingInfo {
    /// Instructions between successive window starts.
    pub period: u64,
    /// Detailed warmup instructions per window (excluded from stats).
    pub warmup: u64,
    /// Measured detailed instructions per window.
    pub window: u64,
    /// Total functionally fast-forwarded (and warmed) instructions.
    pub ff_insts: u64,
    /// Total instructions committed by the detailed pipeline
    /// (warmup + measured, across all windows).
    pub detailed_insts: u64,
    /// Whether the program halted during the sampled run.
    pub halted: bool,
    /// IPC estimate across windows.
    pub ipc: SampleEstimate,
    /// Reuse-rate estimate across windows.
    pub reuse_rate: SampleEstimate,
    /// CI-exploited-fraction estimate across windows.
    pub ci_exploited: SampleEstimate,
    /// Per-window measurements, in sampling order.
    pub windows: Vec<SampleWindow>,
}

fn write_hist(w: &mut JsonWriter, key: &str, h: &Hist) {
    w.key(key).begin_obj();
    w.field_u64("count", h.count())
        .field_u64("sum", h.sum())
        .field_u64("max", h.max())
        .field_f64("mean", h.mean())
        .field_u64("p50", h.p50())
        .field_u64("p90", h.p90())
        .field_u64("p99", h.p99());
    // Sparse buckets: `[bucket_lower_bound, count]` pairs.
    w.key("buckets").begin_arr();
    for (lo, n) in h.nonzero_buckets() {
        w.begin_arr().u64_val(lo).u64_val(n).end_arr();
    }
    w.end_arr();
    w.end_obj();
}

/// Render the run's statistics as a self-contained JSON document.
///
/// `name` is the workload, `label` the machine variant (mode). The
/// stall-breakdown invariant (buckets sum to `cycles × commit_width`)
/// has already been checked by `finalize_stats` when this is called
/// on a finished run.
pub fn run_json(name: &str, label: &str, stats: &SimStats) -> String {
    run_json_sampled(name, label, stats, None)
}

/// [`run_json`] plus the optional schema-v7 `sampling` object. Pass
/// `Some(info)` for runs produced by the statistical-sampling driver;
/// `None` yields exactly the document `run_json` produces.
pub fn run_json_sampled(
    name: &str,
    label: &str,
    stats: &SimStats,
    sampling: Option<&SamplingInfo>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_u64("schema_version", SCHEMA_VERSION as u64)
        .field_str("name", name)
        .field_str("mode", label)
        .field_u64("cycles", stats.cycles)
        .field_u64("committed", stats.committed)
        .field_f64("ipc", stats.ipc())
        .field_u64("committed_reuse", stats.committed_reuse)
        .field_f64("reuse_fraction", stats.reuse_fraction())
        .field_u64("branches", stats.branches)
        .field_u64("mispredicts", stats.mispredicts)
        .field_f64("mispredict_rate", stats.mispredict_rate())
        .field_u64("squashed", stats.squashed)
        .field_u64("fetched", stats.fetched)
        .field_u64("loads", stats.loads)
        .field_u64("stores", stats.stores)
        .field_u64("store_conflicts", stats.store_conflicts)
        .field_u64("vectorizations", stats.vectorizations)
        .field_u64("replicas_created", stats.replicas_created)
        .field_u64("replicas_executed", stats.replicas_executed)
        .field_u64("validation_failures", stats.validation_failures)
        .field_u64("commit_check_failures", stats.commit_check_failures)
        .field_u64("squash_reuse_hits", stats.squash_reuse_hits)
        .field_u64("specmem_copies", stats.specmem_copies)
        .field_f64("wrong_path_fraction", stats.wrong_path_fraction())
        .field_f64("avg_regs_in_use", stats.avg_regs_in_use())
        .field_u64("reg_high_water", stats.reg_high_water);

    // Lifecycle recorder bookkeeping (schema v4; zeros when the
    // per-instruction recorder was off).
    w.key("lifecycle").begin_obj();
    w.field_u64("records", stats.lifecycle_records)
        .field_u64("dropped", stats.lifecycle_dropped);
    w.end_obj();

    w.key("valfail_reasons").begin_obj();
    for (k, label) in crate::vec_engine::VALFAIL_REASONS.iter().enumerate() {
        w.field_u64(label, stats.valfail_reasons[k]);
    }
    w.end_obj();

    w.key("memory").begin_obj();
    w.field_u64("l1d_accesses", stats.l1d_accesses)
        .field_u64("l1d_misses", stats.l1d_misses)
        .field_u64("l1d_writebacks", stats.l1d_writebacks)
        .field_u64("l1i_accesses", stats.l1i_accesses)
        .field_u64("l1i_misses", stats.l1i_misses)
        .field_u64("l2_accesses", stats.l2_accesses)
        .field_u64("l2_misses", stats.l2_misses)
        .field_u64("l3_accesses", stats.l3_accesses)
        .field_u64("l3_misses", stats.l3_misses)
        .field_u64("mem_accesses", stats.mem_accesses);
    w.end_obj();

    // The CPI stack. Every cause is present (zero or not) so
    // downstream consumers can rely on the key set.
    w.key("stall").begin_obj();
    for cause in ALL_CAUSES {
        w.field_u64(cause.key(), stats.stall.get(cause));
    }
    w.end_obj();

    w.key("histograms").begin_obj();
    write_hist(&mut w, "load_to_use", &stats.h_load_to_use);
    write_hist(&mut w, "branch_resolve", &stats.h_branch_resolve);
    write_hist(&mut w, "reuse_wait", &stats.h_reuse_wait);
    write_hist(&mut w, "flush_recovery", &stats.h_flush_recovery);
    w.end_obj();

    w.key("intervals").begin_arr();
    for s in &stats.intervals {
        w.begin_obj()
            .field_u64("cycle", s.cycle)
            .field_u64("committed", s.committed)
            .field_u64("committed_reuse", s.committed_reuse)
            .field_u64("branches", s.branches)
            .field_u64("mispredicts", s.mispredicts)
            .field_f64("interval_ipc", s.interval_ipc)
            .field_f64("interval_mispredict_rate", s.interval_mispredict_rate)
            .field_f64("interval_reuse_rate", s.interval_reuse_rate)
            .field_u64("rob_occupancy", s.rob_occupancy as u64)
            .field_u64("regs_in_use", s.regs_in_use as u64)
            .end_obj();
    }
    w.end_arr();

    // Per-static-branch scorecard (schema v2). Rows sorted by
    // descending mispredictions; the `unattributed` bucket catches
    // mechanism work that carried no event id (e.g. `vect` mode) so
    // `totals` + `unattributed` reconcile with the global counters.
    let prof = &stats.branch_prof;
    w.key("branch_prof").begin_obj();
    w.field_u64("static_branches", prof.len() as u64)
        .field_f64("ci_exploited_fraction", prof.ci_exploited_fraction());
    write_score_fields(w.key("totals").begin_obj(), &prof.totals()).end_obj();
    write_score_fields(w.key("unattributed").begin_obj(), &prof.unattributed).end_obj();
    w.key("branches").begin_arr();
    for (pc, score) in prof.sorted() {
        w.begin_obj().field_u64("pc", pc as u64);
        write_score_fields(&mut w, &score);
        w.field_f64("ci_exploited_rate", score.ci_exploited_rate());
        // Static oracle truth (schema v3); keys omitted when the
        // analyzer had nothing for this PC (e.g. synthetic tests).
        if let Some(truth) = prof.static_truth(pc) {
            w.field_str("hammock_class", truth.class);
            if let Some(rcp) = truth.rcp {
                w.field_u64("static_rcp", rcp as u64);
            }
        }
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();

    // Static-vs-dynamic oracle summary (schema v3): runtime agreement
    // of the configured RCP detector with the post-dominator truth,
    // plus the end-of-run MBS tag cross-check.
    let (rcp_checked, rcp_agreed) = prof.rcp_totals();
    w.key("oracle").begin_obj();
    w.field_u64("rcp_checked", rcp_checked)
        .field_u64("rcp_agreed", rcp_agreed)
        .field_f64("rcp_agreement", prof.rcp_agreement())
        .field_u64("mbs_checked", stats.oracle_mbs_checked)
        .field_u64("mbs_nonbranch", stats.oracle_mbs_nonbranch);
    w.end_obj();

    // Static-dataflow-vs-runtime oracle summary (schema v6): how often
    // the CIDI/CIDD classification predicted the actual reuse outcome.
    // Outcomes with no event attribution or no static verdict land in
    // `unclassified` and are excluded from the agreement denominator.
    let (cidi_checked, cidi_agreed) = prof.cidi_totals();
    w.key("dataflow_oracle").begin_obj();
    w.field_u64("cidi_checked", cidi_checked)
        .field_u64("cidi_agreed", cidi_agreed)
        .field_f64("cidi_agreement", prof.cidi_agreement())
        .field_u64("cidi_predicted_failures", prof.cidi_pred_failures)
        .field_u64("cidd_clean_reuses", prof.cidd_clean_reuses)
        .field_u64("mechanism_repairs", prof.cidi_mechanism_repairs)
        .field_u64("unclassified", prof.cidi_unclassified);
    w.end_obj();

    // Bottleneck analysis (schema v5). The hierarchical CPI stack is
    // always computable (it regroups the stall breakdown); the
    // critical path and what-if projections need the whole-run
    // lifecycle DAG and are omitted when it was not recorded.
    let cpi = CpiStack::from_breakdown(&stats.stall, stats.committed_reuse);
    w.key("bottleneck").begin_obj();
    w.key("cpi_stack").begin_obj();
    for (key, slots) in cpi.iter() {
        w.field_u64(key, slots);
    }
    w.end_obj();
    if let Some(b) = &stats.bottleneck {
        w.key("critical_path").begin_obj();
        w.field_u64("span", b.crit.span)
            .field_u64("start_cycle", b.crit.start_cycle)
            .field_u64("steps", b.crit.steps as u64);
        w.key("classes").begin_obj();
        for class in ALL_CLASSES {
            w.field_u64(class.key(), b.crit.classes[class as usize]);
        }
        w.end_obj();
        w.key("edges").begin_arr();
        for seg in &b.crit.top {
            w.begin_obj()
                .field_u64("pc", seg.pc)
                .field_str("class", seg.class.key())
                .field_u64("cycles", seg.cycles)
                .end_obj();
        }
        w.end_arr();
        w.key("branches").begin_arr();
        for &(pc, cycles) in &b.crit.branch_refetch {
            w.begin_obj()
                .field_u64("pc", pc)
                .field_u64("refetch_cycles", cycles)
                .end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.key("whatif").begin_arr();
        for row in &b.whatif {
            let speedup = if row.projected_cycles == 0 {
                1.0
            } else {
                stats.cycles as f64 / row.projected_cycles as f64
            };
            w.begin_obj()
                .field_str("scenario", row.scenario)
                .field_u64("projected_cycles", row.projected_cycles)
                .field_f64("speedup", speedup)
                .end_obj();
        }
        w.end_arr();
    }
    w.end_obj();

    // Statistical-sampling summary (schema v7); only present on runs
    // produced by the `cfir-sample` driver.
    if let Some(s) = sampling {
        let est = |w: &mut JsonWriter, key: &str, e: &SampleEstimate| {
            w.key(key).begin_obj();
            w.field_u64("n", e.n)
                .field_f64("mean", e.mean)
                .field_f64("half_width", e.half_width);
            w.end_obj();
        };
        w.key("sampling").begin_obj();
        w.field_u64("period", s.period)
            .field_u64("warmup", s.warmup)
            .field_u64("window", s.window)
            .field_u64("ff_insts", s.ff_insts)
            .field_u64("detailed_insts", s.detailed_insts)
            .field_bool("halted", s.halted);
        est(&mut w, "ipc", &s.ipc);
        est(&mut w, "reuse_rate", &s.reuse_rate);
        est(&mut w, "ci_exploited", &s.ci_exploited);
        w.key("windows").begin_arr();
        for win in &s.windows {
            w.begin_obj()
                .field_u64("start_inst", win.start_inst)
                .field_str("checkpoint", &format!("{:016x}", win.checkpoint))
                .field_u64("committed", win.committed)
                .field_u64("cycles", win.cycles)
                .field_f64("ipc", win.ipc)
                .field_f64("reuse_rate", win.reuse_rate)
                .field_f64("ci_exploited", win.ci_exploited)
                .end_obj();
        }
        w.end_arr();
        w.end_obj();
    }

    w.end_obj();
    w.finish()
}

/// Emit the counter fields of one [`BranchScore`] into the object the
/// writer currently has open.
fn write_score_fields<'a>(w: &'a mut JsonWriter, s: &BranchScore) -> &'a mut JsonWriter {
    w.field_u64("executed", s.executed)
        .field_u64("mispredicts", s.mispredicts)
        .field_u64("events", s.events)
        .field_u64("events_reused", s.events_reused)
        .field_u64("events_selected", s.events_selected)
        .field_u64("replicas_created", s.replicas_created)
        .field_u64("replicas_executed", s.replicas_executed)
        .field_u64("replicas_wasted", s.replicas_wasted())
        .field_u64("validations", s.validations)
        .field_u64("reuse_commits", s.reuse_commits)
        .field_u64("cycles_saved", s.cycles_saved)
        .field_u64("rcp_checks", s.rcp_checks)
        .field_u64("rcp_agree", s.rcp_agree)
        .field_u64("cidi_checks", s.cidi_checks)
        .field_u64("cidi_agree", s.cidi_agree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_obs::json;

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let mut stats = SimStats {
            cycles: 1000,
            committed: 2500,
            committed_reuse: 300,
            branches: 200,
            mispredicts: 20,
            loads: 700,
            ..Default::default()
        };
        stats.h_load_to_use.record(1);
        stats.h_load_to_use.record(14);
        stats.valfail_reasons = [1, 2, 3, 4, 5];
        stats.stall.charge(cfir_obs::StallCause::Useful, 2500);
        stats.stall.charge(cfir_obs::StallCause::FetchStarved, 5500);
        stats.intervals.push(crate::stats::IntervalSample {
            cycle: 500,
            committed: 1200,
            committed_reuse: 100,
            branches: 90,
            mispredicts: 9,
            interval_ipc: 2.4,
            interval_mispredict_rate: 0.1,
            interval_reuse_rate: 0.08,
            rob_occupancy: 120,
            regs_in_use: 64,
        });
        stats.branch_prof.note_branch(0x40, true);
        stats.branch_prof.note_reuse_commit(None, 2);
        stats.branch_prof.set_static_truth(
            0x40,
            crate::prof::StaticTruth {
                rcp: Some(0x44),
                class: "ifthen",
                is_hammock: true,
            },
        );
        stats.branch_prof.note_rcp_check(0x40, true);
        stats.branch_prof.note_rcp_check(0x40, false);
        // Schema v6: a CIDI verdict scored against runtime outcomes.
        stats.branch_prof.note_event(0x40, 9);
        stats.branch_prof.set_cidi_verdict(0x40, 0x44, "cidi");
        stats.branch_prof.note_cidi_outcome(Some(9), 0x44, true);
        stats.branch_prof.note_cidi_outcome(Some(9), 0x44, false);
        stats.branch_prof.note_cidi_outcome(None, 0x44, true);
        stats.branch_prof.note_cidi_mechanism_repair(Some(9), 0x44);
        stats.oracle_mbs_checked = 7;
        stats.lifecycle_records = 42;
        stats.lifecycle_dropped = 2;

        // Attach a bottleneck report so the v5 object is exercised.
        stats.bottleneck = Some(cfir_obs::BottleneckReport {
            crit: cfir_obs::CritPath {
                span: 1000,
                start_cycle: 0,
                classes: {
                    let mut c = [0u64; cfir_obs::critpath::NUM_CLASSES];
                    c[cfir_obs::EdgeClass::CacheMem as usize] = 600;
                    c[cfir_obs::EdgeClass::MispredictRefetch as usize] = 400;
                    c
                },
                top: vec![cfir_obs::PathSeg {
                    pc: 0x40,
                    class: cfir_obs::EdgeClass::CacheMem,
                    cycles: 600,
                }],
                branch_refetch: vec![(0x40, 400)],
                steps: 5,
            },
            whatif: vec![cfir_obs::WhatIfRow {
                scenario: "perfect_bp",
                projected_cycles: 500,
            }],
        });

        let text = run_json("bzip2 \"quoted\"", "ci", &stats);
        let v = json::parse(&text).expect("snapshot parses");
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(7));
        // A plain run carries no `sampling` object (the v7 key is
        // additive and sampled-run only).
        assert!(v.get("sampling").is_none());
        assert_eq!(v.get("name").unwrap().as_str(), Some("bzip2 \"quoted\""));
        assert_eq!(v.get("mode").unwrap().as_str(), Some("ci"));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(1000));
        assert!((v.get("ipc").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-12);
        assert!((v.get("reuse_fraction").unwrap().as_f64().unwrap() - 0.12).abs() < 1e-12);
        let vf = v.get("valfail_reasons").unwrap();
        assert_eq!(vf.get("inst_mismatch").unwrap().as_u64(), Some(1));
        assert_eq!(vf.get("seq_mismatch").unwrap().as_u64(), Some(5));
        let stall = v.get("stall").unwrap();
        assert_eq!(stall.get("useful").unwrap().as_u64(), Some(2500));
        assert_eq!(stall.get("fetch_starved").unwrap().as_u64(), Some(5500));
        let h = v.get("histograms").unwrap().get("load_to_use").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("buckets").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(h.get("p50").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("p99").unwrap().as_u64(), Some(14));
        let iv = v.get("intervals").unwrap().as_arr().unwrap();
        assert_eq!(iv[0].get("cycle").unwrap().as_u64(), Some(500));
        assert_eq!(iv[0].get("mispredicts").unwrap().as_u64(), Some(9));
        assert_eq!(iv[0].get("rob_occupancy").unwrap().as_u64(), Some(120));
        let bp = v.get("branch_prof").unwrap();
        assert_eq!(bp.get("static_branches").unwrap().as_u64(), Some(1));
        let rows = bp.get("branches").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("pc").unwrap().as_u64(), Some(0x40));
        assert_eq!(rows[0].get("mispredicts").unwrap().as_u64(), Some(1));
        let un = bp.get("unattributed").unwrap();
        assert_eq!(un.get("reuse_commits").unwrap().as_u64(), Some(1));
        assert_eq!(un.get("cycles_saved").unwrap().as_u64(), Some(2));
        // Schema v3: per-branch static truth + oracle summary.
        assert_eq!(
            rows[0].get("hammock_class").unwrap().as_str(),
            Some("ifthen")
        );
        assert_eq!(rows[0].get("static_rcp").unwrap().as_u64(), Some(0x44));
        assert_eq!(rows[0].get("rcp_checks").unwrap().as_u64(), Some(2));
        assert_eq!(rows[0].get("rcp_agree").unwrap().as_u64(), Some(1));
        let oracle = v.get("oracle").unwrap();
        assert_eq!(oracle.get("rcp_checked").unwrap().as_u64(), Some(2));
        assert_eq!(oracle.get("rcp_agreed").unwrap().as_u64(), Some(1));
        assert!((oracle.get("rcp_agreement").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(oracle.get("mbs_checked").unwrap().as_u64(), Some(7));
        assert_eq!(oracle.get("mbs_nonbranch").unwrap().as_u64(), Some(0));
        // Schema v6: per-branch CIDI counters + the dataflow oracle.
        assert_eq!(rows[0].get("cidi_checks").unwrap().as_u64(), Some(2));
        assert_eq!(rows[0].get("cidi_agree").unwrap().as_u64(), Some(1));
        let dorc = v.get("dataflow_oracle").unwrap();
        assert_eq!(dorc.get("cidi_checked").unwrap().as_u64(), Some(2));
        assert_eq!(dorc.get("cidi_agreed").unwrap().as_u64(), Some(1));
        assert!((dorc.get("cidi_agreement").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(
            dorc.get("cidi_predicted_failures").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(dorc.get("cidd_clean_reuses").unwrap().as_u64(), Some(0));
        assert_eq!(dorc.get("mechanism_repairs").unwrap().as_u64(), Some(1));
        assert_eq!(dorc.get("unclassified").unwrap().as_u64(), Some(1));
        // Schema v4: lifecycle recorder bookkeeping.
        let lc = v.get("lifecycle").unwrap();
        assert_eq!(lc.get("records").unwrap().as_u64(), Some(42));
        assert_eq!(lc.get("dropped").unwrap().as_u64(), Some(2));
        // Schema v5: the bottleneck object.
        let b = v.get("bottleneck").unwrap();
        let cpi = b.get("cpi_stack").unwrap();
        assert_eq!(cpi.get("reuse_recovered").unwrap().as_u64(), Some(300));
        assert_eq!(cpi.get("base").unwrap().as_u64(), Some(2200));
        assert_eq!(cpi.get("frontend").unwrap().as_u64(), Some(5500));
        let total: u64 = cfir_obs::critpath::CPI_GROUPS
            .iter()
            .map(|g| cpi.get(g).unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, 8000, "groups preserve the slot invariant");
        let cp = b.get("critical_path").unwrap();
        assert_eq!(cp.get("span").unwrap().as_u64(), Some(1000));
        let classes = cp.get("classes").unwrap();
        assert_eq!(classes.get("cache_mem").unwrap().as_u64(), Some(600));
        let edges = cp.get("edges").unwrap().as_arr().unwrap();
        assert_eq!(edges[0].get("pc").unwrap().as_u64(), Some(0x40));
        assert_eq!(edges[0].get("class").unwrap().as_str(), Some("cache_mem"));
        let brs = cp.get("branches").unwrap().as_arr().unwrap();
        assert_eq!(brs[0].get("refetch_cycles").unwrap().as_u64(), Some(400));
        let wi = b.get("whatif").unwrap().as_arr().unwrap();
        assert_eq!(wi[0].get("scenario").unwrap().as_str(), Some("perfect_bp"));
        assert_eq!(wi[0].get("projected_cycles").unwrap().as_u64(), Some(500));
        assert!((wi[0].get("speedup").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_object_round_trips() {
        let info = SamplingInfo {
            period: 50_000,
            warmup: 2_000,
            window: 3_000,
            ff_insts: 900_000,
            detailed_insts: 100_000,
            halted: false,
            ipc: SampleEstimate {
                n: 20,
                mean: 2.41,
                half_width: 0.05,
            },
            reuse_rate: SampleEstimate {
                n: 20,
                mean: 0.12,
                half_width: 0.01,
            },
            ci_exploited: SampleEstimate {
                n: 20,
                mean: 0.31,
                half_width: 0.03,
            },
            windows: vec![SampleWindow {
                start_inst: 45_000,
                checkpoint: 0xdead_beef_0000_0001,
                committed: 3_000,
                cycles: 1_250,
                ipc: 2.4,
                reuse_rate: 0.11,
                ci_exploited: 0.30,
            }],
        };
        let text = run_json_sampled("gzip", "scal", &SimStats::default(), Some(&info));
        let v = json::parse(&text).expect("sampled snapshot parses");
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(7));
        let s = v.get("sampling").unwrap();
        assert_eq!(s.get("period").unwrap().as_u64(), Some(50_000));
        assert_eq!(s.get("warmup").unwrap().as_u64(), Some(2_000));
        assert_eq!(s.get("window").unwrap().as_u64(), Some(3_000));
        assert_eq!(s.get("ff_insts").unwrap().as_u64(), Some(900_000));
        assert_eq!(s.get("halted"), Some(&json::JsonValue::Bool(false)));
        let ipc = s.get("ipc").unwrap();
        assert_eq!(ipc.get("n").unwrap().as_u64(), Some(20));
        assert!((ipc.get("mean").unwrap().as_f64().unwrap() - 2.41).abs() < 1e-12);
        assert!((ipc.get("half_width").unwrap().as_f64().unwrap() - 0.05).abs() < 1e-12);
        let wins = s.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].get("start_inst").unwrap().as_u64(), Some(45_000));
        assert_eq!(
            wins[0].get("checkpoint").unwrap().as_str(),
            Some("deadbeef00000001")
        );
        assert_eq!(wins[0].get("cycles").unwrap().as_u64(), Some(1_250));
    }

    #[test]
    fn cpi_stack_present_without_lifecycle_critical_path_absent() {
        let text = run_json("x", "scal", &SimStats::default());
        let v = json::parse(&text).unwrap();
        let b = v.get("bottleneck").unwrap();
        assert!(b.get("cpi_stack").is_some());
        assert!(b.get("critical_path").is_none());
        assert!(b.get("whatif").is_none());
    }

    #[test]
    fn static_truth_keys_omitted_when_unseeded() {
        let mut stats = SimStats::default();
        stats.branch_prof.note_branch(8, true);
        let v = json::parse(&run_json("x", "ci", &stats)).unwrap();
        let rows = v
            .get("branch_prof")
            .unwrap()
            .get("branches")
            .unwrap()
            .as_arr()
            .unwrap();
        assert!(rows[0].get("hammock_class").is_none());
        assert!(rows[0].get("static_rcp").is_none());
    }

    #[test]
    fn v1_documents_still_parse_and_expose_v1_keys() {
        // A committed v1 snapshot fragment (pre-percentile histograms,
        // short interval rows, no branch_prof): the parser and the v1
        // key set must keep working so old baselines stay readable.
        let v1 = r#"{
            "schema_version": 1,
            "name": "bzip2", "mode": "ci",
            "cycles": 1000, "committed": 2500, "ipc": 2.5,
            "committed_reuse": 300, "reuse_fraction": 0.12,
            "histograms": {
                "load_to_use": {"count": 2, "sum": 15, "max": 14,
                                 "mean": 7.5, "buckets": [[1, 1], [8, 1]]}
            },
            "intervals": [
                {"cycle": 500, "committed": 1200,
                 "committed_reuse": 100, "interval_ipc": 2.4}
            ]
        }"#;
        let v = json::parse(v1).expect("v1 snapshot parses");
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(1000));
        let h = v.get("histograms").unwrap().get("load_to_use").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert!(h.get("p50").is_none());
        let iv = v.get("intervals").unwrap().as_arr().unwrap();
        assert_eq!(iv[0].get("cycle").unwrap().as_u64(), Some(500));
        assert!(iv[0].get("rob_occupancy").is_none());
    }

    #[test]
    fn all_stall_causes_are_present_even_when_zero() {
        let text = run_json("x", "scal", &SimStats::default());
        let v = json::parse(&text).unwrap();
        let stall = v.get("stall").unwrap();
        for cause in cfir_obs::stall::ALL_CAUSES {
            assert!(
                stall.get(cause.key()).is_some(),
                "missing stall key {}",
                cause.key()
            );
        }
    }
}
