//! Statistics collected by one simulation run — everything the paper's
//! figures need.

use crate::prof::BranchProf;
use cfir_core::srsmt::SrsmtStats;
use cfir_core::EventStats;
use cfir_obs::{BottleneckReport, Hist, StallBreakdown};

/// One point of the interval time series (see
/// `SimConfig::interval_cycles`). Cumulative counters plus the rates
/// over the *last* interval and a point sample of occupancy, so a
/// run's effectiveness can be watched evolving over time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalSample {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Reused instructions committed so far.
    pub committed_reuse: u64,
    /// Conditional branches committed so far.
    pub branches: u64,
    /// Mispredictions committed so far.
    pub mispredicts: u64,
    /// IPC over the *last* interval only.
    pub interval_ipc: f64,
    /// Misprediction rate over the last interval only.
    pub interval_mispredict_rate: f64,
    /// Fraction of the last interval's commits that reused a value.
    pub interval_reuse_rate: f64,
    /// Window occupancy at the sample point.
    pub rob_occupancy: u32,
    /// Physical registers in use at the sample point.
    pub regs_in_use: u32,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (architecturally retired) instructions.
    pub committed: u64,
    /// Committed instructions that reused a precomputed value
    /// (Figure 12's "Reuse" portion).
    pub committed_reuse: u64,
    /// Instructions dispatched into the window and later squashed by a
    /// branch misprediction (Figure 12's "specBP").
    pub squashed: u64,
    /// Speculative replica instructions executed by the CI scheme
    /// (Figure 12's "specCI").
    pub replicas_executed: u64,
    /// Replica instructions created (dispatched to the engine).
    pub replicas_created: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Conditional-branch mispredictions (architectural).
    pub mispredicts: u64,
    /// Reuse validations that failed at decode (seq/stride mismatch).
    pub validation_failures: u64,
    /// Failure breakdown: [inst-mismatch, replica-not-ready,
    /// stride-untrusted-or-changed, address-mismatch, seq-mismatch].
    pub valfail_reasons: [u64; 5],
    /// Reuse validations that passed decode but failed the commit-time
    /// architectural check (triggering a flush).
    pub commit_check_failures: u64,
    /// Stores committed.
    pub stores: u64,
    /// Stores whose address hit a speculatively-loaded range (§2.4.3).
    pub store_conflicts: u64,
    /// Loads committed.
    pub loads: u64,
    /// Sum over cycles of physical registers in use (occupancy integral).
    pub reg_occupancy_sum: u64,
    /// High-water mark of physical registers in use.
    pub reg_high_water: u64,
    /// stridedPC propagations dropped by the slot cap (Figure 4 loss).
    pub strided_pc_dropped: u64,
    /// Sum of stridedPC set sizes over written rename entries (for the
    /// "1.7 PCs per entry" average).
    pub strided_pc_sum: u64,
    /// Number of rename-entry writes sampled for `strided_pc_sum`
    /// (only writes that propagate at least one PC are counted,
    /// matching how the paper reports "PCs per entry").
    pub strided_pc_samples: u64,
    /// Vectorizations performed (SRSMT entries created).
    pub vectorizations: u64,
    /// Per-misprediction CI classification (Figure 5).
    pub events: EventStats,
    /// SRSMT table statistics.
    pub srsmt: SrsmtStats,
    /// L1 D-cache accesses (Figure 8): scalar port accesses, wide-bus
    /// line accesses, store commits and replica loads all count once.
    pub l1d_accesses: u64,
    /// L1 D-cache misses.
    pub l1d_misses: u64,
    /// L1 D-cache writebacks.
    pub l1d_writebacks: u64,
    /// L1 I-cache accesses.
    pub l1i_accesses: u64,
    /// L1 I-cache misses.
    pub l1i_misses: u64,
    /// L2 accesses / misses (both instruction and data refills).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Main-memory accesses.
    pub mem_accesses: u64,
    /// Instructions fetched (all paths).
    pub fetched: u64,
    /// Speculative-memory copy instructions injected (§2.4.6 mode).
    pub specmem_copies: u64,
    /// Squash-reuse buffer hits (ci-iw mode).
    pub squash_reuse_hits: u64,
    /// MBS entries cross-checked against the program at the end of the
    /// run (static-oracle consistency check).
    pub oracle_mbs_checked: u64,
    /// MBS entries whose PC did not name a conditional branch — must
    /// stay 0 with exact full-PC tags.
    pub oracle_mbs_nonbranch: u64,
    /// Periodic samples (empty unless `SimConfig::interval_cycles` set).
    pub intervals: Vec<IntervalSample>,
    /// Per-static-branch CI-reuse scorecards.
    pub branch_prof: BranchProf,
    /// Load issue→value latency (forwarded loads count as 1 cycle).
    pub h_load_to_use: Hist,
    /// Branch dispatch→resolution latency.
    pub h_branch_resolve: Hist,
    /// Cycles a validating instruction waited for its replica's value
    /// (0 = the replica had already completed at decode).
    pub h_reuse_wait: Hist,
    /// Cycles from a pipeline flush (branch recovery or repair) to the
    /// next committed instruction.
    pub h_flush_recovery: Hist,
    /// Lifecycle records created by the per-instruction recorder
    /// (0 unless `--pipeview` / lifecycle tracing was enabled).
    pub lifecycle_records: u64,
    /// Retired lifecycle records dropped by the ring cap.
    pub lifecycle_dropped: u64,
    /// Per-cycle commit-slot attribution; buckets sum to
    /// `cycles × commit_width` (checked in `finalize_stats`).
    pub stall: StallBreakdown,
    /// Critical-path and what-if analysis (`None` unless lifecycle
    /// recording covered the whole run — `SimConfig::record_lifecycle`
    /// or `CFIR_PIPEVIEW` from cycle 0).
    pub bottleneck: Option<BottleneckReport>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Average physical registers in use per cycle (§2.4.2's 812/304).
    pub fn avg_regs_in_use(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.reg_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that reused a precomputed
    /// value (Figure 12 reports 12.3% / 14%).
    pub fn reuse_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.committed_reuse as f64 / self.committed as f64
        }
    }

    /// Fraction of committed stores that conflicted with a speculative
    /// load range (§2.4.3 reports < 3%).
    pub fn store_conflict_fraction(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.store_conflicts as f64 / self.stores as f64
        }
    }

    /// Average propagated stridedPCs per (propagating) rename write
    /// (§2.3.2 reports 1.7 for SpecInt2000).
    pub fn avg_strided_pcs(&self) -> f64 {
        if self.strided_pc_samples == 0 {
            0.0
        } else {
            self.strided_pc_sum as f64 / self.strided_pc_samples as f64
        }
    }

    /// Wrong-path (squashed) activity as a fraction of all executed
    /// work, the §4 comparison metric (29.62% ci vs 48.45% vect).
    pub fn wrong_path_fraction(&self) -> f64 {
        let wasted = self.squashed + self.replicas_executed;
        let total = self.committed + wasted;
        if total == 0 {
            0.0
        } else {
            wasted as f64 / total as f64
        }
    }
}

/// Harmonic mean of a slice of positive rates (the paper averages IPC
/// across the suite with a harmonic mean).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let denom: f64 = xs.iter().map(|x| 1.0 / x.max(1e-12)).sum();
    xs.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        let z = SimStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.mispredict_rate(), 0.0);
        assert_eq!(z.avg_regs_in_use(), 0.0);
        assert_eq!(z.reuse_fraction(), 0.0);
        assert_eq!(z.store_conflict_fraction(), 0.0);
        assert_eq!(z.avg_strided_pcs(), 0.0);
        assert_eq!(z.wrong_path_fraction(), 0.0);
    }

    #[test]
    fn wrong_path_fraction() {
        let s = SimStats {
            committed: 70,
            squashed: 20,
            replicas_executed: 10,
            ..Default::default()
        };
        assert!((s.wrong_path_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM of 1 and 3 is 1.5, biased toward the small value.
        assert!((harmonic_mean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
    }
}
