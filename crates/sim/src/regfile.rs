//! Physical register file with a free list, ready bits and occupancy
//! accounting (the register-pressure axis of Figures 9/11/13).

/// Physical register identifier.
pub type PhysId = u32;

/// The physical register file. Register 0 is the hard-wired zero
/// register: always ready, value 0, never allocated or freed.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    vals: Vec<u64>,
    ready: Vec<bool>,
    free: Vec<PhysId>,
    bounded: bool,
    /// High-water mark of registers in use.
    pub high_water: usize,
    /// Allocation failures (bounded file exhausted).
    pub alloc_failures: u64,
}

impl PhysRegFile {
    /// Create a file. `capacity = None` means unbounded (grows on
    /// demand — the figures' "Inf" configuration). A bounded file must
    /// hold at least the 64 architectural mappings plus the zero
    /// register.
    pub fn new(capacity: Option<u32>) -> Self {
        match capacity {
            Some(n) => {
                assert!(n >= 66, "need 64 arch mappings + zero reg + headroom");
                let n = n as usize;
                let mut ready = vec![false; n];
                ready[0] = true; // zero register always readable
                PhysRegFile {
                    vals: vec![0; n],
                    ready,
                    // Registers 1..n are allocatable; keep low ids at the
                    // end of the free list so they are handed out first.
                    free: (1..n as u32).rev().collect(),
                    bounded: true,
                    high_water: 1,
                    alloc_failures: 0,
                }
            }
            None => PhysRegFile {
                vals: vec![0],
                ready: vec![true],
                free: Vec::new(),
                bounded: false,
                high_water: 1,
                alloc_failures: 0,
            },
        }
    }

    /// Registers currently in use (including the zero register and the
    /// 64 architectural mappings).
    #[inline]
    pub fn in_use(&self) -> usize {
        self.vals.len() - self.free.len()
    }

    /// Free registers available right now.
    #[inline]
    pub fn available(&self) -> usize {
        if self.bounded {
            self.free.len()
        } else {
            usize::MAX
        }
    }

    /// Allocate a register (not ready, value undefined).
    pub fn alloc(&mut self) -> Option<PhysId> {
        let id = match self.free.pop() {
            Some(id) => id,
            None if !self.bounded => {
                self.vals.push(0);
                self.ready.push(false);
                (self.vals.len() - 1) as PhysId
            }
            None => {
                self.alloc_failures += 1;
                return None;
            }
        };
        self.ready[id as usize] = false;
        self.high_water = self.high_water.max(self.in_use());
        Some(id)
    }

    /// Return a register to the free list.
    pub fn free(&mut self, id: PhysId) {
        debug_assert_ne!(id, 0, "zero register is never freed");
        debug_assert!(!self.free.contains(&id), "double free of p{id}");
        self.free.push(id);
    }

    /// Read a register's value.
    #[inline]
    pub fn read(&self, id: PhysId) -> u64 {
        self.vals[id as usize]
    }

    /// Whether the register's value has been produced.
    #[inline]
    pub fn is_ready(&self, id: PhysId) -> bool {
        self.ready[id as usize]
    }

    /// Write a value and mark ready.
    #[inline]
    pub fn write(&mut self, id: PhysId, v: u64) {
        debug_assert_ne!(id, 0, "zero register is read-only");
        self.vals[id as usize] = v;
        self.ready[id as usize] = true;
    }

    /// Mark a register ready without changing its value (zero-register
    /// style initialisation at reset).
    pub fn force_ready(&mut self, id: PhysId, v: u64) {
        self.vals[id as usize] = v;
        self.ready[id as usize] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_alloc_and_exhaustion() {
        let mut rf = PhysRegFile::new(Some(66));
        let mut got = Vec::new();
        while let Some(id) = rf.alloc() {
            got.push(id);
        }
        assert_eq!(got.len(), 65, "66 total minus the zero register");
        assert_eq!(rf.alloc_failures, 1);
        assert_eq!(rf.available(), 0);
        rf.free(got[0]);
        assert_eq!(rf.available(), 1);
        assert!(rf.alloc().is_some());
    }

    #[test]
    fn unbounded_grows() {
        let mut rf = PhysRegFile::new(None);
        for _ in 0..1000 {
            assert!(rf.alloc().is_some());
        }
        assert_eq!(rf.in_use(), 1001);
        assert_eq!(rf.available(), usize::MAX);
        assert_eq!(rf.high_water, 1001);
    }

    #[test]
    fn ready_protocol() {
        let mut rf = PhysRegFile::new(Some(66));
        let id = rf.alloc().unwrap();
        assert!(!rf.is_ready(id));
        rf.write(id, 42);
        assert!(rf.is_ready(id));
        assert_eq!(rf.read(id), 42);
        // Re-allocation clears readiness.
        rf.free(id);
        let id2 = rf.alloc().unwrap();
        assert_eq!(id, id2);
        assert!(!rf.is_ready(id2));
    }

    #[test]
    fn zero_register() {
        let rf = PhysRegFile::new(Some(66));
        assert_eq!(rf.read(0), 0);
        // Bounded files start with p0 implicitly live.
        assert_eq!(rf.in_use(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut rf = PhysRegFile::new(Some(70));
        let a = rf.alloc().unwrap();
        let _b = rf.alloc().unwrap();
        rf.free(a);
        let _c = rf.alloc().unwrap();
        assert_eq!(rf.high_water, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_asserts() {
        let mut rf = PhysRegFile::new(Some(66));
        let id = rf.alloc().unwrap();
        rf.free(id);
        rf.free(id);
    }
}
