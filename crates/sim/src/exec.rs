//! Issue, writeback and misprediction recovery.

use crate::pipeline::Pipeline;
use crate::rob::RobState;
use cfir_isa::{FuClass, Inst, Program};
use cfir_obs::{trace_event, EventKind, Subsystem, WaitEdgeKind};

impl Pipeline<'_> {
    /// Whether a functional unit of `class` is free this cycle, and
    /// consume it if so.
    fn take_fu(&mut self, class: FuClass) -> bool {
        let slot = match class {
            FuClass::IntAlu | FuClass::Store => &mut self.res.int_alu,
            FuClass::IntMul | FuClass::IntDiv => &mut self.res.int_muldiv,
            FuClass::FpAlu => &mut self.res.fp_alu,
            FuClass::FpMul | FuClass::FpDiv => &mut self.res.fp_muldiv,
            FuClass::Load => unreachable!("loads arbitrate for D-ports"),
        };
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        true
    }

    /// Arbitrate a load's D-cache access. Returns the latency, or
    /// `None` when no bandwidth (or MSHR) is available this cycle.
    /// Counts one L1 access per *port use* (Figure 8's metric): with
    /// the wide bus, up to `wide_loads_per_access` loads share one
    /// access to the same line.
    pub(crate) fn arbitrate_load(&mut self, addr: u64) -> Option<u32> {
        let wide = self.cfg.mode.wide_bus();
        let line = self.hier.l1d_line(addr);
        if wide {
            for g in &mut self.res.wide_groups {
                if g.0 == line && g.1 > 0 {
                    g.1 -= 1;
                    return Some(g.2);
                }
            }
        }
        if self.res.dports == 0 {
            return None;
        }
        // A load to a line whose fill is still in flight merges with
        // the outstanding miss (MSHR hit): it uses a port but completes
        // only when the fill returns.
        if let Some(&(_, ready)) = self.outstanding_misses.iter().find(|&&(l, _)| l == line) {
            self.res.dports -= 1;
            self.stats.l1d_accesses += 1;
            let lat = (ready - self.cycle).max(1) as u32;
            if wide {
                self.res
                    .wide_groups
                    .push((line, self.cfg.wide_loads_per_access - 1, lat));
            }
            return Some(lat);
        }
        if self.outstanding_misses.len() >= self.cfg.mshrs as usize && !self.hier.l1d.probe(addr) {
            return None; // would miss and MSHRs are full
        }
        let lat = self.hier.access_data(addr, false);
        self.res.dports -= 1;
        self.stats.l1d_accesses += 1;
        if lat > self.cfg.hierarchy.l1_hit {
            self.outstanding_misses
                .push((line, self.cycle + lat as u64));
            trace_event!(
                self.tracer,
                Subsystem::Mem,
                0,
                self.cycle,
                EventKind::CacheMiss { addr, latency: lat }
            );
        }
        if wide {
            self.res
                .wide_groups
                .push((line, self.cfg.wide_loads_per_access - 1, lat));
        }
        Some(lat)
    }

    /// Which hierarchy level served a data access of latency `lat`
    /// (the lifecycle cache-miss wait-edge detail).
    pub(crate) fn miss_level(&self, lat: u32) -> &'static str {
        let h = &self.cfg.hierarchy;
        if lat <= h.l1_hit {
            "l1"
        } else if lat <= h.l2_hit {
            "l2"
        } else if lat <= h.l3_hit {
            "l3"
        } else {
            "mem"
        }
    }

    // ----------------------------------------------------------------
    // Issue
    // ----------------------------------------------------------------

    pub(crate) fn issue(&mut self) {
        for i in 0..self.rob.len() {
            if self.res.issue == 0 {
                break;
            }
            if self.rob[i].state != RobState::Dispatched {
                continue;
            }
            // Operand readiness.
            let srcs = self.rob[i].src_phys;
            let ready = srcs.iter().flatten().all(|&p| self.rf.is_ready(p));
            if !ready {
                continue;
            }
            let inst = self.rob[i].inst;
            let v1 = srcs[0].map(|p| self.rf.read(p)).unwrap_or(0);
            let v2 = srcs[1].map(|p| self.rf.read(p)).unwrap_or(0);

            match inst {
                Inst::Ld { offset, .. } => {
                    let addr = cfir_emu::MemImage::align(v1.wrapping_add(offset as u64));
                    let seq = self.rob[i].seq;
                    self.lsq.set_addr(seq, addr);
                    match self.lsq.search_for_load(seq, addr) {
                        crate::lsq::LoadSearch::Stall => {
                            if self.lifecycle.is_some() {
                                let lid = self.rob[i].lid;
                                let target =
                                    self.lsq.blocking_store_for_load(seq, addr).and_then(|s| {
                                        self.rob.iter().find(|e| e.seq == s).map(|e| e.lid)
                                    });
                                let cyc = self.cycle;
                                if let Some(log) = &mut self.lifecycle {
                                    log.edge(
                                        lid,
                                        WaitEdgeKind::StoreDisambiguation,
                                        target,
                                        "",
                                        cyc,
                                    );
                                }
                            }
                            continue;
                        }
                        crate::lsq::LoadSearch::Forwarded(v) => {
                            self.stats.h_load_to_use.record(1);
                            let e = &mut self.rob[i];
                            e.addr = Some(addr);
                            e.value = v;
                            e.state = RobState::Executing;
                            e.done_at = self.cycle + 1;
                        }
                        crate::lsq::LoadSearch::CacheAccess => {
                            let Some(lat) = self.arbitrate_load(addr) else {
                                if self.lifecycle.is_some() {
                                    let (lid, cyc) = (self.rob[i].lid, self.cycle);
                                    if let Some(log) = &mut self.lifecycle {
                                        log.edge(lid, WaitEdgeKind::Port, None, "dports", cyc);
                                    }
                                }
                                continue;
                            };
                            let v = self.mem.read(addr);
                            self.stats.h_load_to_use.record(lat as u64);
                            let miss = lat > self.cfg.hierarchy.l1_hit;
                            let level = self.miss_level(lat);
                            let e = &mut self.rob[i];
                            e.addr = Some(addr);
                            e.value = v;
                            e.state = RobState::Executing;
                            e.done_at = self.cycle + lat as u64;
                            e.dcache_miss = miss;
                            if miss {
                                let (lid, cyc) = (e.lid, self.cycle);
                                if let Some(log) = &mut self.lifecycle {
                                    log.edge(lid, WaitEdgeKind::CacheMiss, None, level, cyc);
                                }
                            }
                        }
                    }
                    self.res.issue -= 1;
                }
                Inst::St { offset, .. } => {
                    // v1 = base, v2 = data (source order of `St`).
                    if !self.take_fu(FuClass::Store) {
                        continue;
                    }
                    let addr = cfir_emu::MemImage::align(v1.wrapping_add(offset as u64));
                    let seq = self.rob[i].seq;
                    self.lsq.set_addr(seq, addr);
                    self.lsq.set_data(seq, v2);
                    let e = &mut self.rob[i];
                    e.addr = Some(addr);
                    e.value = v2;
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + 1;
                    self.res.issue -= 1;
                }
                Inst::Br { cond, target, .. } => {
                    if !self.take_fu(FuClass::IntAlu) {
                        continue;
                    }
                    let taken = cond.eval(v1, v2);
                    let e = &mut self.rob[i];
                    e.actual_taken = taken;
                    e.actual_target = if taken { target } else { e.pc + 1 };
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + 1;
                    self.res.issue -= 1;
                }
                Inst::Jr { .. } => {
                    if !self.take_fu(FuClass::IntAlu) {
                        continue;
                    }
                    let e = &mut self.rob[i];
                    e.actual_taken = true;
                    e.actual_target = v1 as u32;
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + 1;
                    self.res.issue -= 1;
                }
                Inst::Alu { op, .. } => {
                    let class = inst.class();
                    if !self.take_fu(class) {
                        continue;
                    }
                    let e = &mut self.rob[i];
                    e.value = op.eval(v1, v2);
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + class.latency().unwrap() as u64;
                    self.res.issue -= 1;
                }
                Inst::AluImm { op, imm, .. } => {
                    let class = inst.class();
                    if !self.take_fu(class) {
                        continue;
                    }
                    let e = &mut self.rob[i];
                    e.value = op.eval(v1, imm as u64);
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + class.latency().unwrap() as u64;
                    self.res.issue -= 1;
                }
                Inst::Fp { op, .. } => {
                    let class = inst.class();
                    if !self.take_fu(class) {
                        continue;
                    }
                    let e = &mut self.rob[i];
                    e.value = op.eval(v1, v2);
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + class.latency().unwrap() as u64;
                    self.res.issue -= 1;
                }
                Inst::Li { imm, .. } => {
                    if !self.take_fu(FuClass::IntAlu) {
                        continue;
                    }
                    let e = &mut self.rob[i];
                    e.value = imm as u64;
                    e.state = RobState::Executing;
                    e.done_at = self.cycle + 1;
                    self.res.issue -= 1;
                }
                Inst::Nop | Inst::Halt | Inst::Jmp { .. } => {
                    // Completed at dispatch; nothing to issue.
                }
            }
            // Was `Dispatched` at the top of the iteration (all the
            // resource-fail paths `continue` before this), so a state
            // change means the instruction issued this cycle.
            if self.rob[i].state == RobState::Executing {
                let (lid, cyc) = (self.rob[i].lid, self.cycle);
                if let Some(log) = &mut self.lifecycle {
                    log.note_issue(lid, cyc);
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // Writeback
    // ----------------------------------------------------------------

    pub(crate) fn writeback(&mut self) {
        // Deliver values to validating instructions whose replica has
        // completed since they dispatched; fall back to normal
        // execution when the entry/replica died under them.
        self.poll_pending_reuses();
        // Complete scalar instructions.
        let mut mispredicted: Option<usize> = None;
        for i in 0..self.rob.len() {
            if self.rob[i].state != RobState::Executing || self.rob[i].done_at > self.cycle {
                continue;
            }
            self.rob[i].state = RobState::Done;
            {
                let (lid, cyc) = (self.rob[i].lid, self.cycle);
                if let Some(log) = &mut self.lifecycle {
                    log.note_complete(lid, cyc);
                }
            }
            if let Some(pr) = self.rob[i].probe {
                if !pr.verified {
                    if let Some(p) = &mut self.rob[i].probe {
                        p.verified = true;
                    }
                    let value = self.rob[i].value;
                    let addr = self.rob[i].addr;
                    let is_load = self.rob[i].inst.is_load();
                    let pc = self.rob[i].pc;
                    self.verify_probe(pr, pc, value, addr, is_load);
                }
            }
            if let Some(p) = self.rob[i].new_phys {
                // Reused entries already wrote their value (monolithic)
                // or write here (spec-mem copy completion).
                let v = self.rob[i].value;
                if !self.rf.is_ready(p) {
                    self.rf.write(p, v);
                }
                let seq = self.rob[i].seq;
                self.notify_seed(seq, v);
            }
            let inst = self.rob[i].inst;
            if matches!(inst, Inst::Br { .. } | Inst::Jr { .. }) {
                self.rob[i].resolved = true;
                let wait = self.cycle.saturating_sub(self.rob[i].dispatched_at);
                self.stats.h_branch_resolve.record(wait);
                if let Inst::Jr { .. } = inst {
                    let (pc, tgt) = (self.rob[i].pc, self.rob[i].actual_target);
                    self.jr_btb[pc as usize] = tgt;
                }
                let e = &self.rob[i];
                if e.actual_target != e.pred_target && mispredicted.is_none() {
                    mispredicted = Some(i);
                }
            }
        }
        // Complete replicas.
        self.complete_replicas();
        // Recover from the oldest misprediction resolved this cycle.
        if let Some(i) = mispredicted {
            self.recover(i);
        }
    }

    // ----------------------------------------------------------------
    // Misprediction recovery
    // ----------------------------------------------------------------

    /// Registers written by the wrong path between the mispredicted
    /// branch and its re-convergent point (the CRP initial mask,
    /// §2.3.2). Walks the in-window wrong path directly — the precise
    /// quantity the paper's NRBQ mask OR approximates; if the wrong
    /// path never reaches the RCP inside the window, everything it
    /// wrote taints (equivalent to ORing every NRBQ segment).
    pub(crate) fn wrong_path_mask(&self, branch_idx: usize, rcp: u32) -> u64 {
        let mut mask = 0u64;
        for e in self.rob.iter().skip(branch_idx + 1) {
            if e.pc == rcp {
                return mask;
            }
            if let Some(d) = e.ldest {
                mask |= 1u64 << d;
            }
        }
        for f in &self.decode_q {
            if f.pc == rcp {
                return mask;
            }
            if let Some(d) = f.inst.dest() {
                mask |= 1u64 << d;
            }
        }
        mask
    }

    fn recover(&mut self, i: usize) {
        let bseq = self.rob[i].seq;
        let bpc = self.rob[i].pc;
        let actual_taken = self.rob[i].actual_taken;
        let actual_target = self.rob[i].actual_target;
        let is_cond = self.rob[i].is_cond_branch();

        // Mechanism: event + CRP activation + NRBQ/SRSMT recovery.
        self.mech_on_mispredict(i, bseq, bpc, is_cond);

        // Squash younger instructions.
        let mut squashed = 0u64;
        while self.rob.len() > i + 1 {
            let e = self.rob.pop_back().unwrap();
            debug_assert!(e.seq > bseq);
            if let Some(p) = e.new_phys {
                self.rf.free(p);
            }
            if let Some(log) = &mut self.lifecycle {
                log.note_squash(e.lid, self.cycle);
            }
            self.kill_seed_waiter(e.seq);
            squashed += 1;
        }
        squashed += self.decode_q.len() as u64;
        if let Some(log) = &mut self.lifecycle {
            for f in &self.decode_q {
                log.note_squash(f.lid, self.cycle);
            }
        }
        self.decode_q.clear();
        self.stats.squashed += squashed;
        self.lsq.squash_younger(bseq);

        // Restore rename state from the branch's checkpoint.
        let cp = self.rob[i]
            .checkpoint
            .take()
            .expect("control instruction without checkpoint");
        self.rmap = cp.rmap;
        self.ext = cp.ext;
        self.gshare.restore_history(cp.ghist);
        if is_cond {
            self.gshare.push(actual_taken);
        }

        // Redirect fetch.
        self.fetch_pc = actual_target;
        self.fetch_halted = false;
        self.fetch_wait_until = self.cycle + 1;

        // Fix SRSMT decode counters for validations that survived.
        self.recount_srsmt_decode();
        self.flushed_this_cycle = true;
        self.last_flush_cycle = Some(self.cycle);
        trace_event!(
            self.tracer,
            Subsystem::Flush,
            bpc as u64,
            self.cycle,
            EventKind::Squash {
                resume_pc: actual_target as u64,
                squashed
            }
        );
    }
}

impl Pipeline<'_> {
    /// Deliver values to validating instructions whose replica finished
    /// after they dispatched (§2.3.4: the validating instruction waits
    /// for the value). Falls back to normal execution when the entry or
    /// replica died while waiting.
    fn poll_pending_reuses(&mut self) {
        if self.mech.is_none() {
            return;
        }
        let mut stuck: Vec<usize> = Vec::new();
        for i in 0..self.rob.len() {
            let Some(r) = self.rob[i].reuse else { continue };
            if !r.pending || self.rob[i].state != RobState::Executing {
                continue;
            }
            let Some(idx) = r.srsmt_idx else { continue };
            let bpc = Program::byte_pc(self.rob[i].pc);
            #[derive(PartialEq)]
            enum Poll {
                Wait,
                Fallback,
                /// Replica address contradicts the instance's exact
                /// address: fall back and desynchronise the entry.
                Mismatch,
                Deliver(u64, Option<u64>),
            }
            let poll = {
                let m = self.mech.as_ref().unwrap();
                match m.srsmt.get(idx) {
                    Some(ent) if ent.pc == bpc && ent.gen == r.gen && r.replica < ent.head => {
                        if ent.is_dead(r.replica) || r.replica < ent.commit {
                            Poll::Fallback
                        } else if ent.is_complete(r.replica) {
                            let addr = if self.rob[i].inst.is_load() {
                                Some(ent.addr_of(r.replica))
                            } else {
                                None
                            };
                            // Independent cross-check: if the load's own
                            // base register has become ready, the replica
                            // must hold this instance's exact address.
                            let exact = match (self.rob[i].inst, self.rob[i].src_phys[0]) {
                                (Inst::Ld { offset, .. }, Some(p)) if self.rf.is_ready(p) => {
                                    Some(cfir_emu::MemImage::align(
                                        self.rf.read(p).wrapping_add(offset as u64),
                                    ))
                                }
                                _ => None,
                            };
                            match (exact, addr) {
                                (Some(x), Some(a)) if x != a => Poll::Mismatch,
                                _ => Poll::Deliver(ent.value_of(r.replica), addr),
                            }
                        } else {
                            Poll::Wait
                        }
                    }
                    _ => Poll::Fallback,
                }
            };
            match poll {
                Poll::Wait => {
                    // A stuck replica chain (e.g. a producer window that
                    // can no longer grow) must not block the ROB head:
                    // give up and execute normally, keeping the slot as
                    // a probe.
                    if self.cycle.saturating_sub(self.rob[i].done_at) > 64 {
                        let e = &mut self.rob[i];
                        e.probe = Some(crate::rob::ProbeInfo {
                            srsmt_idx: idx,
                            gen: r.gen,
                            replica: r.replica,
                            verified: true, // value came from a real validation
                        });
                        e.reuse = None;
                        e.state = RobState::Dispatched;
                        e.done_at = 0;
                        let lid = e.lid;
                        if let Some(log) = &mut self.lifecycle {
                            log.set_reused(lid, false);
                        }
                        let _ = &mut stuck;
                    }
                }
                Poll::Fallback | Poll::Mismatch => {
                    // Execute normally, but keep owning the consumed
                    // slot as a probe so the entry's instance accounting
                    // stays exact (recount/commit still see it).
                    {
                        let e = &mut self.rob[i];
                        e.probe = Some(crate::rob::ProbeInfo {
                            srsmt_idx: idx,
                            gen: r.gen,
                            replica: r.replica,
                            verified: true, // value came from a real validation
                        });
                        e.reuse = None;
                        e.state = RobState::Dispatched;
                        e.done_at = 0;
                        let lid = e.lid;
                        if let Some(log) = &mut self.lifecycle {
                            log.set_reused(lid, false);
                        }
                    }
                    if matches!(poll, Poll::Mismatch) {
                        let mut m = self.mech.take().unwrap();
                        if let Some(ent) = m.srsmt.get_mut(idx) {
                            ent.synced = false;
                        }
                        self.mech = Some(m);
                    }
                }
                Poll::Deliver(value, addr) => {
                    let waited = self.cycle.saturating_sub(self.rob[i].done_at);
                    self.stats.h_reuse_wait.record(waited);
                    trace_event!(
                        self.tracer,
                        Subsystem::Vec,
                        self.rob[i].pc as u64,
                        self.cycle,
                        EventKind::Reuse { value, waited }
                    );
                    let mut e = self.rob[i].clone();
                    self.deliver_reuse_value(&mut e, value);
                    if let Some(a) = addr {
                        e.addr = Some(a);
                        self.lsq.set_addr(e.seq, a);
                    }
                    self.rob[i] = e;
                }
            }
        }
        if !stuck.is_empty() {
            let mut m = self.mech.take().unwrap();
            stuck.dedup();
            for idx in stuck {
                self.teardown_srsmt(&mut m, idx, "stuck_replica");
            }
            self.mech = Some(m);
        }
    }
}

impl Pipeline<'_> {
    /// A probing instruction finished executing: compare its real
    /// result against the replica slot it consumed. A match confirms
    /// the entry (later validations may deliver values); a mismatch
    /// proves misalignment and tears the entry down.
    pub(crate) fn verify_probe(
        &mut self,
        pr: crate::rob::ProbeInfo,
        pc: u32,
        value: u64,
        addr: Option<u64>,
        is_load: bool,
    ) {
        let Some(mut m) = self.mech.take() else {
            return;
        };
        // Dataflow oracle: capture the CI event that owns the SRSMT
        // entry before any teardown below erases it.
        let event = m.srsmt.get(pr.srsmt_idx).and_then(|ent| ent.event);
        let verdict = {
            match m.srsmt.get(pr.srsmt_idx) {
                Some(ent) if ent.gen == pr.gen && pr.replica < ent.head => {
                    if is_load {
                        // Address comparison works even if the replica
                        // has not completed (strided addresses are fixed
                        // at creation).
                        match ent.kind {
                            cfir_core::srsmt::VecKind::Load { .. } => {
                                Some(addr == Some(ent.addr_of(pr.replica)))
                            }
                            cfir_core::srsmt::VecKind::Op => {
                                if ent.is_complete(pr.replica) {
                                    Some(addr == Some(ent.addr_of(pr.replica)))
                                } else {
                                    None // cannot verify: leave unconfirmed
                                }
                            }
                        }
                    } else if ent.is_complete(pr.replica) {
                        Some(value == ent.value_of(pr.replica))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        // Dataflow oracle: a confirming probe is clean-reuse evidence
        // for the instruction at `pc`. A mismatching probe is not the
        // mirror image — the probe validates the replica's speculative
        // precomputation (stride-extrapolated addresses, operand
        // snapshots taken at vectorization time), so a mismatch shows
        // the *mechanism's* extrapolation broke (e.g. a masked index
        // wrapping past the stride run, or instance skew), not that an
        // arm definition reached the instruction. Mismatches are
        // recorded as mechanism repairs; the instance-exact dataflow
        // test lives at commit (architectural verify of reused
        // values). None = could not verify, nothing to score.
        match verdict {
            Some(true) => self.stats.branch_prof.note_cidi_outcome(event, pc, true),
            Some(false) => self.stats.branch_prof.note_cidi_mechanism_repair(event, pc),
            None => {}
        }
        match verdict {
            Some(true) => {
                let ent = m.srsmt.get_mut(pr.srsmt_idx).unwrap();
                ent.confirmed = true;
                ent.synced = true;
            }
            Some(false) => {
                self.stats.validation_failures += 1;
                self.stats.valfail_reasons[3] += 1;
                trace_event!(
                    self.tracer,
                    Subsystem::Vec,
                    0,
                    self.cycle,
                    EventKind::Validate {
                        ok: false,
                        reason: "address_mismatch"
                    }
                );
                self.teardown_srsmt(&mut m, pr.srsmt_idx, "probe_mismatch");
            }
            None => {}
        }
        self.mech = Some(m);
    }
}
