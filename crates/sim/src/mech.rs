//! Mechanism state bundle: the paper's tables plus the replica engine
//! records, owned by the pipeline when the mode uses them.

use cfir_core::{Crp, Mbs, MechConfig, Nrbq, SpecMem, Srsmt};
use cfir_isa::Inst;
use cfir_predict::StridePredictor;
use std::collections::HashMap;

/// A replica's source operand, resolved at batch-creation time.
#[derive(Debug, Clone, Copy)]
pub enum RepSrc {
    /// Operand absent.
    None,
    /// Scalar value captured at vectorization time.
    Val(u64),
    /// The seed of a loop-carried self-dependence chain: read the own
    /// entry's `seed_value` once the creating instruction delivers it.
    SeedSelf,
    /// Instance `idx` of the vectorized producer at `pc`.
    Dep {
        /// Producer instruction PC (SRSMT key).
        pc: u64,
        /// Producer generation expected.
        gen: u32,
        /// Producer instance index to consume.
        idx: u32,
    },
}

/// What the replica computes.
#[derive(Debug, Clone, Copy)]
pub enum RepKind {
    /// Stride-generated load: the address is known at creation.
    StridedLoad {
        /// Effective address this instance reads.
        addr: u64,
    },
    /// Replicated dependent instruction (ALU/FP/load-with-vector-base).
    Op {
        /// The instruction to evaluate.
        inst: Inst,
        /// Resolved sources.
        srcs: [RepSrc; 2],
    },
}

/// Execution state of one replica instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepState {
    /// Waiting for sources / resources.
    Waiting,
    /// Issued; completes at the stored cycle.
    Exec {
        /// Completion cycle.
        done_at: u64,
    },
}

/// One speculative replica in flight.
#[derive(Debug, Clone, Copy)]
pub struct Replica {
    /// Lifecycle id (0 when lifecycle tracing is off).
    pub lid: u64,
    /// PC of the owning vectorized instruction (identity check against
    /// the SRSMT entry, which may have been reallocated).
    pub pc: u64,
    /// SRSMT entry index this replica belongs to.
    pub srsmt_idx: usize,
    /// Entry generation it was created for.
    pub gen: u32,
    /// Absolute instance index within the entry's replica stream.
    pub idx: u32,
    /// Work description.
    pub kind: RepKind,
    /// Execution state.
    pub state: RepState,
    /// Value computed (valid once issued; delivered at `done_at`).
    pub value: u64,
    /// Memory address touched (loads), for the coherence range.
    pub addr: Option<u64>,
}

/// Pending register-file copy injected by a validation in the
/// speculative-data-memory mode (§2.4.6).
#[derive(Debug, Clone, Copy)]
pub struct PendingCopy {
    /// Destination physical register.
    pub phys: u32,
    /// Value being moved from the speculative memory.
    pub value: u64,
    /// Cycle at which the value lands in the register file.
    pub ready_at: u64,
}

/// A value harvested from the squashed wrong path (ci-iw mode).
#[derive(Debug, Clone, Copy)]
pub struct SquashReuse {
    /// Value the wrong-path instance computed.
    pub value: u64,
    /// Event that produced it (Figure 5 attribution).
    pub event: u64,
}

/// All mechanism state.
#[derive(Debug)]
pub struct Mech {
    /// Mechanism configuration.
    pub cfg: MechConfig,
    /// Mispredicted Branch Status table.
    pub mbs: Mbs,
    /// Not-Retired Branch Queue.
    pub nrbq: Nrbq,
    /// Current Re-convergent Point register.
    pub crp: Crp,
    /// Stride predictor (with the `S` selection flags).
    pub stride: StridePredictor,
    /// Scalar Register Set Map Table.
    pub srsmt: Srsmt,
    /// Speculative data memory, when configured (`ci-h-N`).
    pub specmem: Option<SpecMem>,
    /// Event id that selected each load PC (Figure 5 attribution).
    pub sel_event: HashMap<u64, u64>,
    /// Self-loop entries waiting for their seed value, keyed by the
    /// creating instruction's sequence number -> (entry idx, gen).
    pub seed_waiters: HashMap<u64, (usize, u32)>,
    /// Commit-time mis-speculation count per instruction PC. A PC that
    /// repeatedly delivers wrong values (each costing a repair flush)
    /// is refused further vectorization — a small confidence counter a
    /// real implementation would also want.
    pub misspec_count: HashMap<u64, u8>,
    /// Squash-reuse buffer: wrong-path CI values keyed by PC (ci-iw).
    pub squash_buf: HashMap<u32, std::collections::VecDeque<SquashReuse>>,
}

impl Mech {
    /// Build the mechanism state from its configuration.
    pub fn new(cfg: MechConfig) -> Self {
        let specmem = cfg
            .specmem_positions
            .map(|n| SpecMem::new(n, cfg.specmem_latency));
        Mech {
            mbs: Mbs::new(cfg.mbs_sets, cfg.mbs_ways),
            nrbq: Nrbq::new(cfg.nrbq_entries),
            crp: Crp::new(),
            stride: StridePredictor::new(cfg.stride_sets, cfg.stride_ways),
            srsmt: Srsmt::new(cfg.srsmt_sets, cfg.srsmt_ways, cfg.daec_threshold),
            specmem,
            sel_event: HashMap::new(),
            seed_waiters: HashMap::new(),
            misspec_count: HashMap::new(),
            squash_buf: HashMap::new(),
            cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_paper_config() {
        let m = Mech::new(MechConfig::paper());
        assert!(m.specmem.is_none());
        assert!(!m.crp.active);
        assert!(m.nrbq.is_empty());
    }

    #[test]
    fn specmem_configured_when_requested() {
        let m = Mech::new(MechConfig::paper_with_specmem(256));
        assert_eq!(m.specmem.as_ref().unwrap().capacity(), 256);
    }
}
