//! Mechanism state bundle: the paper's tables plus the replica engine
//! records, owned by the pipeline when the mode uses them.

use cfir_core::{Crp, Mbs, MechConfig, Nrbq, SpecMem, Srsmt};
use cfir_isa::Inst;
use cfir_predict::StridePredictor;
use std::collections::VecDeque;

/// Sentinel for an empty [`Mech::sel_event`] slot. Event ids are
/// sequential counters starting at 0, so `u64::MAX` can never be a
/// real event.
pub(crate) const SEL_EVENT_EMPTY: u64 = u64::MAX;

/// A replica's source operand, resolved at batch-creation time.
#[derive(Debug, Clone, Copy)]
pub enum RepSrc {
    /// Operand absent.
    None,
    /// Scalar value captured at vectorization time.
    Val(u64),
    /// The seed of a loop-carried self-dependence chain: read the own
    /// entry's `seed_value` once the creating instruction delivers it.
    SeedSelf,
    /// Instance `idx` of the vectorized producer at `pc`.
    Dep {
        /// Producer instruction PC (SRSMT key).
        pc: u64,
        /// Producer generation expected.
        gen: u32,
        /// Producer instance index to consume.
        idx: u32,
    },
}

/// What the replica computes.
#[derive(Debug, Clone, Copy)]
pub enum RepKind {
    /// Stride-generated load: the address is known at creation.
    StridedLoad {
        /// Effective address this instance reads.
        addr: u64,
    },
    /// Replicated dependent instruction (ALU/FP/load-with-vector-base).
    Op {
        /// The instruction to evaluate.
        inst: Inst,
        /// Resolved sources.
        srcs: [RepSrc; 2],
    },
}

/// Execution state of one replica instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepState {
    /// Waiting for sources / resources.
    Waiting,
    /// Issued; completes at the stored cycle.
    Exec {
        /// Completion cycle.
        done_at: u64,
    },
}

/// One speculative replica in flight.
#[derive(Debug, Clone, Copy)]
pub struct Replica {
    /// Lifecycle id (0 when lifecycle tracing is off).
    pub lid: u64,
    /// PC of the owning vectorized instruction (identity check against
    /// the SRSMT entry, which may have been reallocated).
    pub pc: u64,
    /// SRSMT entry index this replica belongs to.
    pub srsmt_idx: usize,
    /// Entry generation it was created for.
    pub gen: u32,
    /// Absolute instance index within the entry's replica stream.
    pub idx: u32,
    /// Work description.
    pub kind: RepKind,
    /// Execution state.
    pub state: RepState,
    /// Value computed (valid once issued; delivered at `done_at`).
    pub value: u64,
    /// Memory address touched (loads), for the coherence range.
    pub addr: Option<u64>,
}

/// Free-list arena for in-flight replicas. Records live in a slab and
/// never move; `order` holds slot ids in exactly the sequence the old
/// `Vec<Replica>` held the records, so issue priority under bandwidth
/// pressure is bit-for-bit unchanged (`reap` keeps relative order like
/// `Vec::retain`, [`ReplicaArena::swap_remove`] performs the same
/// last-into-hole permutation) — but removals now shift 4-byte ids
/// instead of whole records, and freed slots are recycled without
/// touching the allocator.
#[derive(Debug, Default)]
pub(crate) struct ReplicaArena {
    slab: Vec<Replica>,
    free: Vec<u32>,
    order: Vec<u32>,
    /// Scratch for [`ReplicaArena::reap`]'s killed-lid list, kept warm
    /// across calls.
    killed: Vec<u64>,
}

impl ReplicaArena {
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    /// Only test assertions need emptiness; the pipeline always works
    /// from `len`/iteration.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Append a replica at the back of the issue order.
    pub(crate) fn push(&mut self, r: Replica) {
        let id = match self.free.pop() {
            Some(id) => {
                self.slab[id as usize] = r;
                id
            }
            None => {
                self.slab.push(r);
                (self.slab.len() - 1) as u32
            }
        };
        self.order.push(id);
    }

    /// Remove the replica at order position `pos` with the same
    /// last-into-hole permutation `Vec::swap_remove` used, recycling
    /// its slot.
    pub(crate) fn swap_remove(&mut self, pos: usize) {
        let id = self.order.swap_remove(pos);
        self.free.push(id);
    }

    /// Drop every replica matching `pred`, preserving the relative
    /// order of survivors (exactly like `Vec::retain`). Returns the
    /// lids of the dropped replicas for lifecycle close-out.
    pub(crate) fn reap(&mut self, pred: impl Fn(&Replica) -> bool) -> &[u64] {
        self.killed.clear();
        let (slab, free, killed) = (&self.slab, &mut self.free, &mut self.killed);
        self.order.retain(|&id| {
            let r = &slab[id as usize];
            if pred(r) {
                killed.push(r.lid);
                free.push(id);
                false
            } else {
                true
            }
        });
        &self.killed
    }
}

impl std::ops::Index<usize> for ReplicaArena {
    type Output = Replica;
    fn index(&self, pos: usize) -> &Replica {
        &self.slab[self.order[pos] as usize]
    }
}

impl std::ops::IndexMut<usize> for ReplicaArena {
    fn index_mut(&mut self, pos: usize) -> &mut Replica {
        &mut self.slab[self.order[pos] as usize]
    }
}

/// Pending register-file copy injected by a validation in the
/// speculative-data-memory mode (§2.4.6).
#[derive(Debug, Clone, Copy)]
pub struct PendingCopy {
    /// Destination physical register.
    pub phys: u32,
    /// Value being moved from the speculative memory.
    pub value: u64,
    /// Cycle at which the value lands in the register file.
    pub ready_at: u64,
}

/// A value harvested from the squashed wrong path (ci-iw mode).
#[derive(Debug, Clone, Copy)]
pub struct SquashReuse {
    /// Value the wrong-path instance computed.
    pub value: u64,
    /// Event that produced it (Figure 5 attribution).
    pub event: u64,
}

/// All mechanism state.
#[derive(Debug)]
pub struct Mech {
    /// Mechanism configuration.
    pub cfg: MechConfig,
    /// Mispredicted Branch Status table.
    pub mbs: Mbs,
    /// Not-Retired Branch Queue.
    pub nrbq: Nrbq,
    /// Current Re-convergent Point register.
    pub crp: Crp,
    /// Stride predictor (with the `S` selection flags).
    pub stride: StridePredictor,
    /// Scalar Register Set Map Table.
    pub srsmt: Srsmt,
    /// Speculative data memory, when configured (`ci-h-N`).
    pub specmem: Option<SpecMem>,
    /// Event id that selected each load PC (Figure 5 attribution).
    /// Dense table indexed by *word* PC ([`SEL_EVENT_EMPTY`] = never
    /// selected); one indexed load replaces a hash lookup on the
    /// decode path. Entries are only ever overwritten, never erased —
    /// exactly the map semantics this replaces.
    pub sel_event: Vec<u64>,
    /// Self-loop entries waiting for their seed value: `(creating
    /// instruction's sequence number, entry idx, gen)`. Lookups are by
    /// exact seq; the population is bounded by live SRSMT self-loop
    /// entries (a handful), so a linear scan over a flat vector beats
    /// hashing and never allocates once warm. Order is irrelevant —
    /// no caller iterates, so `swap_remove` is safe.
    pub seed_waiters: Vec<(u64, usize, u32)>,
    /// Commit-time mis-speculation count per instruction PC, dense by
    /// *word* PC. A PC that repeatedly delivers wrong values (each
    /// costing a repair flush) is refused further vectorization — a
    /// small confidence counter a real implementation would also want.
    /// A zero count is identical to "absent" in the map semantics this
    /// replaces (the blacklist threshold is ≥ 1).
    pub misspec_count: Vec<u8>,
    /// Squash-reuse buffer: wrong-path CI values, dense by *word* PC
    /// (ci-iw). [`Mech::clear_squash_buf`] empties the queues in place
    /// so their allocations survive across harvests.
    pub squash_buf: Vec<VecDeque<SquashReuse>>,
}

impl Mech {
    /// Build the mechanism state from its configuration. `prog_len`
    /// (program length in instructions) sizes the dense PC-indexed
    /// tables.
    pub fn new(cfg: MechConfig, prog_len: usize) -> Self {
        let specmem = cfg
            .specmem_positions
            .map(|n| SpecMem::new(n, cfg.specmem_latency));
        Mech {
            mbs: Mbs::new(cfg.mbs_sets, cfg.mbs_ways),
            nrbq: Nrbq::new(cfg.nrbq_entries),
            crp: Crp::new(),
            stride: StridePredictor::new(cfg.stride_sets, cfg.stride_ways),
            srsmt: Srsmt::new(cfg.srsmt_sets, cfg.srsmt_ways, cfg.daec_threshold),
            specmem,
            sel_event: vec![SEL_EVENT_EMPTY; prog_len],
            seed_waiters: Vec::new(),
            misspec_count: vec![0; prog_len],
            squash_buf: vec![VecDeque::new(); prog_len],
            cfg,
        }
    }

    /// Record the event that selected the load at byte PC `bpc`.
    pub(crate) fn set_sel_event(&mut self, bpc: u64, event: u64) {
        self.sel_event[(bpc >> 2) as usize] = event;
    }

    /// The event that selected byte PC `bpc`, if any.
    pub(crate) fn sel_event(&self, bpc: u64) -> Option<u64> {
        match self.sel_event[(bpc >> 2) as usize] {
            SEL_EVENT_EMPTY => None,
            ev => Some(ev),
        }
    }

    /// Register a self-loop entry waiting for its seed value.
    pub(crate) fn add_seed_waiter(&mut self, seq: u64, idx: usize, gen: u32) {
        debug_assert!(
            !self.seed_waiters.iter().any(|&(s, _, _)| s == seq),
            "duplicate seed waiter for seq {seq}"
        );
        self.seed_waiters.push((seq, idx, gen));
    }

    /// Remove and return the waiter registered under `seq`, if any.
    pub(crate) fn take_seed_waiter(&mut self, seq: u64) -> Option<(usize, u32)> {
        let at = self.seed_waiters.iter().position(|&(s, _, _)| s == seq)?;
        let (_, idx, gen) = self.seed_waiters.swap_remove(at);
        Some((idx, gen))
    }

    /// Current mis-speculation count of byte PC `bpc`.
    pub(crate) fn misspec(&self, bpc: u64) -> u8 {
        self.misspec_count[(bpc >> 2) as usize]
    }

    /// Count one commit-time repair against byte PC `bpc`.
    pub(crate) fn bump_misspec(&mut self, bpc: u64) {
        let c = &mut self.misspec_count[(bpc >> 2) as usize];
        *c = c.saturating_add(1);
    }

    /// Age every mis-speculation counter by one (bootstrap-phase
    /// failures should not bar a PC forever, only chronic ones).
    pub(crate) fn age_misspec(&mut self) {
        for c in &mut self.misspec_count {
            *c = c.saturating_sub(1);
        }
    }

    /// Empty every squash-reuse queue in place, keeping allocations.
    pub(crate) fn clear_squash_buf(&mut self) {
        for q in &mut self.squash_buf {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_paper_config() {
        let m = Mech::new(MechConfig::paper(), 64);
        assert!(m.specmem.is_none());
        assert!(!m.crp.active);
        assert!(m.nrbq.is_empty());
        assert_eq!(m.sel_event.len(), 64);
        assert_eq!(m.misspec_count.len(), 64);
        assert_eq!(m.squash_buf.len(), 64);
    }

    #[test]
    fn specmem_configured_when_requested() {
        let m = Mech::new(MechConfig::paper_with_specmem(256), 16);
        assert_eq!(m.specmem.as_ref().unwrap().capacity(), 256);
    }

    #[test]
    fn sel_event_round_trips_including_zero() {
        let mut m = Mech::new(MechConfig::paper(), 8);
        assert_eq!(m.sel_event(4), None);
        m.set_sel_event(4, 0); // event ids start at 0
        assert_eq!(m.sel_event(4), Some(0));
        m.set_sel_event(4, 7);
        assert_eq!(m.sel_event(4), Some(7));
        assert_eq!(m.sel_event(0), None);
    }

    #[test]
    fn seed_waiters_add_take_semantics() {
        let mut m = Mech::new(MechConfig::paper(), 4);
        m.add_seed_waiter(10, 3, 1);
        m.add_seed_waiter(11, 4, 2);
        assert_eq!(m.take_seed_waiter(12), None);
        assert_eq!(m.take_seed_waiter(10), Some((3, 1)));
        assert_eq!(m.take_seed_waiter(10), None, "removed on take");
        assert_eq!(m.take_seed_waiter(11), Some((4, 2)));
        assert!(m.seed_waiters.is_empty());
    }

    #[test]
    fn misspec_counters_saturate_and_age() {
        let mut m = Mech::new(MechConfig::paper(), 4);
        assert_eq!(m.misspec(8), 0);
        for _ in 0..300 {
            m.bump_misspec(8);
        }
        assert_eq!(m.misspec(8), u8::MAX, "saturating add");
        m.bump_misspec(0);
        m.age_misspec();
        assert_eq!(m.misspec(0), 0, "aged back to absent");
        assert_eq!(m.misspec(8), u8::MAX - 1);
    }
}
