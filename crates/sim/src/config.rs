//! Simulator configuration (Table 1 plus the mechanism knobs).

use cfir_core::MechConfig;
use cfir_mem::HierarchyConfig;

/// Which machine is simulated. These are the bar/series labels used
/// throughout the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain superscalar, scalar cache ports (`scalxp`).
    Scalar,
    /// Superscalar with wide buses (`wbxp`, §2.4.5).
    WideBus,
    /// Control independence exploited only inside the instruction
    /// window — squash reuse (`ci-iw`, Figure 10).
    CiIw,
    /// The paper's proposal: CI reuse via dynamic vectorization,
    /// on top of wide buses (`cixp`).
    Ci,
    /// Full-blown speculative dynamic vectorization of reference [12]
    /// (`vect`, Figure 14): every trusted strided load is vectorized,
    /// no CI gating.
    Vect,
}

impl Mode {
    /// Whether this mode uses the wide-bus data cache (§2.4.5). The
    /// paper runs `ci` and `vect` on top of wide buses.
    pub fn wide_bus(self) -> bool {
        !matches!(self, Mode::Scalar)
    }

    /// Whether the replica engine (dynamic vectorization) is active.
    pub fn vectorizes(self) -> bool {
        matches!(self, Mode::Ci | Mode::Vect)
    }

    /// Whether the CI selection machinery (MBS/NRBQ/CRP) is active.
    pub fn selects_ci(self) -> bool {
        matches!(self, Mode::Ci | Mode::CiIw)
    }

    /// Parse a label back into a mode (the inverse of
    /// [`Mode::label`]); used by the CLI tools.
    pub fn from_label(s: &str) -> Option<Mode> {
        Some(match s {
            "scal" => Mode::Scalar,
            "wb" => Mode::WideBus,
            "ci-iw" => Mode::CiIw,
            "ci" => Mode::Ci,
            "vect" => Mode::Vect,
            _ => return None,
        })
    }

    /// Short label used in reports (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Mode::Scalar => "scal",
            Mode::WideBus => "wb",
            Mode::CiIw => "ci-iw",
            Mode::Ci => "ci",
            Mode::Vect => "vect",
        }
    }
}

/// Physical register file size: the X axis of Figures 9, 11, 13, 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegFileSize {
    /// Bounded file with this many physical registers.
    Finite(u32),
    /// Unbounded ("Inf" in the figures).
    Infinite,
}

impl RegFileSize {
    /// Label used in reports.
    pub fn label(self) -> String {
        match self {
            RegFileSize::Finite(n) => format!("{n} regs"),
            RegFileSize::Infinite => "Inf".to_string(),
        }
    }
}

/// Full simulator configuration. Defaults reproduce Table 1 with the
/// paper's preferred mechanism parameters (4 replicas, 2 stridedPC
/// slots, 2 wide ports are *not* default — port count is explicit).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Machine variant.
    pub mode: Mode,
    /// Fetch width (8, up to 1 taken branch).
    pub fetch_width: u32,
    /// Decode-to-rename pipeline depth in cycles (front-end latency
    /// that sets the misprediction penalty floor).
    pub decode_delay: u32,
    /// Issue width (8-way out of order).
    pub issue_width: u32,
    /// Commit width (8).
    pub commit_width: u32,
    /// Instruction window / ROB entries (256; grows to the register
    /// count for configurations beyond 256 registers, §3.2).
    pub window: u32,
    /// Load/store queue entries (64).
    pub lsq: u32,
    /// Physical registers.
    pub regs: RegFileSize,
    /// L1 data cache ports (1 or 2; the `x` of `scalxp`/`wbxp`/`cixp`).
    pub dports: u32,
    /// Loads served by one wide-bus access (4, §2.4.5).
    pub wide_loads_per_access: u32,
    /// Simple int ALUs (6).
    pub int_alu: u32,
    /// Int mult/div units (3).
    pub int_muldiv: u32,
    /// Simple FP units (4).
    pub fp_alu: u32,
    /// FP mult/div units (2).
    pub fp_muldiv: u32,
    /// Outstanding L1D misses (16).
    pub mshrs: u32,
    /// Gshare entries (64K).
    pub gshare_entries: usize,
    /// Cache hierarchy geometry/latencies.
    pub hierarchy: HierarchyConfig,
    /// Mechanism parameters (replicas, stridedPC slots, tables).
    pub mech: MechConfig,
    /// Maximum *committed* instructions before the run stops.
    pub max_insts: u64,
    /// Safety valve on cycles (0 = none).
    pub max_cycles: u64,
    /// Run the golden-model co-simulation check at every commit.
    pub cosim_check: bool,
    /// Sample `SimStats::intervals` every this many cycles (0 = off).
    /// Used for warm-up/stationarity analysis of the measurement
    /// windows (see the `exp_warmup` binary).
    pub interval_cycles: u64,
    /// Oracle branch prediction (limit study): conditional branches and
    /// indirect jumps always fetch down the correct path. Shows how
    /// much of the misprediction penalty the CI mechanism recovers
    /// relative to the upper bound.
    pub perfect_branch_prediction: bool,
    /// Record per-instruction lifecycle data for the whole run
    /// (unbounded ring, so `lifecycle.dropped` stays 0) and derive the
    /// bottleneck report — critical path, CPI stack, what-if
    /// projections — in `finalize_stats`. Costs memory proportional to
    /// the instruction budget; `CFIR_PIPEVIEW` takes precedence when
    /// both are set.
    pub record_lifecycle: bool,
}

impl SimConfig {
    /// Table 1 baseline: 8-way superscalar, 256-entry window, 1 port,
    /// 256 registers, scalar bus.
    pub fn paper_baseline() -> Self {
        SimConfig {
            mode: Mode::Scalar,
            fetch_width: 8,
            decode_delay: 2,
            issue_width: 8,
            commit_width: 8,
            window: 256,
            lsq: 64,
            regs: RegFileSize::Finite(256),
            dports: 1,
            wide_loads_per_access: 4,
            int_alu: 6,
            int_muldiv: 3,
            fp_alu: 4,
            fp_muldiv: 2,
            mshrs: 16,
            gshare_entries: 64 * 1024,
            hierarchy: HierarchyConfig::paper(),
            mech: MechConfig::paper(),
            max_insts: 1_000_000,
            max_cycles: 0,
            cosim_check: cfg!(debug_assertions),
            interval_cycles: 0,
            perfect_branch_prediction: false,
            record_lifecycle: false,
        }
    }

    /// Builder-style: set the mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style: set the register file size; windows beyond 256
    /// registers grow the ROB to match (§3.2).
    pub fn with_regs(mut self, regs: RegFileSize) -> Self {
        self.regs = regs;
        self.window = match regs {
            RegFileSize::Finite(n) if n > 256 => n,
            RegFileSize::Infinite => 1024,
            _ => 256,
        };
        self
    }

    /// Builder-style: set the number of L1D ports.
    pub fn with_dports(mut self, p: u32) -> Self {
        self.dports = p;
        self
    }

    /// Builder-style: set the committed-instruction budget.
    pub fn with_max_insts(mut self, n: u64) -> Self {
        self.max_insts = n;
        self
    }

    /// Builder-style: replicas per vectorized instruction (Figure 11).
    pub fn with_replicas(mut self, r: u8) -> Self {
        self.mech.replicas_per_inst = r;
        self
    }

    /// Builder-style: enable full-run lifecycle recording and the
    /// bottleneck (critical-path / what-if) analysis.
    pub fn with_lifecycle(mut self) -> Self {
        self.record_lifecycle = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = SimConfig::paper_baseline();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.window, 256);
        assert_eq!(c.lsq, 64);
        assert_eq!(c.int_alu, 6);
        assert_eq!(c.int_muldiv, 3);
        assert_eq!(c.fp_alu, 4);
        assert_eq!(c.fp_muldiv, 2);
        assert_eq!(c.mshrs, 16);
        assert_eq!(c.gshare_entries, 64 * 1024);
    }

    #[test]
    fn window_grows_with_registers() {
        let c = SimConfig::paper_baseline().with_regs(RegFileSize::Finite(768));
        assert_eq!(c.window, 768);
        let c = SimConfig::paper_baseline().with_regs(RegFileSize::Finite(128));
        assert_eq!(c.window, 256);
        let c = SimConfig::paper_baseline().with_regs(RegFileSize::Infinite);
        assert_eq!(c.window, 1024);
    }

    #[test]
    fn mode_properties() {
        assert!(!Mode::Scalar.wide_bus());
        assert!(Mode::WideBus.wide_bus());
        assert!(Mode::Ci.wide_bus());
        assert!(Mode::Ci.vectorizes());
        assert!(Mode::Vect.vectorizes());
        assert!(!Mode::CiIw.vectorizes());
        assert!(Mode::CiIw.selects_ci());
        assert!(!Mode::Vect.selects_ci());
        assert_eq!(Mode::Ci.label(), "ci");
        for m in [
            Mode::Scalar,
            Mode::WideBus,
            Mode::CiIw,
            Mode::Ci,
            Mode::Vect,
        ] {
            assert_eq!(Mode::from_label(m.label()), Some(m), "label round-trip");
        }
        assert_eq!(Mode::from_label("nope"), None);
    }

    #[test]
    fn reg_labels() {
        assert_eq!(RegFileSize::Finite(128).label(), "128 regs");
        assert_eq!(RegFileSize::Infinite.label(), "Inf");
    }
}
