//! Per-static-branch CI-reuse scorecards.
//!
//! The paper's headline claim — control-flow independence is exploited
//! for ~50% of mispredicted branches — is a *per-site* property: some
//! static branches are gold mines for the mechanism, others never pay.
//! This module attributes every mechanism action (event opened, replica
//! dispatched/executed, validation, committed reuse) back to the static
//! branch whose misprediction triggered it, keyed by the branch's word
//! PC, so a run can be profiled branch by branch instead of only in
//! aggregate.
//!
//! Attribution flows through the misprediction *event* id that the
//! selection machinery already threads through `SRSMT` entries and
//! [`crate::rob::ReuseInfo`] for the Figure 5 classification: the
//! scorecard records which branch PC opened each event and charges all
//! downstream work to it. Work with no event (e.g. `vect` mode, which
//! vectorizes on stride trust alone) lands in an explicit
//! `unattributed` bucket so scorecard totals always reconcile exactly
//! with the global [`crate::stats::SimStats`] counters.

use cfir_core::{EventOutcome, EventStats};
use std::collections::HashMap;

/// Mechanism effectiveness at one static conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchScore {
    /// Committed dynamic instances of this branch.
    pub executed: u64,
    /// Committed instances whose prediction was wrong.
    pub mispredicts: u64,
    /// CI events opened by this branch (hard mispredictions that
    /// activated the CRP).
    pub events: u64,
    /// Events in which at least one precomputed result was reused —
    /// the paper's "CI exploited" numerator.
    pub events_reused: u64,
    /// Events that selected CI instructions but reused none.
    pub events_selected: u64,
    /// Replica instances dispatched to the engine for work this branch
    /// selected.
    pub replicas_created: u64,
    /// Replica instances that actually executed.
    pub replicas_executed: u64,
    /// Decode-time validations that consumed a replica slot.
    pub validations: u64,
    /// Committed instructions that reused a value attributed to this
    /// branch's events.
    pub reuse_commits: u64,
    /// Estimated execution cycles the reuses avoided (the FU or L1-hit
    /// latency each validated instruction skipped).
    pub cycles_saved: u64,
    /// Runtime RCP-oracle comparisons at this branch: each time a CI
    /// event opened here, the detector's re-convergence estimate was
    /// compared against the static post-dominator truth.
    pub rcp_checks: u64,
    /// ... of which the estimate matched the static truth exactly.
    pub rcp_agree: u64,
    /// Runtime dataflow-oracle comparisons at this branch: reuse
    /// outcomes of instructions the static CIDI classification issued
    /// a verdict for.
    pub cidi_checks: u64,
    /// ... of which the outcome matched the verdict (CIDI reused
    /// clean; CIDD/clobbered needed repair).
    pub cidi_agree: u64,
}

impl BranchScore {
    /// Replicas executed whose value was never consumed by a committed
    /// reuse — the wasted speculative work at this branch.
    pub fn replicas_wasted(&self) -> u64 {
        self.replicas_executed.saturating_sub(self.reuse_commits)
    }

    /// Fraction of this branch's mispredictions for which CI was
    /// exploited (≥ 1 reuse survived the squash).
    pub fn ci_exploited_rate(&self) -> f64 {
        if self.mispredicts == 0 {
            0.0
        } else {
            self.events_reused as f64 / self.mispredicts as f64
        }
    }

    fn add(&mut self, other: &BranchScore) {
        self.executed += other.executed;
        self.mispredicts += other.mispredicts;
        self.events += other.events;
        self.events_reused += other.events_reused;
        self.events_selected += other.events_selected;
        self.replicas_created += other.replicas_created;
        self.replicas_executed += other.replicas_executed;
        self.validations += other.validations;
        self.reuse_commits += other.reuse_commits;
        self.cycles_saved += other.cycles_saved;
        self.rcp_checks += other.rcp_checks;
        self.rcp_agree += other.rcp_agree;
        self.cidi_checks += other.cidi_checks;
        self.cidi_agree += other.cidi_agree;
    }
}

/// Static (post-dominator) ground truth about one conditional branch,
/// seeded from `cfir-analyze` when the pipeline is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticTruth {
    /// Exact post-dominator-based reconvergence PC (`None` when the
    /// paths only meet at the program exit).
    pub rcp: Option<u32>,
    /// Hammock class name (`ifthen`, `ifthenelse`, `loopback`, ...).
    pub class: &'static str,
    /// `true` for the forward-hammock shapes the dynamic heuristic
    /// targets.
    pub is_hammock: bool,
}

/// The per-run scorecard table plus the unattributed spill bucket.
#[derive(Debug, Clone, Default)]
pub struct BranchProf {
    /// Scores keyed by the branch's word PC.
    scores: HashMap<u32, BranchScore>,
    /// Which branch PC opened each event id (filled at recovery).
    event_pc: HashMap<u64, u32>,
    /// Mechanism work that carried no event id (`vect` mode, or events
    /// already evicted): kept so totals reconcile with the global
    /// statistics.
    pub unattributed: BranchScore,
    /// Static oracle truth per branch PC (seeded at pipeline build).
    statics: HashMap<u32, StaticTruth>,
    /// Static CIDI verdict per `(branch PC, instruction PC)` pair,
    /// seeded from the dataflow engine at pipeline build. Values are
    /// the verdict names (`"cidi"`, `"cidd"`, `"clobbered"`).
    cidi_verdicts: HashMap<(u32, u32), &'static str>,
    /// CIDI-predicted instructions whose reuse failed validation — the
    /// static analysis promised success and was wrong.
    pub cidi_pred_failures: u64,
    /// CIDD/clobbered-predicted instructions that reused clean — the
    /// validation the analysis demanded turned out unnecessary.
    pub cidd_clean_reuses: u64,
    /// Scored reuse outcomes the oracle could not classify (no event
    /// attribution, or the instruction lies outside the classified
    /// region / horizon).
    pub cidi_unclassified: u64,
    /// Verdict-attributed commit-stage repairs excluded from scoring:
    /// the decode-time pairing was already broken, so the repair is
    /// mechanism mis-speculation, not dataflow evidence (see
    /// [`BranchProf::note_cidi_mechanism_repair`]).
    pub cidi_mechanism_repairs: u64,
    /// Outcomes already folded (see [`BranchProf::finalize`]).
    finalized: bool,
}

impl BranchProf {
    /// A committed conditional branch (called from the commit stage).
    pub fn note_branch(&mut self, pc: u32, mispredicted: bool) {
        let s = self.scores.entry(pc).or_default();
        s.executed += 1;
        if mispredicted {
            s.mispredicts += 1;
        }
    }

    /// A CI event opened by the misprediction of the branch at `pc`.
    pub fn note_event(&mut self, pc: u32, event: u64) {
        self.scores.entry(pc).or_default().events += 1;
        self.event_pc.insert(event, pc);
    }

    /// Seed the static oracle truth for the branch at `pc`.
    pub fn set_static_truth(&mut self, pc: u32, truth: StaticTruth) {
        self.statics.insert(pc, truth);
    }

    /// Static oracle truth for the branch at `pc`, if seeded.
    pub fn static_truth(&self, pc: u32) -> Option<StaticTruth> {
        self.statics.get(&pc).copied()
    }

    /// A runtime comparison of the dynamic RCP estimate against the
    /// static truth at the branch `pc` (called when a CI event opens).
    pub fn note_rcp_check(&mut self, pc: u32, agree: bool) {
        let s = self.scores.entry(pc).or_default();
        s.rcp_checks += 1;
        if agree {
            s.rcp_agree += 1;
        }
    }

    /// `(checked, agreed)` runtime RCP-oracle totals over all branches.
    pub fn rcp_totals(&self) -> (u64, u64) {
        let t = self.totals();
        (t.rcp_checks, t.rcp_agree)
    }

    /// Runtime agreement fraction between the dynamic RCP estimate and
    /// the static oracle (1.0 when nothing was checked).
    pub fn rcp_agreement(&self) -> f64 {
        let (checked, agreed) = self.rcp_totals();
        if checked == 0 {
            1.0
        } else {
            agreed as f64 / checked as f64
        }
    }

    /// Seed the static CIDI verdict for `inst_pc` in the CI region of
    /// the branch at `branch_pc`.
    pub fn set_cidi_verdict(&mut self, branch_pc: u32, inst_pc: u32, verdict: &'static str) {
        self.cidi_verdicts.insert((branch_pc, inst_pc), verdict);
    }

    /// Static CIDI verdict for `(branch_pc, inst_pc)`, if seeded.
    pub fn cidi_verdict(&self, branch_pc: u32, inst_pc: u32) -> Option<&'static str> {
        self.cidi_verdicts.get(&(branch_pc, inst_pc)).copied()
    }

    /// A definitive runtime reuse outcome for the instruction at
    /// `inst_pc` under the CI event `event`: `clean` is `true` when
    /// the saved value validated / committed unchanged, `false` when
    /// validation failed and the value had to be repaired. Scores the
    /// static verdict: CIDI must reuse clean, CIDD/clobbered must not.
    pub fn note_cidi_outcome(&mut self, event: Option<u64>, inst_pc: u32, clean: bool) {
        let Some(branch_pc) = event.and_then(|id| self.event_pc.get(&id).copied()) else {
            self.cidi_unclassified += 1;
            return;
        };
        let Some(verdict) = self.cidi_verdicts.get(&(branch_pc, inst_pc)).copied() else {
            self.cidi_unclassified += 1;
            return;
        };
        let s = self.scores.entry(branch_pc).or_default();
        s.cidi_checks += 1;
        let agree = if verdict == "cidi" { clean } else { !clean };
        if agree {
            s.cidi_agree += 1;
        } else if verdict == "cidi" {
            self.cidi_pred_failures += 1;
        } else {
            self.cidd_clean_reuses += 1;
        }
    }

    /// A commit-stage reuse repair: the decode-time checks let a value
    /// through that architectural verify rejected. The repair is *not*
    /// evidence about the static CIDI claim — the mechanism's instance
    /// pairing is already known-broken (stale generation, torn-down
    /// entry, or an incomplete replica slot), so the wrong value says
    /// nothing about whether this instruction depends on the branch.
    /// Counted separately so the exclusion is visible in the oracle.
    pub fn note_cidi_mechanism_repair(&mut self, event: Option<u64>, inst_pc: u32) {
        let attributed = event
            .and_then(|id| self.event_pc.get(&id).copied())
            .is_some_and(|bpc| self.cidi_verdicts.contains_key(&(bpc, inst_pc)));
        if attributed {
            self.cidi_mechanism_repairs += 1;
        } else {
            self.cidi_unclassified += 1;
        }
    }

    /// `(checked, agreed)` runtime dataflow-oracle totals over all
    /// branches.
    pub fn cidi_totals(&self) -> (u64, u64) {
        let t = self.totals();
        (t.cidi_checks, t.cidi_agree)
    }

    /// Runtime agreement fraction between the static CIDI verdicts and
    /// the observed reuse outcomes (1.0 when nothing was checked).
    pub fn cidi_agreement(&self) -> f64 {
        let (checked, agreed) = self.cidi_totals();
        if checked == 0 {
            1.0
        } else {
            agreed as f64 / checked as f64
        }
    }

    fn score_for(&mut self, event: Option<u64>) -> &mut BranchScore {
        match event.and_then(|id| self.event_pc.get(&id).copied()) {
            Some(pc) => self.scores.entry(pc).or_default(),
            None => &mut self.unattributed,
        }
    }

    /// A replica instance was dispatched to the engine.
    pub fn note_replica_created(&mut self, event: Option<u64>) {
        self.score_for(event).replicas_created += 1;
    }

    /// A replica instance executed.
    pub fn note_replica_executed(&mut self, event: Option<u64>) {
        self.score_for(event).replicas_executed += 1;
    }

    /// A decode-time validation consumed a replica slot.
    pub fn note_validation(&mut self, event: Option<u64>) {
        self.score_for(event).validations += 1;
    }

    /// A reused value committed; `cycles_saved` estimates the
    /// execution latency the validating instruction skipped.
    pub fn note_reuse_commit(&mut self, event: Option<u64>, cycles_saved: u64) {
        let s = self.score_for(event);
        s.reuse_commits += 1;
        s.cycles_saved += cycles_saved;
    }

    /// Fold the final per-event outcomes into the per-branch
    /// `events_reused` / `events_selected` counters. Called once from
    /// `finalize_stats`; idempotent.
    pub fn finalize(&mut self, events: &EventStats) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        for (&id, &pc) in &self.event_pc {
            let Some(outcome) = events.outcome(id) else {
                continue;
            };
            let s = self.scores.entry(pc).or_default();
            match outcome {
                EventOutcome::Reused => s.events_reused += 1,
                EventOutcome::SelectedNoReuse => s.events_selected += 1,
                EventOutcome::NotFound => {}
            }
        }
    }

    /// Number of distinct static branches profiled.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether no branch was profiled.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The score of one branch PC.
    pub fn get(&self, pc: u32) -> Option<&BranchScore> {
        self.scores.get(&pc)
    }

    /// All `(pc, score)` rows, sorted by descending misprediction
    /// count (ties broken by PC) — the order reports print in.
    pub fn sorted(&self) -> Vec<(u32, BranchScore)> {
        let mut rows: Vec<(u32, BranchScore)> = self.scores.iter().map(|(&p, &s)| (p, s)).collect();
        rows.sort_by(|a, b| b.1.mispredicts.cmp(&a.1.mispredicts).then(a.0.cmp(&b.0)));
        rows
    }

    /// Sum over every branch row (the `unattributed` bucket excluded).
    pub fn totals(&self) -> BranchScore {
        let mut t = BranchScore::default();
        for s in self.scores.values() {
            t.add(s);
        }
        t
    }

    /// Sum over every row *including* the unattributed bucket — the
    /// side that must reconcile with the global statistics.
    pub fn grand_totals(&self) -> BranchScore {
        let mut t = self.totals();
        t.add(&self.unattributed);
        t
    }

    /// The paper's headline metric: fraction of all committed
    /// mispredictions for which CI was exploited (≥ 1 reuse).
    pub fn ci_exploited_fraction(&self) -> f64 {
        let t = self.totals();
        if t.mispredicts == 0 {
            0.0
        } else {
            t.events_reused as f64 / t.mispredicts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_and_totals() {
        let mut p = BranchProf::default();
        let mut ev = EventStats::new();
        // Branch 10 mispredicts twice; one event gets a reuse.
        p.note_branch(10, true);
        p.note_branch(10, true);
        p.note_branch(10, false);
        let e0 = ev.open_event();
        p.note_event(10, e0);
        let e1 = ev.open_event();
        p.note_event(10, e1);
        ev.mark_selected(e1);
        ev.mark_reused(e1);
        p.note_replica_created(Some(e1));
        p.note_replica_created(Some(e1));
        p.note_replica_executed(Some(e1));
        p.note_validation(Some(e1));
        p.note_reuse_commit(Some(e1), 3);
        // Branch 20: clean.
        p.note_branch(20, false);
        // Eventless work spills to unattributed.
        p.note_replica_created(None);
        p.note_reuse_commit(None, 1);
        p.finalize(&ev);

        let s10 = p.get(10).copied().unwrap();
        assert_eq!(s10.executed, 3);
        assert_eq!(s10.mispredicts, 2);
        assert_eq!(s10.events, 2);
        assert_eq!(s10.events_reused, 1);
        assert_eq!(s10.events_selected, 0);
        assert_eq!(s10.replicas_created, 2);
        assert_eq!(s10.replicas_executed, 1);
        assert_eq!(s10.validations, 1);
        assert_eq!(s10.reuse_commits, 1);
        assert_eq!(s10.cycles_saved, 3);
        assert_eq!(s10.replicas_wasted(), 0);
        assert!((s10.ci_exploited_rate() - 0.5).abs() < 1e-12);

        assert_eq!(p.unattributed.replicas_created, 1);
        assert_eq!(p.unattributed.reuse_commits, 1);
        assert_eq!(p.unattributed.cycles_saved, 1);

        let t = p.totals();
        assert_eq!(t.executed, 4);
        assert_eq!(t.mispredicts, 2);
        let g = p.grand_totals();
        assert_eq!(g.reuse_commits, 2);
        assert_eq!(g.cycles_saved, 4);
        assert!((p.ci_exploited_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut p = BranchProf::default();
        let mut ev = EventStats::new();
        p.note_branch(5, true);
        let e = ev.open_event();
        p.note_event(5, e);
        ev.mark_reused(e);
        p.finalize(&ev);
        p.finalize(&ev);
        assert_eq!(p.get(5).unwrap().events_reused, 1);
    }

    #[test]
    fn sorted_ranks_by_mispredictions() {
        let mut p = BranchProf::default();
        p.note_branch(7, true);
        p.note_branch(3, true);
        p.note_branch(3, true);
        p.note_branch(9, false);
        let rows = p.sorted();
        assert_eq!(rows[0].0, 3);
        assert_eq!(rows[1].0, 7);
        assert_eq!(rows[2].0, 9);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn rcp_oracle_counters() {
        let mut p = BranchProf::default();
        p.set_static_truth(
            10,
            StaticTruth {
                rcp: Some(14),
                class: "ifthen",
                is_hammock: true,
            },
        );
        assert_eq!(p.static_truth(10).unwrap().rcp, Some(14));
        assert!(p.static_truth(11).is_none());
        p.note_rcp_check(10, true);
        p.note_rcp_check(10, true);
        p.note_rcp_check(10, false);
        let s = p.get(10).copied().unwrap();
        assert_eq!(s.rcp_checks, 3);
        assert_eq!(s.rcp_agree, 2);
        assert_eq!(p.rcp_totals(), (3, 2));
        assert!((p.rcp_agreement() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(BranchProf::default().rcp_agreement(), 1.0);
    }

    #[test]
    fn cidi_oracle_counters() {
        let mut p = BranchProf::default();
        let mut ev = EventStats::new();
        let e = ev.open_event();
        p.note_event(10, e);
        p.set_cidi_verdict(10, 14, "cidi");
        p.set_cidi_verdict(10, 15, "cidd");
        assert_eq!(p.cidi_verdict(10, 14), Some("cidi"));
        assert_eq!(p.cidi_verdict(10, 99), None);
        // CIDI + clean reuse: agree.
        p.note_cidi_outcome(Some(e), 14, true);
        // CIDI + failed validation: the headline disagreement.
        p.note_cidi_outcome(Some(e), 14, false);
        // CIDD + repair: agree. CIDD + clean: disagree.
        p.note_cidi_outcome(Some(e), 15, false);
        p.note_cidi_outcome(Some(e), 15, true);
        // No verdict for this pc, and no event at all: unclassified.
        p.note_cidi_outcome(Some(e), 99, true);
        p.note_cidi_outcome(None, 14, true);
        // Commit-stage repairs: a verdict-attributed one is excluded
        // from scoring as a mechanism repair; unattributed ones are
        // unclassified.
        p.note_cidi_mechanism_repair(Some(e), 14);
        p.note_cidi_mechanism_repair(Some(e), 99);
        p.note_cidi_mechanism_repair(None, 14);
        let s = p.get(10).copied().unwrap();
        assert_eq!(s.cidi_checks, 4);
        assert_eq!(s.cidi_agree, 2);
        assert_eq!(p.cidi_pred_failures, 1);
        assert_eq!(p.cidd_clean_reuses, 1);
        assert_eq!(p.cidi_mechanism_repairs, 1);
        assert_eq!(p.cidi_unclassified, 4);
        assert_eq!(p.cidi_totals(), (4, 2));
        assert!((p.cidi_agreement() - 0.5).abs() < 1e-12);
        assert_eq!(BranchProf::default().cidi_agreement(), 1.0);
    }

    #[test]
    fn unknown_events_spill_to_unattributed() {
        let mut p = BranchProf::default();
        // Event 42 was never opened through note_event (e.g. the map
        // entry was lost): work must not vanish.
        p.note_replica_executed(Some(42));
        assert_eq!(p.unattributed.replicas_executed, 1);
        assert_eq!(p.totals().replicas_executed, 0);
        assert_eq!(p.grand_totals().replicas_executed, 1);
    }
}
