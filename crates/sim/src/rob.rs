//! Reorder-buffer entry types and rename checkpoints.

use crate::regfile::PhysId;
use cfir_core::RenameExt;
use cfir_isa::{Inst, NUM_LOGICAL_REGS};

/// Execution state of a window entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// In the window, waiting for operands/resources.
    Dispatched,
    /// Issued to a functional unit; completes at `done_at`.
    Executing,
    /// Result produced (or reused); eligible to commit in order.
    Done,
}

/// How a reused instruction obtained its value.
#[derive(Debug, Clone, Copy)]
pub struct ReuseInfo {
    /// The value delivered without execution (valid once `pending`
    /// clears).
    pub value: u64,
    /// The replica has not finished executing yet; the validating
    /// instruction waits for the value (§2.3.4: "it will wait" in the
    /// commit stage).
    pub pending: bool,
    /// SRSMT entry index the validation consumed (`None` for ci-iw
    /// squash-reuse buffer hits).
    pub srsmt_idx: Option<usize>,
    /// Entry generation at validation time.
    pub gen: u32,
    /// Instance index consumed.
    pub replica: u32,
    /// Misprediction event this reuse is attributed to (Figure 5).
    pub event: Option<u64>,
}

/// A probe: the instruction consumed a replica slot but executes
/// normally; at issue it verifies the entry's alignment against its
/// real result, confirming the entry (or tearing it down).
#[derive(Debug, Clone, Copy)]
pub struct ProbeInfo {
    /// SRSMT entry index.
    pub srsmt_idx: usize,
    /// Entry generation at validation time.
    pub gen: u32,
    /// Instance index consumed.
    pub replica: u32,
    /// Whether the alignment verification already ran (at writeback).
    /// The probe record itself must survive until commit: it is the
    /// proof of slot ownership that recovery recounting relies on.
    pub verified: bool,
}

/// Rename checkpoint taken at every predicted branch.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Logical → physical map.
    pub rmap: [PhysId; NUM_LOGICAL_REGS],
    /// Mechanism rename extensions (stridedPC sets, V/S, Seq).
    pub ext: [RenameExt; NUM_LOGICAL_REGS],
    /// Gshare speculative history at the branch.
    pub ghist: u64,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Lifecycle id assigned at fetch (0 when lifecycle tracing is
    /// off or the entry predates enabling it).
    pub lid: u64,
    /// Dynamic sequence number (monotonic over the whole run).
    pub seq: u64,
    /// Static PC.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
    /// Pipeline state.
    pub state: RobState,
    /// Cycle at which execution finishes (valid in `Executing`).
    pub done_at: u64,
    /// Physical destination, if the instruction writes a register.
    pub new_phys: Option<PhysId>,
    /// Previous mapping of the destination (freed at commit).
    pub old_phys: Option<PhysId>,
    /// Logical destination.
    pub ldest: Option<u8>,
    /// Physical sources (post-rename).
    pub src_phys: [Option<PhysId>; 2],
    /// Predicted direction for conditional branches.
    pub pred_taken: bool,
    /// Predicted next PC (for any control instruction).
    pub pred_target: u32,
    /// Gshare history snapshot at prediction time (for training).
    pub ghist: u64,
    /// Resolved actual direction.
    pub actual_taken: bool,
    /// Resolved actual next PC.
    pub actual_target: u32,
    /// Whether the branch has resolved.
    pub resolved: bool,
    /// Rename checkpoint (branches only).
    pub checkpoint: Option<Box<Checkpoint>>,
    /// Effective address (memory instructions, once computed).
    pub addr: Option<u64>,
    /// Value this instruction produced / will store (set at execute,
    /// reuse, or store-data capture).
    pub value: u64,
    /// Reuse bookkeeping (validation instructions).
    pub reuse: Option<ReuseInfo>,
    /// Probe bookkeeping (unconfirmed validations).
    pub probe: Option<ProbeInfo>,
    /// Whether this entry occupies an LSQ slot.
    pub in_lsq: bool,
    /// Cycle the entry entered the window (latency histograms).
    pub dispatched_at: u64,
    /// Whether this load missed in the L1D (stall attribution).
    pub dcache_miss: bool,
}

impl RobEntry {
    /// Fresh entry at dispatch.
    pub fn new(seq: u64, pc: u32, inst: Inst) -> Self {
        RobEntry {
            lid: 0,
            seq,
            pc,
            inst,
            state: RobState::Dispatched,
            done_at: 0,
            new_phys: None,
            old_phys: None,
            ldest: None,
            src_phys: [None, None],
            pred_taken: false,
            pred_target: pc + 1,
            ghist: 0,
            actual_taken: false,
            actual_target: pc + 1,
            resolved: false,
            checkpoint: None,
            addr: None,
            value: 0,
            reuse: None,
            probe: None,
            in_lsq: false,
            dispatched_at: 0,
            dcache_miss: false,
        }
    }

    /// Whether this is a conditional branch entry.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.inst.is_cond_branch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_defaults() {
        let e = RobEntry::new(7, 3, Inst::Nop);
        assert_eq!(e.seq, 7);
        assert_eq!(e.state, RobState::Dispatched);
        assert_eq!(e.pred_target, 4);
        assert!(e.reuse.is_none());
        assert!(!e.is_cond_branch());
    }

    #[test]
    fn branch_entry_flag() {
        use cfir_isa::Cond;
        let e = RobEntry::new(
            0,
            0,
            Inst::Br {
                cond: Cond::Eq,
                rs1: 1,
                rs2: 2,
                target: 5,
            },
        );
        assert!(e.is_cond_branch());
    }
}
