//! # cfir-emu
//!
//! The architectural (functional) emulator for the CFIR ISA, plus the
//! paged word memory shared with the out-of-order core.
//!
//! The emulator serves two purposes:
//!
//! 1. A reference implementation of the ISA semantics.
//! 2. A *golden model* for co-simulation: the OOO core in `cfir-sim`
//!    checks every committed instruction against an emulator running in
//!    lock-step, so any speculation bug (including a wrong reuse by the
//!    CI/DV mechanism) is caught immediately.
//!
//! Semantics are total: loads of unmapped memory read 0, addresses are
//! force-aligned to 8 bytes, division by zero yields 0, so wrong-path
//! execution in the OOO core can never fault.
//!
//! ```
//! use cfir_emu::{Emulator, MemImage, StopReason};
//!
//! let prog = cfir_isa::assemble("sum", r#"
//!     li r1, 1000
//!     ld r2, 0(r1)
//!     ld r3, 8(r1)
//!     add r4, r2, r3
//!     halt
//! "#).unwrap();
//! let mut mem = MemImage::new();
//! mem.write_words(1000, &[40, 2]);
//! let mut emu = Emulator::new(mem);
//! assert_eq!(emu.run(&prog, 100), StopReason::Halted);
//! assert_eq!(emu.reg(4), 42);
//! ```

pub mod mem;

pub use mem::MemImage;

use cfir_isa::{Inst, Program, NUM_LOGICAL_REGS};

/// What one architecturally-executed instruction did. Produced by
/// [`Emulator::step`]; consumed by the co-simulation checks and by
/// trace-analysis tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// PC of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Next PC after this instruction.
    pub next_pc: u32,
    /// For control transfers: taken or not (always true for jumps).
    pub taken: bool,
    /// Destination register and the value written, if any.
    pub wrote: Option<(u8, u64)>,
    /// Effective (aligned) address for loads/stores.
    pub addr: Option<u64>,
}

/// Why [`Emulator::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `halt` retired.
    Halted,
    /// The instruction budget was exhausted.
    Budget,
    /// PC ran off the end of the program.
    FellOff,
}

/// The architectural machine: 64 registers, PC, and a word memory.
#[derive(Debug, Clone)]
pub struct Emulator {
    /// Architectural register file. `regs[0]` is kept at zero.
    pub regs: [u64; NUM_LOGICAL_REGS],
    /// Current program counter (instruction index).
    pub pc: u32,
    /// Data memory.
    pub mem: MemImage,
    /// Set once `halt` retires.
    pub halted: bool,
    /// Number of instructions retired so far.
    pub retired: u64,
}

impl Emulator {
    /// Fresh machine with zeroed registers and the given memory image.
    pub fn new(mem: MemImage) -> Self {
        Emulator {
            regs: [0; NUM_LOGICAL_REGS],
            pc: 0,
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Read a register (r0 always reads 0).
    #[inline]
    pub fn reg(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }

    /// Write a register (writes to r0 are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Execute one instruction of `prog`. Returns `None` when halted or
    /// when the PC is outside the program.
    pub fn step(&mut self, prog: &Program) -> Option<Retired> {
        if self.halted {
            return None;
        }
        let pc = self.pc;
        let inst = *prog.fetch(pc)?;
        let mut taken = false;
        let mut wrote = None;
        let mut addr = None;
        let mut next_pc = pc + 1;
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                if rd != 0 {
                    wrote = Some((rd, v));
                }
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
                if rd != 0 {
                    wrote = Some((rd, v));
                }
            }
            Inst::Fp { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                if rd != 0 {
                    wrote = Some((rd, v));
                }
            }
            Inst::Li { rd, imm } => {
                self.set_reg(rd, imm as u64);
                if rd != 0 {
                    wrote = Some((rd, imm as u64));
                }
            }
            Inst::Ld { rd, base, offset } => {
                let a = self.reg(base).wrapping_add(offset as u64);
                let v = self.mem.read(a);
                addr = Some(MemImage::align(a));
                self.set_reg(rd, v);
                if rd != 0 {
                    wrote = Some((rd, v));
                }
            }
            Inst::St { src, base, offset } => {
                let a = self.reg(base).wrapping_add(offset as u64);
                addr = Some(MemImage::align(a));
                let v = self.reg(src);
                self.mem.write(a, v);
            }
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                taken = cond.eval(self.reg(rs1), self.reg(rs2));
                if taken {
                    next_pc = target;
                }
            }
            Inst::Jmp { target } => {
                taken = true;
                next_pc = target;
            }
            Inst::Jr { rs1 } => {
                taken = true;
                next_pc = self.reg(rs1) as u32;
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }
        self.pc = next_pc;
        self.retired += 1;
        Some(Retired {
            pc,
            inst,
            next_pc,
            taken,
            wrote,
            addr,
        })
    }

    /// Run until halt, budget exhaustion, or falling off the program.
    pub fn run(&mut self, prog: &Program, max_insts: u64) -> StopReason {
        for _ in 0..max_insts {
            if self.step(prog).is_none() {
                return if self.halted {
                    StopReason::Halted
                } else {
                    StopReason::FellOff
                };
            }
            if self.halted {
                return StopReason::Halted;
            }
        }
        StopReason::Budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    fn run_src(src: &str, max: u64) -> Emulator {
        let p = assemble("t", src).unwrap();
        let mut e = Emulator::new(MemImage::new());
        e.run(&p, max);
        e
    }

    #[test]
    fn straightline_arithmetic() {
        let e = run_src("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt", 100);
        assert!(e.halted);
        assert_eq!(e.reg(3), 42);
        assert_eq!(e.retired, 4);
    }

    #[test]
    fn r0_stays_zero() {
        let e = run_src("li r0, 99\nadd r0, r0, r0\nhalt", 100);
        assert_eq!(e.reg(0), 0);
    }

    #[test]
    fn loop_sums_memory() {
        let p = assemble(
            "t",
            r#"
            li r1, 1000       ; base
            li r2, 0          ; i
            li r3, 10         ; n
            li r4, 0          ; sum
        top:
            muli r5, r2, 8
            add r5, r5, r1
            ld r6, 0(r5)
            add r4, r4, r6
            addi r2, r2, 1
            blt r2, r3, top
            halt
            "#,
        )
        .unwrap();
        let mut mem = MemImage::new();
        for i in 0..10u64 {
            mem.write(1000 + i * 8, i + 1);
        }
        let mut e = Emulator::new(mem);
        assert_eq!(e.run(&p, 10_000), StopReason::Halted);
        assert_eq!(e.reg(4), 55);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let e = run_src(
            "li r1, 5\nbeq r1, r0, 4\nli r2, 1\njmp 5\nli r2, 2\nhalt",
            100,
        );
        assert_eq!(e.reg(2), 1, "beq on non-zero must fall through");
        let e = run_src(
            "li r1, 0\nbeq r1, r0, 4\nli r2, 1\njmp 5\nli r2, 2\nhalt",
            100,
        );
        assert_eq!(e.reg(2), 2, "beq on zero must take");
    }

    #[test]
    fn jr_computed_target() {
        let e = run_src("li r1, 3\njr r1\nli r2, 1\nhalt", 100);
        assert_eq!(e.reg(2), 0, "jr skipped the li");
        assert!(e.halted);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let e = run_src(
            "li r1, 4096\nli r2, -77\nst r2, 8(r1)\nld r3, 8(r1)\nhalt",
            100,
        );
        assert_eq!(e.reg(3) as i64, -77);
    }

    #[test]
    fn unmapped_load_reads_zero() {
        let e = run_src("li r1, 123456\nld r2, 0(r1)\nhalt", 100);
        assert_eq!(e.reg(2), 0);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let p = assemble("t", "jmp 0").unwrap();
        let mut e = Emulator::new(MemImage::new());
        assert_eq!(e.run(&p, 50), StopReason::Budget);
        assert_eq!(e.retired, 50);
    }

    #[test]
    fn fell_off_end() {
        let p = assemble("t", "nop").unwrap();
        let mut e = Emulator::new(MemImage::new());
        assert_eq!(e.run(&p, 50), StopReason::FellOff);
    }

    #[test]
    fn retired_event_fields() {
        let p = assemble("t", "li r1, 1000\nld r2, 8(r1)\nbeq r2, r0, 0\nhalt").unwrap();
        let mut e = Emulator::new(MemImage::new());
        let r1 = e.step(&p).unwrap();
        assert_eq!(r1.wrote, Some((1, 1000)));
        let r2 = e.step(&p).unwrap();
        assert_eq!(r2.addr, Some(1008));
        assert_eq!(r2.wrote, Some((2, 0)));
        let r3 = e.step(&p).unwrap();
        assert!(r3.taken);
        assert_eq!(r3.next_pc, 0);
    }

    #[test]
    fn step_after_halt_is_none() {
        let p = assemble("t", "halt").unwrap();
        let mut e = Emulator::new(MemImage::new());
        assert!(e.step(&p).is_some());
        assert!(e.step(&p).is_none());
    }

    #[test]
    fn fp_pipeline_through_registers() {
        // li 3.0 bits, li 1.5 bits, fdiv -> 2.0
        let a = 3.0f64.to_bits() as i64;
        let b = 1.5f64.to_bits() as i64;
        let src = format!("li r1, {a}\nli r2, {b}\nfdiv r3, r1, r2\nhalt");
        let e = run_src(&src, 100);
        assert_eq!(f64::from_bits(e.reg(3)), 2.0);
    }
}
