//! Paged word memory.
//!
//! Data memory is byte-addressed but every access moves one 8-byte
//! word; addresses are force-aligned down to 8 bytes so that wrong-path
//! or mis-speculated accesses in the OOO core are always well defined.
//! Unmapped reads return 0. Pages are 4 KiB (512 words), allocated on
//! first write, so sparse address spaces (pointer-chasing workloads)
//! stay cheap.

use std::collections::HashMap;

/// Words per page (4 KiB pages of 8-byte words).
const PAGE_WORDS: usize = 512;
const PAGE_SHIFT: u32 = 12;
const OFFSET_MASK: u64 = (1 << PAGE_SHIFT) - 1;

/// A sparse, paged word memory.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
    /// Total words written at least once (for reporting).
    writes: u64,
}

impl MemImage {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Align a byte address down to its word.
    #[inline]
    pub fn align(addr: u64) -> u64 {
        addr & !7
    }

    /// Read the word containing `addr` (0 if unmapped).
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        let a = Self::align(addr);
        match self.pages.get(&(a >> PAGE_SHIFT)) {
            Some(p) => p[((a & OFFSET_MASK) >> 3) as usize],
            None => 0,
        }
    }

    /// Write the word containing `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let a = Self::align(addr);
        let page = self
            .pages
            .entry(a >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]));
        page[((a & OFFSET_MASK) >> 3) as usize] = value;
        self.writes += 1;
    }

    /// Bulk-initialise a slice of words starting at `base`.
    pub fn write_words(&mut self, base: u64, words: &[u64]) {
        for (i, w) in words.iter().enumerate() {
            self.write(base + (i as u64) * 8, *w);
        }
    }

    /// Read `n` words starting at `base`.
    pub fn read_words(&self, base: u64, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read(base + (i as u64) * 8)).collect()
    }

    /// Number of mapped 4-KiB pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Words per page (the unit [`export_pages`] works in).
    ///
    /// [`export_pages`]: MemImage::export_pages
    pub const PAGE_WORDS: usize = PAGE_WORDS;

    /// Export every mapped page as `(page_id, words)` sorted by page
    /// id, so serialized checkpoints are deterministic regardless of
    /// hash-map iteration order. The byte address of word `i` of page
    /// `p` is `(p << 12) + i * 8`.
    pub fn export_pages(&self) -> Vec<(u64, &[u64; PAGE_WORDS])> {
        let mut pages: Vec<(u64, &[u64; PAGE_WORDS])> =
            self.pages.iter().map(|(k, v)| (*k, &**v)).collect();
        pages.sort_unstable_by_key(|(k, _)| *k);
        pages
    }

    /// Rebuild a memory image from pages previously produced by
    /// [`export_pages`]. The write counter restarts at 0 (it is a
    /// diagnostic, not architectural state).
    ///
    /// [`export_pages`]: MemImage::export_pages
    pub fn from_pages(pages: impl IntoIterator<Item = (u64, [u64; PAGE_WORDS])>) -> Self {
        let mut m = MemImage::new();
        for (id, words) in pages {
            m.pages.insert(id, Box::new(words));
        }
        m
    }

    /// Total writes performed (diagnostic).
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = MemImage::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemImage::new();
        m.write(8192, 0xdead_beef);
        assert_eq!(m.read(8192), 0xdead_beef);
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn alignment_forced_down() {
        let mut m = MemImage::new();
        m.write(100, 7); // aligns to 96
        assert_eq!(m.read(96), 7);
        assert_eq!(m.read(103), 7);
        assert_eq!(m.read(104), 0);
        assert_eq!(MemImage::align(103), 96);
    }

    #[test]
    fn adjacent_words_do_not_alias() {
        let mut m = MemImage::new();
        m.write(0, 1);
        m.write(8, 2);
        m.write(16, 3);
        assert_eq!((m.read(0), m.read(8), m.read(16)), (1, 2, 3));
    }

    #[test]
    fn cross_page_writes() {
        let mut m = MemImage::new();
        m.write(4088, 11); // last word of page 0
        m.write(4096, 22); // first word of page 1
        assert_eq!(m.read(4088), 11);
        assert_eq!(m.read(4096), 22);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn bulk_helpers() {
        let mut m = MemImage::new();
        m.write_words(1000, &[5, 6, 7]);
        // base 1000 aligns to 1000 (already 8-aligned)
        assert_eq!(m.read_words(1000, 3), vec![5, 6, 7]);
        assert_eq!(m.write_count(), 3);
    }

    #[test]
    fn page_export_is_sorted_and_round_trips() {
        let mut m = MemImage::new();
        m.write(3 << 12, 33);
        m.write(1 << 12, 11);
        m.write(7 << 12, 77);
        let pages = m.export_pages();
        let ids: Vec<u64> = pages.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 7], "sorted by page id");
        let rebuilt = MemImage::from_pages(pages.into_iter().map(|(id, w)| (id, *w)));
        assert_eq!(rebuilt.read(3 << 12), 33);
        assert_eq!(rebuilt.read(1 << 12), 11);
        assert_eq!(rebuilt.read(7 << 12), 77);
        assert_eq!(rebuilt.page_count(), 3);
        assert_eq!(rebuilt.read(2 << 12), 0, "unmapped pages stay unmapped");
    }

    #[test]
    fn huge_addresses_work() {
        let mut m = MemImage::new();
        let a = u64::MAX - 15;
        m.write(a, 9);
        assert_eq!(m.read(a), 9);
    }
}
