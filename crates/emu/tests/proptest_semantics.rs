//! Property tests: emulator ALU semantics against direct host
//! arithmetic, and memory behaviour under random store streams.

use cfir_emu::{Emulator, MemImage};
use cfir_isa::{AluOp, Inst, Program};
use proptest::prelude::*;

fn run_one_alu(op: AluOp, a: u64, b: u64) -> u64 {
    // r1 = a; r2 = b; r3 = r1 op r2 — via li of split halves to cover
    // full 64-bit values: build with raw instructions instead.
    let prog = Program::from_insts(
        "t",
        vec![
            Inst::Li { rd: 1, imm: a as i64 },
            Inst::Li { rd: 2, imm: b as i64 },
            Inst::Alu { op, rd: 3, rs1: 1, rs2: 2 },
            Inst::Halt,
        ],
    );
    let mut e = Emulator::new(MemImage::new());
    e.run(&prog, 10);
    e.reg(3)
}

proptest! {
    #[test]
    fn alu_matches_host_semantics(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_one_alu(AluOp::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(run_one_alu(AluOp::Sub, a, b), a.wrapping_sub(b));
        prop_assert_eq!(run_one_alu(AluOp::Mul, a, b), a.wrapping_mul(b));
        prop_assert_eq!(run_one_alu(AluOp::And, a, b), a & b);
        prop_assert_eq!(run_one_alu(AluOp::Or, a, b), a | b);
        prop_assert_eq!(run_one_alu(AluOp::Xor, a, b), a ^ b);
        prop_assert_eq!(run_one_alu(AluOp::Sll, a, b), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(run_one_alu(AluOp::Slt, a, b), ((a as i64) < (b as i64)) as u64);
        let div = run_one_alu(AluOp::Div, a, b);
        if b as i64 == 0 {
            prop_assert_eq!(div, 0);
        } else {
            prop_assert_eq!(div, (a as i64).wrapping_div(b as i64) as u64);
        }
    }

    #[test]
    fn memory_is_last_writer_wins(
        writes in prop::collection::vec((0u64..512, any::<u64>()), 1..100),
    ) {
        let mut mem = MemImage::new();
        let mut model = std::collections::HashMap::new();
        for &(slot, v) in &writes {
            mem.write(slot * 8, v);
            model.insert(slot, v);
        }
        for slot in 0..512u64 {
            let expect = model.get(&slot).copied().unwrap_or(0);
            prop_assert_eq!(mem.read(slot * 8), expect, "slot {}", slot);
        }
    }

    #[test]
    fn straightline_program_is_deterministic(
        imms in prop::collection::vec(any::<i32>(), 1..32),
    ) {
        let mut insts = Vec::new();
        for (i, &imm) in imms.iter().enumerate() {
            let rd = (i % 60 + 1) as u8;
            insts.push(Inst::Li { rd, imm: imm as i64 });
            insts.push(Inst::Alu { op: AluOp::Xor, rd: 63, rs1: 63, rs2: rd });
        }
        insts.push(Inst::Halt);
        let prog = Program::from_insts("t", insts);
        let mut a = Emulator::new(MemImage::new());
        let mut b = Emulator::new(MemImage::new());
        a.run(&prog, 1_000);
        b.run(&prog, 1_000);
        prop_assert_eq!(a.regs, b.regs);
        prop_assert!(a.halted && b.halted);
    }
}
