//! Randomized tests: emulator ALU semantics against direct host
//! arithmetic, and memory behaviour under random store streams.
//!
//! Plain `#[test]`s over a seeded in-tree PRNG (`cfir_obs::Rng64`), so
//! the suite is deterministic and dependency-free. Each test runs a
//! fixed number of random cases; failures print the seed-derived case
//! inputs for reproduction.

use cfir_emu::{Emulator, MemImage};
use cfir_isa::{AluOp, Inst, Program};
use cfir_obs::Rng64;

fn run_one_alu(op: AluOp, a: u64, b: u64) -> u64 {
    // r1 = a; r2 = b; r3 = r1 op r2 — via raw instructions so full
    // 64-bit values fit.
    let prog = Program::from_insts(
        "t",
        vec![
            Inst::Li {
                rd: 1,
                imm: a as i64,
            },
            Inst::Li {
                rd: 2,
                imm: b as i64,
            },
            Inst::Alu {
                op,
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            Inst::Halt,
        ],
    );
    let mut e = Emulator::new(MemImage::new());
    e.run(&prog, 10);
    e.reg(3)
}

#[test]
fn alu_matches_host_semantics() {
    let mut rng = Rng64::seed_from_u64(0xA117);
    for _ in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(
            run_one_alu(AluOp::Add, a, b),
            a.wrapping_add(b),
            "add {a:#x} {b:#x}"
        );
        assert_eq!(
            run_one_alu(AluOp::Sub, a, b),
            a.wrapping_sub(b),
            "sub {a:#x} {b:#x}"
        );
        assert_eq!(
            run_one_alu(AluOp::Mul, a, b),
            a.wrapping_mul(b),
            "mul {a:#x} {b:#x}"
        );
        assert_eq!(run_one_alu(AluOp::And, a, b), a & b);
        assert_eq!(run_one_alu(AluOp::Or, a, b), a | b);
        assert_eq!(run_one_alu(AluOp::Xor, a, b), a ^ b);
        assert_eq!(
            run_one_alu(AluOp::Sll, a, b),
            a.wrapping_shl((b & 63) as u32)
        );
        assert_eq!(
            run_one_alu(AluOp::Slt, a, b),
            ((a as i64) < (b as i64)) as u64
        );
        let div = run_one_alu(AluOp::Div, a, b);
        if b as i64 == 0 {
            assert_eq!(div, 0);
        } else {
            assert_eq!(
                div,
                (a as i64).wrapping_div(b as i64) as u64,
                "div {a:#x} {b:#x}"
            );
        }
    }
}

#[test]
fn memory_is_last_writer_wins() {
    let mut rng = Rng64::seed_from_u64(0x3E3);
    for _ in 0..50 {
        let n = rng.gen_range(1, 100) as usize;
        let writes: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0, 512), rng.next_u64()))
            .collect();
        let mut mem = MemImage::new();
        let mut model = std::collections::HashMap::new();
        for &(slot, v) in &writes {
            mem.write(slot * 8, v);
            model.insert(slot, v);
        }
        for slot in 0..512u64 {
            let expect = model.get(&slot).copied().unwrap_or(0);
            assert_eq!(mem.read(slot * 8), expect, "slot {slot}");
        }
    }
}

#[test]
fn straightline_program_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xDE7);
    for _ in 0..50 {
        let n = rng.gen_range(1, 32) as usize;
        let mut insts = Vec::new();
        for i in 0..n {
            let rd = (i % 60 + 1) as u8;
            insts.push(Inst::Li {
                rd,
                imm: rng.next_u64() as i32 as i64,
            });
            insts.push(Inst::Alu {
                op: AluOp::Xor,
                rd: 63,
                rs1: 63,
                rs2: rd,
            });
        }
        insts.push(Inst::Halt);
        let prog = Program::from_insts("t", insts);
        let mut a = Emulator::new(MemImage::new());
        let mut b = Emulator::new(MemImage::new());
        a.run(&prog, 1_000);
        b.run(&prog, 1_000);
        assert_eq!(a.regs, b.regs);
        assert!(a.halted && b.halted);
    }
}
