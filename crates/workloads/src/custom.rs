//! Parametric workload generator — build your own hammock/stride mix.
//!
//! The named kernels in [`crate::kernels`] pin down the SpecInt-shaped
//! corners; this module exposes the underlying axes so users (and the
//! examples) can sweep them continuously:
//!
//! * **branch entropy** — probability that the hammock condition holds,
//!   from perfectly biased (predictors win) to 50/50 (the mechanism's
//!   home turf);
//! * **stride mix** — how many of the loads are strided vs hash-indexed
//!   (irregular loads defeat the vectorizer, as in `mcf`/`gcc`);
//! * **CI tail length** — how much control-independent work follows the
//!   re-convergent point;
//! * **store rate** — stores into the speculatively-loaded array
//!   exercise the §2.4.3 coherence machinery.

use crate::{Workload, WorkloadSpec};
use cfir_emu::MemImage;
use cfir_isa::{AluOp, Cond, ProgramBuilder};
use cfir_obs::Rng64;

/// Base address of the generated data array.
pub const CUSTOM_BASE: u64 = 0x40_0000;

/// Axes of the generated loop.
#[derive(Debug, Clone, Copy)]
pub struct CustomParams {
    /// Percent of iterations on which the hammock branch is taken
    /// (50 = maximally unpredictable).
    pub taken_percent: u32,
    /// Number of strided loads per iteration (0..=3).
    pub strided_loads: u32,
    /// Number of hash-indexed (non-strided) loads per iteration (0..=2).
    pub irregular_loads: u32,
    /// Control-independent ALU instructions after the join (0..=8).
    pub ci_tail: u32,
    /// One store into the loaded array every `1 << store_shift`
    /// iterations (`None` = no stores).
    pub store_shift: Option<u32>,
}

impl Default for CustomParams {
    fn default() -> Self {
        CustomParams {
            taken_percent: 50,
            strided_loads: 1,
            irregular_loads: 0,
            ci_tail: 2,
            store_shift: None,
        }
    }
}

/// Build a workload from the parameters. Register conventions follow
/// the named kernels (`r2` iteration counter, `r4` mask, `r5` base).
pub fn build(params: CustomParams, spec: WorkloadSpec) -> Workload {
    assert!(params.taken_percent <= 100);
    assert!(params.strided_loads <= 3 && params.irregular_loads <= 2);
    assert!(params.ci_tail <= 8);

    let mut rng = Rng64::seed_from_u64(spec.seed ^ 0xC057_0313);
    let mut mem = MemImage::new();
    for i in 0..spec.elems {
        // Value < taken_percent with the requested probability: store
        // uniform 0..100 so the branch tests `v < taken_percent`.
        let v: u64 = rng.gen_range(0, 100);
        mem.write(CUSTOM_BASE + i * 8, v);
    }

    let mut b = ProgramBuilder::new("custom");
    b.li(2, 0);
    b.li(3, spec.iters as i64);
    b.li(4, (spec.elems - 1) as i64);
    b.li(5, CUSTOM_BASE as i64);
    b.li(8, params.taken_percent as i64);
    // Zero the hammock-arm and CI-tail accumulators so every register
    // is written before it is read (keeps the static lint clean).
    for r in 20..=24 {
        b.li(r, 0);
    }
    let top = b.label_here();
    b.alu(AluOp::And, 1, 2, 4);
    b.alui(AluOp::Mul, 10, 1, 8);
    b.alu(AluOp::Add, 10, 10, 5);
    // Strided loads: r11, r12, r13 from consecutive offsets.
    for k in 0..params.strided_loads {
        b.ld(11 + k as u8, 10, (k as i64) * 8);
    }
    // Irregular loads: index = hash of the first loaded value.
    for k in 0..params.irregular_loads {
        b.alui(AluOp::Srl, 15, 11, 7 + k as i64);
        b.alu(AluOp::Xor, 15, 15, 11);
        b.alu(AluOp::And, 15, 15, 4);
        b.alui(AluOp::Mul, 15, 15, 8);
        b.alu(AluOp::Add, 15, 15, 5);
        b.ld(16 + k as u8, 15, 0);
    }
    // The hammock: taken iff a[i] < taken_percent.
    let else_ = b.label();
    let join = b.label();
    if params.strided_loads == 0 {
        // No load: branch on the iteration counter's hash (still
        // data-ish but register-resident).
        b.alui(AluOp::Mul, 11, 2, 0x9E37);
        b.alui(AluOp::And, 11, 11, 63);
    }
    b.br(Cond::Lt, 11, 8, else_);
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Add, 21, 21, 1);
    b.bind(join);
    // Control-independent tail, chained off the strided load.
    for k in 0..params.ci_tail {
        match k % 3 {
            0 => b.alu(AluOp::Add, 22, 22, 11),
            1 => b.alu(AluOp::Xor, 23, 23, 11),
            _ => b.alui(AluOp::Add, 24, 24, 1),
        };
    }
    // Optional coherence-hazard store two elements ahead.
    if let Some(shift) = params.store_shift {
        b.alui(AluOp::And, 25, 2, (1i64 << shift) - 1);
        let no_store = b.label();
        b.br(Cond::Ne, 25, 0, no_store);
        b.alui(AluOp::Add, 26, 2, 2);
        b.alu(AluOp::And, 26, 26, 4);
        b.alui(AluOp::Mul, 26, 26, 8);
        b.alu(AluOp::Add, 26, 26, 5);
        b.st(11, 26, 0);
        b.bind(no_store);
    }
    b.alui(AluOp::Add, 2, 2, 1);
    b.br(Cond::Lt, 2, 3, top);
    b.halt();
    Workload {
        name: "custom",
        prog: b.finish(),
        mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_emu::Emulator;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            iters: 500,
            elems: 256,
            seed: 11,
        }
    }

    #[test]
    fn default_params_halt_and_count() {
        let w = build(CustomParams::default(), spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        assert_eq!(
            e.reg(20) + e.reg(21),
            500,
            "one hammock outcome per iteration"
        );
    }

    #[test]
    fn taken_percent_controls_the_split() {
        for pct in [5u32, 50, 95] {
            let w = build(
                CustomParams {
                    taken_percent: pct,
                    ..Default::default()
                },
                spec(),
            );
            let mut e = Emulator::new(w.mem.clone());
            e.run(&w.prog, 10_000_000);
            // "else" side counts v < pct occurrences.
            let frac = e.reg(21) as f64 / 500.0;
            let expect = pct as f64 / 100.0;
            assert!(
                (frac - expect).abs() < 0.15,
                "pct={pct}: observed {frac:.2}, expected ~{expect:.2}"
            );
        }
    }

    #[test]
    fn all_load_shapes_build_and_halt() {
        for strided in 0..=3 {
            for irregular in 0..=2 {
                let p = CustomParams {
                    strided_loads: strided,
                    irregular_loads: irregular,
                    ..Default::default()
                };
                let w = build(p, spec());
                assert!(w.prog.validate().is_ok());
                let mut e = Emulator::new(w.mem.clone());
                e.run(&w.prog, 10_000_000);
                assert!(e.halted, "strided={strided} irregular={irregular}");
            }
        }
    }

    #[test]
    fn stores_write_into_the_array() {
        let w = build(
            CustomParams {
                store_shift: Some(4),
                ..Default::default()
            },
            spec(),
        );
        let stores = w.prog.insts.iter().filter(|i| i.is_store()).count();
        assert_eq!(stores, 1);
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
    }

    #[test]
    fn ci_tail_length_scales_program() {
        let short = build(
            CustomParams {
                ci_tail: 0,
                ..Default::default()
            },
            spec(),
        );
        let long = build(
            CustomParams {
                ci_tail: 8,
                ..Default::default()
            },
            spec(),
        );
        assert_eq!(long.prog.len(), short.prog.len() + 8);
    }

    #[test]
    #[should_panic]
    fn invalid_percent_rejected() {
        let _ = build(
            CustomParams {
                taken_percent: 101,
                ..Default::default()
            },
            spec(),
        );
    }
}
