//! Microbenchmarks that target one mechanism corner each.
//!
//! Unlike the SpecInt-shaped kernels, these exist to stress a single
//! design rule; the first (and so far only) resident is the §2.4.2
//! DAEC microbenchmark shared by the `exp_regs` experiment and the
//! harness job matrix.

use crate::Workload;
use cfir_isa::{AluOp, Cond, ProgramBuilder};

/// `NPHASES` independent strided-reduction loops with hard hammocks;
/// the active loop switches every `phase_len` iterations. While one
/// phase runs, the other phases' SRSMT entries sit idle holding
/// replica registers — exactly the dead associations DAEC (§2.4.2)
/// exists to reclaim.
pub fn multi_phase(phase_len: i64) -> Workload {
    const NPHASES: i64 = 16;
    let mut mem = cfir_emu::MemImage::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    for ph in 0..NPHASES as u64 {
        for i in 0..2048u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write(0x1_0000 + ph * 0x8000 + i * 8, x & 1);
        }
    }
    let mut b = ProgramBuilder::new("multi-phase");
    b.li(2, 0); // global iteration counter
    b.li(3, 1 << 30);
    b.li(4, 2047);
    b.li(9, phase_len);
    let top = b.label_here();
    b.alu(AluOp::Div, 11, 2, 9);
    b.alui(AluOp::And, 11, 11, NPHASES - 1);
    // Wrapped element index, shared by all phases.
    b.alu(AluOp::And, 1, 2, 4);
    b.alui(AluOp::Mul, 10, 1, 8);
    let done = b.label();
    let mut next = b.label();
    for ph in 0..NPHASES {
        if ph > 0 {
            b.bind(next);
            next = b.label();
        }
        b.alui(AluOp::Seq, 12, 11, ph);
        b.br(Cond::Eq, 12, 0, next);
        // This phase's own strided load (distinct PC, distinct array).
        b.li(13, 0x1_0000 + ph * 0x8000);
        b.alu(AluOp::Add, 13, 13, 10);
        b.ld(14, 13, 0);
        let els = b.label();
        let join = b.label();
        b.br(Cond::Eq, 14, 0, els);
        b.alui(AluOp::Add, 20, 20, 1);
        b.jmp(join);
        b.bind(els);
        b.alui(AluOp::Add, 21, 21, 1);
        b.bind(join);
        b.alu(AluOp::Add, 22, 22, 14);
        b.jmp(done);
    }
    b.bind(next); // unreachable fall-through
    b.bind(done);
    b.alui(AluOp::Add, 2, 2, 1);
    b.br(Cond::Lt, 2, 3, top);
    b.halt();
    Workload {
        name: "multi-phase",
        prog: b.finish(),
        mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_emu::{Emulator, StopReason};

    #[test]
    fn multi_phase_is_valid_and_deterministic() {
        let a = multi_phase(256);
        assert!(a.prog.validate().is_ok());
        let b = multi_phase(256);
        assert_eq!(a.prog.insts, b.prog.insts);
        assert_eq!(
            a.mem.read_words(0x1_0000, 16),
            b.mem.read_words(0x1_0000, 16)
        );
    }

    #[test]
    fn multi_phase_runs_functionally() {
        let w = multi_phase(64);
        let mut e = Emulator::new(w.mem.clone());
        // Bounded run: the program loops 2^30 times, so stop on budget.
        let r = e.run(&w.prog, 200_000);
        assert_eq!(r, StopReason::Budget, "must still be looping");
        assert!(e.retired >= 200_000);
    }
}
