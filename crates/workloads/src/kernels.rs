//! The twelve kernel generators.
//!
//! Shared conventions: `r1` wrapped element index, `r2` iteration
//! counter, `r3` iteration limit, `r4` index mask (`elems-1`), `r5`/`r6`
//! array base registers, `r10`+ scratch, `r20`+ accumulators. Arrays
//! live at [`ARRAY_A`], [`ARRAY_B`], [`ARRAY_C`] and results are stored
//! from [`OUT`] onward.

use crate::{Workload, WorkloadSpec};
use cfir_emu::MemImage;
use cfir_isa::{AluOp, Cond, FpOp, ProgramBuilder};
use cfir_obs::Rng64;

/// Base address of the primary data array.
pub const ARRAY_A: u64 = 0x1_0000;
/// Base address of the secondary data array.
pub const ARRAY_B: u64 = 0x10_0000;
/// Base address of the tertiary data array.
pub const ARRAY_C: u64 = 0x20_0000;
/// Base address of the output region.
pub const OUT: u64 = 0x30_0000;

fn rng_for(spec: &WorkloadSpec, salt: u64) -> Rng64 {
    Rng64::seed_from_u64(spec.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn fill_random(mem: &mut MemImage, base: u64, n: u64, rng: &mut Rng64, f: impl Fn(u64) -> u64) {
    for i in 0..n {
        let v: u64 = rng.next_u64();
        mem.write(base + i * 8, f(v));
    }
}

/// Emit the standard loop prologue. Leaves the builder just before the
/// loop head; returns nothing (registers are set by convention).
fn prologue(b: &mut ProgramBuilder, spec: &WorkloadSpec) {
    b.li(2, 0); // iteration counter
    b.li(3, spec.iters as i64);
    b.li(4, (spec.elems - 1) as i64);
    b.li(5, ARRAY_A as i64);
    b.li(6, ARRAY_B as i64);
}

/// Emit the standard loop epilogue: bump the counter and loop.
fn epilogue(b: &mut ProgramBuilder, top: cfir_isa::Label) {
    b.alui(AluOp::Add, 2, 2, 1);
    b.br(Cond::Lt, 2, 3, top);
    b.halt();
}

/// Compute `r1 = r2 & mask` and `r10 = base(r5) + r1*8`.
fn index_a(b: &mut ProgramBuilder) {
    b.alu(AluOp::And, 1, 2, 4);
    b.alui(AluOp::Mul, 10, 1, 8);
    b.alu(AluOp::Add, 10, 10, 5);
}

/// `bzip2` — the Figure 1 hammock verbatim: a 50/50 data-dependent
/// branch over a unit-strided stream, with control-independent
/// accumulation after the join. This is the mechanism's best case.
pub fn bzip2(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 1);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v & 1);

    let mut b = ProgramBuilder::new("bzip2");
    prologue(&mut b, &spec);
    b.li(20, 0); // zero count (R3 of the paper)
    b.li(21, 0); // non-zero count (R2)
    b.li(22, 0); // sum (R4)
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0); // strided load of a[i]
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Eq, 11, 0, else_); // I7: hard hammock branch
    b.alui(AluOp::Add, 21, 21, 1); // then: non-zero count
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Add, 20, 20, 1); // else: zero count
    b.bind(join);
    b.alu(AluOp::Add, 22, 22, 11); // I11: CI, depends on the strided load
    epilogue(&mut b, top);
    Workload {
        name: "bzip2",
        prog: b.finish(),
        mem,
    }
}

/// `crafty` — bit-twiddling over strided "bitboard" words with a
/// two-level nested hammock (four paths) and CI popcount-style tail.
pub fn crafty(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 2);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v);

    let mut b = ProgramBuilder::new("crafty");
    prologue(&mut b, &spec);
    for r in 20..=24 {
        b.li(r, 0);
    }
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    let l1 = b.label();
    let l2 = b.label();
    let l3 = b.label();
    let join = b.label();
    b.alui(AluOp::And, 12, 11, 1);
    b.br(Cond::Eq, 12, 0, l1);
    b.alui(AluOp::And, 13, 11, 2);
    b.br(Cond::Eq, 13, 0, l2);
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(l2);
    b.alui(AluOp::Add, 21, 21, 1);
    b.jmp(join);
    b.bind(l1);
    b.alui(AluOp::And, 14, 11, 4);
    b.br(Cond::Eq, 14, 0, l3);
    b.alui(AluOp::Add, 22, 22, 1);
    b.jmp(join);
    b.bind(l3);
    b.alui(AluOp::Add, 23, 23, 1);
    b.bind(join);
    // CI tail: mix the loaded bitboard into a running signature.
    b.alui(AluOp::Srl, 15, 11, 17);
    b.alu(AluOp::Xor, 15, 15, 11);
    b.alu(AluOp::Add, 24, 24, 15);
    epilogue(&mut b, top);
    Workload {
        name: "crafty",
        prog: b.finish(),
        mem,
    }
}

/// `eon` — FP-heavy rendering loop: strided f64 arrays, a mildly biased
/// (≈25% taken) threshold branch, CI FP accumulation after the join.
pub fn eon(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 3);
    let mut mem = MemImage::new();
    for i in 0..spec.elems {
        let f: f64 = rng.next_f64();
        mem.write(ARRAY_A + i * 8, f.to_bits());
        mem.write(ARRAY_B + i * 8, (f * 0.5 + 0.1).to_bits());
    }

    let mut b = ProgramBuilder::new("eon");
    prologue(&mut b, &spec);
    b.li(20, 0); // int accum
    b.li(21, 0.0f64.to_bits() as i64); // fp accum
    b.li(22, 0); // taken count
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0); // f64 bits, strided
    b.alui(AluOp::Mul, 12, 1, 8);
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0); // second strided stream
    b.alui(AluOp::And, 14, 11, 7); // low mantissa bits ~ uniform
    let skip = b.label();
    let join = b.label();
    b.br(Cond::Lt, 14, 0, skip); // never taken guard (easy)
    b.alui(AluOp::Slt, 15, 14, 2); // 25% chance
    b.br(Cond::Eq, 15, 0, join);
    b.alui(AluOp::Add, 22, 22, 1);
    b.bind(skip);
    b.bind(join);
    b.fp(FpOp::Fmul, 16, 11, 13); // CI FP work on the strided values
    b.fp(FpOp::Fadd, 21, 21, 16);
    b.alu(AluOp::Add, 20, 20, 14);
    epilogue(&mut b, top);
    Workload {
        name: "eon",
        prog: b.finish(),
        mem,
    }
}

/// `gap` — arithmetic groups: a long integer divide chain (12-cycle
/// unit), a moderate hammock, and a second stream at stride 16.
pub fn gap(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 4);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| {
        (v & 0xFFFF) + 1
    });
    fill_random(&mut mem, ARRAY_B, spec.elems * 2, &mut rng, |v| v & 0xFF);

    let mut b = ProgramBuilder::new("gap");
    prologue(&mut b, &spec);
    b.li(20, 0);
    b.li(21, 0);
    b.li(22, 0);
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    b.alui(AluOp::Mul, 12, 1, 16); // stride-16 stream
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0);
    b.alui(AluOp::Div, 14, 11, 7); // long-latency divide
    b.alui(AluOp::And, 15, 14, 1);
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Eq, 15, 0, else_);
    b.alu(AluOp::Add, 20, 20, 14);
    b.jmp(join);
    b.bind(else_);
    b.alu(AluOp::Add, 21, 21, 13);
    b.bind(join);
    b.alu(AluOp::Add, 22, 22, 13); // CI on the stride-16 load
    epilogue(&mut b, top);
    Workload {
        name: "gap",
        prog: b.finish(),
        mem,
    }
}

/// `gcc` — branch-dense: a 4-way ladder on random data, an irregular
/// secondary load (hash-indexed, defeats the stride predictor), and a
/// small CI tail. Low ILP, many mispredictions, little strided cover.
pub fn gcc(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 5);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v);
    fill_random(&mut mem, ARRAY_B, spec.elems, &mut rng, |v| v & 0xFF);

    let mut b = ProgramBuilder::new("gcc");
    prologue(&mut b, &spec);
    for r in 20..=25 {
        b.li(r, 0);
    }
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    // Irregular load: hash the value into an index.
    b.alui(AluOp::Srl, 12, 11, 13);
    b.alu(AluOp::Xor, 12, 12, 11);
    b.alu(AluOp::And, 12, 12, 4);
    b.alui(AluOp::Mul, 12, 12, 8);
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0); // non-strided
                     // 4-way ladder on the low bits (uniform -> hard).
    b.alui(AluOp::And, 14, 11, 3);
    let c1 = b.label();
    let c2 = b.label();
    let c3 = b.label();
    let join = b.label();
    b.alui(AluOp::Seq, 15, 14, 0);
    b.br(Cond::Ne, 15, 0, c1);
    b.alui(AluOp::Seq, 15, 14, 1);
    b.br(Cond::Ne, 15, 0, c2);
    b.alui(AluOp::Seq, 15, 14, 2);
    b.br(Cond::Ne, 15, 0, c3);
    b.alu(AluOp::Add, 23, 23, 13);
    b.jmp(join);
    b.bind(c1);
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(c2);
    b.alui(AluOp::Add, 21, 21, 2);
    b.jmp(join);
    b.bind(c3);
    b.alui(AluOp::Add, 22, 22, 3);
    b.bind(join);
    b.alu(AluOp::Add, 24, 24, 11); // CI on the strided load
    b.alu(AluOp::Xor, 25, 25, 13);
    epilogue(&mut b, top);
    Workload {
        name: "gcc",
        prog: b.finish(),
        mem,
    }
}

/// `gzip` — heavily biased branches (≈94% not taken) over a
/// unit-strided stream: the MBS keeps the mechanism mostly off, so the
/// baseline wide bus does the work.
pub fn gzip(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 6);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v);

    let mut b = ProgramBuilder::new("gzip");
    prologue(&mut b, &spec);
    b.li(20, 0);
    b.li(21, 0);
    b.li(22, 0); // sum accumulator
    b.li(23, 0); // xor accumulator
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    b.alui(AluOp::And, 12, 11, 15);
    let rare = b.label();
    let join = b.label();
    b.br(Cond::Eq, 12, 0, rare); // taken 1/16 of the time
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(rare);
    b.alui(AluOp::Add, 21, 21, 1);
    b.bind(join);
    b.alu(AluOp::Add, 22, 22, 11);
    b.alui(AluOp::Srl, 13, 11, 3);
    b.alu(AluOp::Xor, 23, 23, 13);
    epilogue(&mut b, top);
    Workload {
        name: "gzip",
        prog: b.finish(),
        mem,
    }
}

/// `mcf` — pointer chasing over a randomized singly linked list: the
/// next-node load depends on the previous one (no stride at all), and
/// the hammock branch tests the node payload. Control independence is
/// *found* but vectorization fails (no strided backward slice) — the
/// gray bucket of Figure 5.
pub fn mcf(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 7);
    let mut mem = MemImage::new();
    // Build one random cycle over the nodes, 16 bytes each:
    // node[i] = { next_ptr, payload }. The list is sized to roughly fit
    // the L2 (SPEC's mcf thrashes caches but is not a pure
    // memory-latency benchmark; a full-memory chase would drown every
    // other effect in the harmonic means).
    let n = (spec.elems / 2).max(4);
    let mut perm: Vec<u64> = (1..n).collect();
    // Fisher-Yates over the nodes after 0, forming a single cycle
    // (Sattolo's algorithm shape: chain 0 -> perm[0] -> ... -> 0).
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range_incl(0, i as u64) as usize;
        perm.swap(i, j);
    }
    let node = |i: u64| ARRAY_A + i * 16;
    let mut cur = 0u64;
    for &nx in &perm {
        mem.write(node(cur), node(nx));
        mem.write(node(cur) + 8, rng.next_u64() & 0xFFFF);
        cur = nx;
    }
    mem.write(node(cur), node(0));
    mem.write(node(cur) + 8, rng.next_u64() & 0xFFFF);

    let mut b = ProgramBuilder::new("mcf");
    prologue(&mut b, &spec);
    b.li(7, ARRAY_A as i64); // current node pointer
    b.li(20, 0);
    b.li(21, 0);
    b.li(22, 0);
    let top = b.label_here();
    b.ld(11, 7, 8); // payload (address is pointer-dependent)
    b.alui(AluOp::And, 12, 11, 1);
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Eq, 12, 0, else_); // 50/50 on payload
    b.alu(AluOp::Add, 20, 20, 11);
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Add, 21, 21, 1);
    b.bind(join);
    b.alu(AluOp::Add, 22, 22, 11); // CI but not strided-backed
    b.ld(7, 7, 0); // chase to the next node
    epilogue(&mut b, top);
    Workload {
        name: "mcf",
        prog: b.finish(),
        mem,
    }
}

/// `parser` — a perfectly learnable alternating branch plus a random
/// data branch, over a strided stream with multiplicative hash mixing.
pub fn parser(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 8);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v);

    let mut b = ProgramBuilder::new("parser");
    prologue(&mut b, &spec);
    b.li(20, 0);
    b.li(21, 0);
    b.li(22, 0);
    b.li(8, 0x9E37_79B9); // hash multiplier
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    b.alui(AluOp::And, 12, 2, 1); // alternating (easy for gshare)
    let skip1 = b.label();
    b.br(Cond::Eq, 12, 0, skip1);
    b.alui(AluOp::Add, 20, 20, 1);
    b.bind(skip1);
    b.alu(AluOp::Mul, 13, 11, 8); // hash mix
    b.alui(AluOp::Srl, 14, 13, 33);
    b.alui(AluOp::And, 15, 14, 1);
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Eq, 15, 0, else_); // hard 50/50
    b.alu(AluOp::Add, 21, 21, 14);
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Sub, 21, 21, 1);
    b.bind(join);
    b.alu(AluOp::Add, 22, 22, 11); // CI on the strided load
    epilogue(&mut b, top);
    Workload {
        name: "parser",
        prog: b.finish(),
        mem,
    }
}

/// `perlbmk` — a bytecode-style dispatch loop: a strided opcode stream
/// drives an indirect jump into a table of four fixed-size handlers.
pub fn perlbmk(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 9);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v & 3);
    fill_random(&mut mem, ARRAY_B, spec.elems, &mut rng, |v| v & 0xFFFF);

    const HANDLER_LEN: i64 = 3; // work + work + jmp back
    let mut b = ProgramBuilder::new("perlbmk");
    // Layout: jmp start; 4 handlers of HANDLER_LEN; start: prologue; loop.
    let start = b.label();
    let after = b.label();
    b.jmp(start);
    let handler_base = b.here() as i64;
    for k in 0..4u8 {
        // Each handler: distinct accumulator update, then back to join.
        b.alui(AluOp::Add, 20 + k, 20 + k, (k as i64) + 1);
        b.alu(AluOp::Add, 24, 24, 13);
        b.jmp(after);
    }
    b.bind(start);
    prologue(&mut b, &spec);
    for r in 20..=26 {
        b.li(r, 0);
    }
    b.li(9, handler_base);
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0); // opcode, strided
    b.alui(AluOp::Mul, 12, 1, 8);
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0); // operand, strided
    b.alui(AluOp::Mul, 14, 11, HANDLER_LEN);
    b.alu(AluOp::Add, 14, 14, 9);
    b.jr(14); // indirect dispatch
    b.bind(after);
    b.alu(AluOp::Add, 25, 25, 13); // CI tail after the dispatch joins
                                   // Data-dependent guard after the join (regex-match style hammock).
    b.alui(AluOp::And, 15, 13, 1);
    let no_match = b.label();
    b.br(Cond::Eq, 15, 0, no_match);
    b.alui(AluOp::Add, 26, 26, 1);
    b.bind(no_match);
    epilogue(&mut b, top);
    Workload {
        name: "perlbmk",
        prog: b.finish(),
        mem,
    }
}

/// `twolf` — placement swap loop: compares two strided arrays, stores
/// into a third, and occasionally writes *back into the first array*,
/// exercising the §2.4.3 store-coherence squash.
pub fn twolf(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 10);
    let mut mem = MemImage::new();
    fill_random(&mut mem, ARRAY_A, spec.elems, &mut rng, |v| v & 0xFFFF);
    fill_random(&mut mem, ARRAY_B, spec.elems, &mut rng, |v| v & 0xFFFF);

    let mut b = ProgramBuilder::new("twolf");
    prologue(&mut b, &spec);
    b.li(7, ARRAY_C as i64);
    b.li(20, 0);
    b.li(21, 0);
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0); // a[i]
    b.alui(AluOp::Mul, 12, 1, 8);
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0); // b[i]
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Lt, 11, 13, else_); // 50/50 compare
    b.alui(AluOp::Mul, 14, 1, 8);
    b.alu(AluOp::Add, 14, 14, 7);
    b.st(11, 14, 0); // c[i] = a[i]
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Add, 20, 20, 1);
    b.bind(join);
    b.alu(AluOp::Add, 21, 21, 13); // CI on the b-stream
                                   // Every 64th iteration, dirty a[i+2] — an element the replica
                                   // engine has typically already pre-loaded (§2.4.3's hazard).
    b.alui(AluOp::And, 15, 2, 63);
    let no_dirty = b.label();
    b.br(Cond::Ne, 15, 0, no_dirty);
    b.alui(AluOp::Add, 16, 2, 2);
    b.alu(AluOp::And, 16, 16, 4);
    b.alui(AluOp::Mul, 16, 16, 8);
    b.alu(AluOp::Add, 16, 16, 5);
    b.st(13, 16, 0);
    b.bind(no_dirty);
    epilogue(&mut b, top);
    Workload {
        name: "twolf",
        prog: b.finish(),
        mem,
    }
}

/// `vortex` — database-record filter: 4-word records scanned at stride
/// 32, a biased tag test (≈75/25), and strided stores of the selected
/// payloads to an output region.
pub fn vortex(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 11);
    let mut mem = MemImage::new();
    for i in 0..spec.elems {
        let base = ARRAY_A + i * 32;
        mem.write(base, rng.next_u64() & 3); // tag
        mem.write(base + 8, rng.next_u64() & 0xFFFF); // payload
        mem.write(base + 16, rng.next_u64());
        mem.write(base + 24, rng.next_u64());
    }

    let mut b = ProgramBuilder::new("vortex");
    prologue(&mut b, &spec);
    b.li(7, OUT as i64);
    b.li(20, 0);
    b.li(21, 0);
    let top = b.label_here();
    b.alu(AluOp::And, 1, 2, 4);
    b.alui(AluOp::Mul, 10, 1, 32); // record stride
    b.alu(AluOp::Add, 10, 10, 5);
    b.ld(11, 10, 0); // tag
    b.ld(12, 10, 8); // payload
    let keep = b.label();
    let join = b.label();
    b.br(Cond::Eq, 11, 0, keep); // 25% taken
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(keep);
    b.alui(AluOp::Mul, 13, 1, 8);
    b.alu(AluOp::Add, 13, 13, 7);
    b.st(12, 13, 0); // out[i] = payload
    b.bind(join);
    b.alu(AluOp::Add, 21, 21, 12); // CI on the payload load
    epilogue(&mut b, top);
    Workload {
        name: "vortex",
        prog: b.finish(),
        mem,
    }
}

/// `vpr` — routing-cost loop: strided FP cost arrays, a 50/50 branch on
/// cost bits, and CI accumulation of both FP and integer signatures.
pub fn vpr(spec: WorkloadSpec) -> Workload {
    let mut rng = rng_for(&spec, 12);
    let mut mem = MemImage::new();
    for i in 0..spec.elems {
        mem.write(ARRAY_A + i * 8, rng.next_f64().to_bits());
        mem.write(ARRAY_B + i * 8, (rng.next_f64() * 3.0).to_bits());
    }

    let mut b = ProgramBuilder::new("vpr");
    prologue(&mut b, &spec);
    b.li(20, 0);
    b.li(21, 0.0f64.to_bits() as i64);
    let top = b.label_here();
    index_a(&mut b);
    b.ld(11, 10, 0);
    b.alui(AluOp::Mul, 12, 1, 8);
    b.alu(AluOp::Add, 12, 12, 6);
    b.ld(13, 12, 0);
    b.alui(AluOp::And, 14, 11, 1); // mantissa bit: 50/50
    let else_ = b.label();
    let join = b.label();
    b.br(Cond::Eq, 14, 0, else_);
    b.alui(AluOp::Add, 20, 20, 1);
    b.jmp(join);
    b.bind(else_);
    b.alui(AluOp::Sub, 20, 20, 1);
    b.bind(join);
    b.fp(FpOp::Fmul, 15, 11, 13); // CI FP work on both strided loads
    b.fp(FpOp::Fadd, 21, 21, 15);
    epilogue(&mut b, top);
    Workload {
        name: "vpr",
        prog: b.finish(),
        mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_emu::Emulator;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            iters: 500,
            elems: 256,
            seed: 42,
        }
    }

    #[test]
    fn bzip2_counts_match_data() {
        let w = bzip2(spec());
        let mut zeros = 0u64;
        for i in 0..500u64 {
            if w.mem.read(ARRAY_A + (i % 256) * 8) == 0 {
                zeros += 1;
            }
        }
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        assert_eq!(e.reg(20), zeros, "zero count");
        assert_eq!(e.reg(21), 500 - zeros, "non-zero count");
    }

    #[test]
    fn crafty_counts_cover_all_paths() {
        let w = crafty(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        let total: u64 = (20..=23).map(|r| e.reg(r)).sum();
        assert_eq!(total, 500, "every iteration takes exactly one path");
        assert!((20..=23).all(|r| e.reg(r) > 0), "all four paths exercised");
    }

    #[test]
    fn gzip_branch_is_biased() {
        let w = gzip(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        let rare = e.reg(21);
        let common = e.reg(20);
        assert_eq!(rare + common, 500);
        assert!(rare < 80, "rare path must be rare: {rare}");
    }

    #[test]
    fn perlbmk_dispatch_reaches_all_handlers() {
        let w = perlbmk(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        let total: u64 = (0..4u64).map(|k| e.reg(20 + k as u8) / (k + 1)).sum();
        assert_eq!(total, 500, "each iteration runs exactly one handler");
    }

    #[test]
    fn twolf_writes_output_array() {
        let w = twolf(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        let wrote_c = (0..256).any(|i| e.mem.read(ARRAY_C + i * 8) != 0);
        assert!(wrote_c, "twolf must store into ARRAY_C");
    }

    #[test]
    fn vortex_filters_records() {
        let w = vortex(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        let kept = (0..256).filter(|&i| e.mem.read(OUT + i * 8) != 0).count();
        assert!(kept > 10, "some records must pass the filter: {kept}");
        assert!(e.reg(20) > 100, "most records are rejected");
    }

    #[test]
    fn vpr_accumulates_fp() {
        let w = vpr(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        let acc = f64::from_bits(e.reg(21));
        assert!(acc.is_finite() && acc > 0.0, "fp accumulator = {acc}");
    }

    #[test]
    fn eon_fp_work_is_finite() {
        let w = eon(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        let acc = f64::from_bits(e.reg(21));
        assert!(acc.is_finite() && acc > 0.0);
    }

    #[test]
    fn mcf_chase_visits_every_node() {
        let w = mcf(spec());
        let nodes = 256 / 2; // elems/2 nodes (see the kernel's sizing note)
        let mut p = ARRAY_A;
        let mut count = 0;
        loop {
            p = w.mem.read(p);
            count += 1;
            if p == ARRAY_A {
                break;
            }
            assert!(count <= nodes, "cycle longer than the node count");
        }
        assert_eq!(count, nodes, "the list must be one full cycle");
    }

    #[test]
    fn gap_divides_without_trapping() {
        let w = gap(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        assert!(e.reg(22) > 0);
    }

    #[test]
    fn parser_alternating_counts_half() {
        let w = parser(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert_eq!(e.reg(20), 250, "alternating branch fires every other iter");
    }

    #[test]
    fn gcc_ladder_covers_paths() {
        let w = gcc(spec());
        let mut e = Emulator::new(w.mem.clone());
        e.run(&w.prog, 10_000_000);
        assert!(e.halted);
        // At least three of the four ladder outcomes must be hit.
        let hit = (20..=23).filter(|&r| e.reg(r) != 0).count();
        assert!(hit >= 3, "ladder outcomes hit: {hit}");
    }
}
