//! # cfir-workloads
//!
//! Synthetic stand-ins for the SpecInt2000 suite the paper evaluates.
//! Each kernel is named after the benchmark whose *branch and memory
//! behaviour* it mimics — the evaluation axes that matter for the CI
//! mechanism are (a) how mispredictable the hammock branches are,
//! (b) whether the control-independent work after the re-convergent
//! point depends on strided loads, and (c) how much of the memory
//! traffic is strided at all:
//!
//! | kernel   | branch behaviour            | memory behaviour            |
//! |----------|-----------------------------|-----------------------------|
//! | bzip2    | 50/50 data-dependent hammock| unit-strided byte stream    |
//! | crafty   | nested 2-level hammocks     | strided bitboard tables     |
//! | eon      | mildly biased FP threshold  | strided FP arrays           |
//! | gap      | moderate hammock + div chain| two strides (8 and 16)      |
//! | gcc      | deep 4-way branch ladders   | mixed strided/irregular     |
//! | gzip     | 90/10 biased branches       | unit-strided stream         |
//! | mcf      | hard branch on pointer data | pointer chasing (no stride) |
//! | parser   | alternating + random mix    | strided with hash mixing    |
//! | perlbmk  | indirect jumps (jump table) | strided opcode stream       |
//! | twolf    | 50/50 compare-and-swap      | two strided arrays + stores |
//! | vortex   | biased record filter        | strided records, strided stores |
//! | vpr      | random cost threshold (FP)  | strided cost arrays         |
//!
//! All kernels loop over power-of-two arrays with wrap-around indexing
//! and halt after a configurable iteration count, so the same program
//! works for quick functional tests (small `iters`) and for the
//! benchmark harness (large `iters`, run bounded by `max_insts`).

pub mod custom;
pub mod kernels;
pub mod micro;

use cfir_emu::MemImage;
use cfir_isa::Program;

/// The benchmark names, in the paper's figure order.
pub const NAMES: [&str; 12] = [
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perlbmk", "twolf", "vortex",
    "vpr",
];

/// Parameters for building one workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Outer-loop iterations before `halt`.
    pub iters: u64,
    /// Elements per data array (power of two).
    pub elems: u64,
    /// RNG seed for the data (and layout decisions).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        // Large enough that harness runs are bounded by `max_insts`,
        // small enough that the data fits comfortably in memory.
        WorkloadSpec {
            iters: 1 << 30,
            elems: 1 << 14,
            seed: 0xC0FFEE,
        }
    }
}

/// A ready-to-simulate workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name.
    pub name: &'static str,
    /// The program.
    pub prog: Program,
    /// Initial data memory.
    pub mem: MemImage,
}

/// Build one workload by name.
pub fn by_name(name: &str, spec: WorkloadSpec) -> Option<Workload> {
    let f = match name {
        "bzip2" => kernels::bzip2,
        "crafty" => kernels::crafty,
        "eon" => kernels::eon,
        "gap" => kernels::gap,
        "gcc" => kernels::gcc,
        "gzip" => kernels::gzip,
        "mcf" => kernels::mcf,
        "parser" => kernels::parser,
        "perlbmk" => kernels::perlbmk,
        "twolf" => kernels::twolf,
        "vortex" => kernels::vortex,
        "vpr" => kernels::vpr,
        _ => return None,
    };
    Some(f(spec))
}

/// Build the whole suite in figure order.
pub fn suite(spec: WorkloadSpec) -> Vec<Workload> {
    NAMES
        .iter()
        .map(|n| by_name(n, spec).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_emu::{Emulator, StopReason};

    fn small() -> WorkloadSpec {
        WorkloadSpec {
            iters: 200,
            elems: 256,
            seed: 7,
        }
    }

    #[test]
    fn all_names_build() {
        for n in NAMES {
            let w = by_name(n, small()).unwrap();
            assert_eq!(w.name, n);
            assert!(w.prog.validate().is_ok(), "{n}: invalid targets");
            assert!(!w.prog.is_empty());
        }
    }

    #[test]
    fn suite_has_twelve_in_order() {
        let s = suite(small());
        assert_eq!(s.len(), 12);
        for (w, n) in s.iter().zip(NAMES) {
            assert_eq!(w.name, n);
        }
    }

    #[test]
    fn every_kernel_halts_functionally() {
        for n in NAMES {
            let w = by_name(n, small()).unwrap();
            let mut e = Emulator::new(w.mem.clone());
            let r = e.run(&w.prog, 5_000_000);
            assert_eq!(r, StopReason::Halted, "{n} must halt, got {r:?}");
            assert!(e.retired > 200, "{n} did almost no work");
        }
    }

    #[test]
    fn kernels_have_conditional_branches_and_loads() {
        for n in NAMES {
            let w = by_name(n, small()).unwrap();
            let branches = w.prog.insts.iter().filter(|i| i.is_cond_branch()).count();
            let loads = w.prog.insts.iter().filter(|i| i.is_load()).count();
            assert!(branches >= 2, "{n}: needs branches");
            assert!(loads >= 1, "{n}: needs loads");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = by_name("gcc", small()).unwrap();
        let b = by_name("gcc", small()).unwrap();
        assert_eq!(a.prog.insts, b.prog.insts);
        assert_eq!(
            a.mem.read_words(kernels::ARRAY_A, 16),
            b.mem.read_words(kernels::ARRAY_A, 16)
        );
    }

    #[test]
    fn different_seeds_change_data() {
        let a = by_name("bzip2", WorkloadSpec { seed: 1, ..small() }).unwrap();
        let b = by_name("bzip2", WorkloadSpec { seed: 2, ..small() }).unwrap();
        assert_ne!(
            a.mem.read_words(kernels::ARRAY_A, 64),
            b.mem.read_words(kernels::ARRAY_A, 64)
        );
    }

    #[test]
    fn mcf_is_a_pointer_chase() {
        // The mcf kernel's list nodes must form one long cycle so the
        // chase never degenerates into a stride.
        let w = by_name("mcf", small()).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut p = kernels::ARRAY_A;
        for _ in 0..(256 / 2) {
            assert!(seen.insert(p), "list revisits a node early");
            p = w.mem.read(p);
        }
    }
}
