//! Verify each kernel's *documented* branch and memory character by
//! measuring it on the functional emulator — the table in the crate
//! docs is a contract, not an aspiration.

use cfir_emu::Emulator;
use cfir_workloads::{by_name, WorkloadSpec};
use std::collections::HashMap;

struct Character {
    /// Per static branch: (taken, total), keyed by pc.
    branches: HashMap<u32, (u64, u64)>,
    /// Distinct load addresses in order, keyed by pc.
    load_strides: HashMap<u32, Vec<u64>>,
}

fn measure(name: &str) -> Character {
    let w = by_name(
        name,
        WorkloadSpec {
            iters: 2000,
            elems: 1024,
            seed: 0x77,
        },
    )
    .unwrap();
    let mut emu = Emulator::new(w.mem.clone());
    let mut ch = Character {
        branches: HashMap::new(),
        load_strides: HashMap::new(),
    };
    while let Some(r) = emu.step(&w.prog) {
        if r.inst.is_cond_branch() {
            let e = ch.branches.entry(r.pc).or_insert((0, 0));
            e.0 += r.taken as u64;
            e.1 += 1;
        }
        if r.inst.is_load() {
            if let Some(a) = r.addr {
                let v = ch.load_strides.entry(r.pc).or_default();
                if v.len() < 64 {
                    v.push(a);
                }
            }
        }
        if emu.halted {
            break;
        }
    }
    ch
}

/// Taken rate of the most-executed *non-loop* branch (the hammock).
fn hammock_rate(ch: &Character) -> f64 {
    // The loop branch has the highest taken rate and executes every
    // iteration; hammocks execute as often but with mixed outcomes.
    let (taken, total) = ch
        .branches
        .values()
        .filter(|(t, n)| *n >= 500 && (*t as f64) < 0.98 * *n as f64)
        .max_by_key(|(_, n)| *n)
        .copied()
        .expect("a data-dependent branch must exist");
    taken as f64 / total as f64
}

fn is_strided(addrs: &[u64]) -> bool {
    if addrs.len() < 8 {
        return false;
    }
    let stride = addrs[1].wrapping_sub(addrs[0]);
    addrs
        .windows(2)
        .take(32)
        .all(|w| w[1].wrapping_sub(w[0]) == stride)
}

#[test]
fn bzip2_hammock_is_balanced() {
    let ch = measure("bzip2");
    let r = hammock_rate(&ch);
    assert!(
        (0.35..=0.65).contains(&r),
        "bzip2 hammock taken rate {r:.2}"
    );
}

#[test]
fn gzip_branch_is_heavily_biased() {
    let ch = measure("gzip");
    // Look at *all* hammock-class branches: the common path dominates.
    let (mut best_rate, mut best_n) = (0.5, 0);
    for &(t, n) in ch.branches.values() {
        if n >= 500 {
            let r = t as f64 / n as f64;
            let bias = r.max(1.0 - r);
            if n > best_n && bias > 0.8 {
                best_rate = r;
                best_n = n;
            }
        }
    }
    assert!(best_n > 0, "gzip must have a biased high-frequency branch");
    let bias = best_rate.max(1.0 - best_rate);
    assert!(bias > 0.85, "gzip bias {bias:.2}");
}

#[test]
fn parser_has_a_perfect_alternator() {
    let ch = measure("parser");
    // One branch alternates exactly: taken rate 0.5 with zero variance
    // is hard to test directly; check a branch sits in [0.49, 0.51].
    let close = ch
        .branches
        .values()
        .filter(|(_, n)| *n >= 1000)
        .any(|&(t, n)| {
            let r = t as f64 / n as f64;
            (r - 0.5).abs() < 0.01
        });
    assert!(close, "parser's iteration-parity branch alternates");
}

#[test]
fn mcf_loads_never_stride() {
    let ch = measure("mcf");
    for (pc, addrs) in &ch.load_strides {
        assert!(
            !is_strided(addrs),
            "mcf load at pc {pc} must not be strided (pointer chase)"
        );
    }
}

#[test]
fn bzip2_and_gzip_loads_stride() {
    for name in ["bzip2", "gzip"] {
        let ch = measure(name);
        let any_strided = ch.load_strides.values().any(|a| is_strided(a));
        assert!(any_strided, "{name}: the stream load must be strided");
    }
}

#[test]
fn vortex_records_stride_by_32() {
    let ch = measure("vortex");
    let strided32 = ch
        .load_strides
        .values()
        .any(|a| a.len() >= 8 && a.windows(2).take(16).all(|w| w[1].wrapping_sub(w[0]) == 32));
    assert!(strided32, "vortex records are 32 bytes apart");
}

#[test]
fn crafty_ladder_visits_multiple_outcomes() {
    let ch = measure("crafty");
    // At least two mixed-outcome branches (the nested hammock levels).
    let mixed = ch
        .branches
        .values()
        .filter(|&&(t, n)| n >= 500 && t > n / 10 && t < n * 9 / 10)
        .count();
    assert!(mixed >= 2, "crafty nested hammocks: {mixed} mixed branches");
}

#[test]
fn every_kernel_loops_mostly_taken() {
    for name in cfir_workloads::NAMES {
        let ch = measure(name);
        let loopish = ch
            .branches
            .values()
            .any(|&(t, n)| n >= 1000 && t as f64 > 0.95 * n as f64);
        assert!(loopish, "{name}: a loop-closing branch must dominate");
    }
}
