//! Every shipped kernel must pass the static lint pass: no unreachable
//! blocks, no fallthrough off the end of the program, no out-of-range
//! branch targets, and no register read before it is written.
//!
//! This is the satellite gate from the cfir-analyze issue: kernels that
//! trip a lint get *fixed*, not suppressed.

use cfir_workloads::{by_name, custom, WorkloadSpec, NAMES};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        iters: 64,
        elems: 256,
        seed: 7,
    }
}

#[test]
fn all_named_kernels_are_lint_clean() {
    for name in NAMES {
        let w = by_name(name, spec()).expect(name);
        let a = cfir_analyze::analyze(&w.prog);
        assert!(
            a.lints.is_empty(),
            "{name}: {:?}",
            a.lints.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn custom_default_is_lint_clean() {
    let w = custom::build(custom::CustomParams::default(), spec());
    let a = cfir_analyze::analyze(&w.prog);
    assert!(
        a.lints.is_empty(),
        "custom: {:?}",
        a.lints.iter().map(|l| l.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn custom_store_variant_is_lint_clean() {
    let w = custom::build(
        custom::CustomParams {
            store_shift: Some(3),
            ..Default::default()
        },
        spec(),
    );
    let a = cfir_analyze::analyze(&w.prog);
    assert!(
        a.lints.is_empty(),
        "custom+store: {:?}",
        a.lints.iter().map(|l| l.to_string()).collect::<Vec<_>>()
    );
}
