//! Property tests: assembler/disassembler round-trips for arbitrary
//! instructions, and emulator semantics against direct evaluation.

use cfir_isa::{assemble, disasm::disasm, AluOp, Cond, FpOp, Inst, Program};
use proptest::prelude::*;

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Seq),
        Just(AluOp::Sne),
        Just(AluOp::Sge),
    ]
}

fn any_fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![Just(FpOp::Fadd), Just(FpOp::Fsub), Just(FpOp::Fmul), Just(FpOp::Fdiv)]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Le),
        Just(Cond::Gt),
    ]
}

fn reg() -> impl Strategy<Value = u8> {
    0u8..64
}

/// Any instruction whose direct targets stay inside a `len`-long
/// program.
fn any_inst(len: u32) -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (any_alu_op(), reg(), reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
            Inst::AluImm { op, rd, rs1, imm: imm as i64 }
        }),
        (any_fp_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Fp {
            op,
            rd,
            rs1,
            rs2
        }),
        (reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::Li { rd, imm: imm as i64 }),
        (reg(), reg(), -1024i64..1024).prop_map(|(rd, base, offset)| Inst::Ld {
            rd,
            base,
            offset
        }),
        (reg(), reg(), -1024i64..1024).prop_map(|(src, base, offset)| Inst::St {
            src,
            base,
            offset
        }),
        (any_cond(), reg(), reg(), 0..len).prop_map(|(cond, rs1, rs2, target)| Inst::Br {
            cond,
            rs1,
            rs2,
            target
        }),
        (0..len).prop_map(|target| Inst::Jmp { target }),
        reg().prop_map(|rs1| Inst::Jr { rs1 }),
        Just(Inst::Nop),
        Just(Inst::Halt),
    ]
}

proptest! {
    #[test]
    fn disasm_assemble_roundtrip(insts in prop::collection::vec(any_inst(64), 1..64)) {
        // Pad to 64 so all branch targets are valid.
        let mut insts = insts;
        while insts.len() < 64 {
            insts.push(Inst::Nop);
        }
        let text: String = insts.iter().map(|i| disasm(i) + "\n").collect();
        let p = assemble("rt", &text).unwrap();
        prop_assert_eq!(p.insts, insts);
    }

    #[test]
    fn operand_helpers_are_consistent(inst in any_inst(16)) {
        // dest() only reports writable architectural state.
        if let Some(d) = inst.dest() {
            prop_assert_ne!(d, 0, "r0 is never a reported destination");
        }
        // Control classification is mutually consistent.
        if inst.is_cond_branch() {
            prop_assert!(inst.is_control());
            prop_assert!(inst.static_target().is_some());
        }
        if inst.is_uncond_direct() {
            prop_assert!(inst.is_control());
        }
        // Latency exists for everything but loads.
        if inst.is_load() {
            prop_assert!(inst.class().latency().is_none());
        } else {
            prop_assert!(inst.class().latency().is_some());
        }
    }

    #[test]
    fn listing_parses_back(insts in prop::collection::vec(any_inst(32), 1..32)) {
        let mut insts = insts;
        while insts.len() < 32 {
            insts.push(Inst::Nop);
        }
        let p = Program::from_insts("t", insts);
        // The listing prefixes PCs; strip them and re-assemble.
        let stripped: String = p
            .listing()
            .lines()
            .map(|l| l.split_once(": ").unwrap().1.to_string() + "\n")
            .collect();
        let p2 = assemble("t", &stripped).unwrap();
        prop_assert_eq!(p.insts, p2.insts);
    }
}
