//! Randomized tests: assembler/disassembler round-trips for arbitrary
//! instructions, and operand-helper consistency. Seeded `Rng64` keeps
//! the suite deterministic with no external dependencies.

use cfir_isa::{assemble, disasm::disasm, AluOp, Cond, FpOp, Inst, Program};
use cfir_obs::Rng64;

const ALU_OPS: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Seq,
    AluOp::Sne,
    AluOp::Sge,
];
const FP_OPS: [FpOp; 4] = [FpOp::Fadd, FpOp::Fsub, FpOp::Fmul, FpOp::Fdiv];
const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt];

fn reg(rng: &mut Rng64) -> u8 {
    rng.gen_range(0, 64) as u8
}

/// Any instruction whose direct targets stay inside a `len`-long
/// program.
fn any_inst(rng: &mut Rng64, len: u32) -> Inst {
    match rng.gen_range(0, 11) {
        0 => Inst::Alu {
            op: ALU_OPS[rng.gen_range(0, 16) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        1 => Inst::AluImm {
            op: ALU_OPS[rng.gen_range(0, 16) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.next_u64() as i32 as i64,
        },
        2 => Inst::Fp {
            op: FP_OPS[rng.gen_range(0, 4) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        3 => Inst::Li {
            rd: reg(rng),
            imm: rng.next_u64() as i32 as i64,
        },
        4 => Inst::Ld {
            rd: reg(rng),
            base: reg(rng),
            offset: rng.gen_range(0, 2048) as i64 - 1024,
        },
        5 => Inst::St {
            src: reg(rng),
            base: reg(rng),
            offset: rng.gen_range(0, 2048) as i64 - 1024,
        },
        6 => Inst::Br {
            cond: CONDS[rng.gen_range(0, 6) as usize],
            rs1: reg(rng),
            rs2: reg(rng),
            target: rng.gen_range(0, len as u64) as u32,
        },
        7 => Inst::Jmp {
            target: rng.gen_range(0, len as u64) as u32,
        },
        8 => Inst::Jr { rs1: reg(rng) },
        9 => Inst::Nop,
        _ => Inst::Halt,
    }
}

#[test]
fn disasm_assemble_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x150);
    for _ in 0..100 {
        let n = rng.gen_range(1, 64) as usize;
        let mut insts: Vec<Inst> = (0..n).map(|_| any_inst(&mut rng, 64)).collect();
        // Pad to 64 so all branch targets are valid.
        while insts.len() < 64 {
            insts.push(Inst::Nop);
        }
        let text: String = insts.iter().map(|i| disasm(i) + "\n").collect();
        let p = assemble("rt", &text).unwrap();
        assert_eq!(p.insts, insts);
    }
}

#[test]
fn operand_helpers_are_consistent() {
    let mut rng = Rng64::seed_from_u64(0x0b5);
    for _ in 0..500 {
        let inst = any_inst(&mut rng, 16);
        // dest() only reports writable architectural state.
        if let Some(d) = inst.dest() {
            assert_ne!(d, 0, "r0 is never a reported destination: {inst}");
        }
        // Control classification is mutually consistent.
        if inst.is_cond_branch() {
            assert!(inst.is_control());
            assert!(inst.static_target().is_some());
        }
        if inst.is_uncond_direct() {
            assert!(inst.is_control());
        }
        // Latency exists for everything but loads.
        if inst.is_load() {
            assert!(inst.class().latency().is_none());
        } else {
            assert!(inst.class().latency().is_some(), "{inst}");
        }
    }
}

#[test]
fn listing_parses_back() {
    let mut rng = Rng64::seed_from_u64(0x715);
    for _ in 0..100 {
        let n = rng.gen_range(1, 32) as usize;
        let mut insts: Vec<Inst> = (0..n).map(|_| any_inst(&mut rng, 32)).collect();
        while insts.len() < 32 {
            insts.push(Inst::Nop);
        }
        let p = Program::from_insts("t", insts);
        // The listing prefixes PCs; strip them and re-assemble.
        let stripped: String = p
            .listing()
            .lines()
            .map(|l| l.split_once(": ").unwrap().1.to_string() + "\n")
            .collect();
        let p2 = assemble("t", &stripped).unwrap();
        assert_eq!(p.insts, p2.insts);
    }
}
