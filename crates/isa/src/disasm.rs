//! Disassembler: renders instructions in the same syntax the assembler
//! accepts, so `assemble(disasm(p))` round-trips (labels become absolute
//! numeric targets, which the assembler also accepts).

use crate::inst::{AluOp, Cond, FpOp, Inst};

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Seq => "seq",
        AluOp::Sne => "sne",
        AluOp::Sge => "sge",
    }
}

fn fp_mnemonic(op: FpOp) -> &'static str {
    match op {
        FpOp::Fadd => "fadd",
        FpOp::Fsub => "fsub",
        FpOp::Fmul => "fmul",
        FpOp::Fdiv => "fdiv",
    }
}

fn br_mnemonic(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
        Cond::Le => "ble",
        Cond::Gt => "bgt",
    }
}

/// Render one instruction as assembler text.
pub fn disasm(inst: &Inst) -> String {
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            format!("{} r{rd}, r{rs1}, r{rs2}", alu_mnemonic(op))
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            format!("{}i r{rd}, r{rs1}, {imm}", alu_mnemonic(op))
        }
        Inst::Fp { op, rd, rs1, rs2 } => {
            format!("{} r{rd}, r{rs1}, r{rs2}", fp_mnemonic(op))
        }
        Inst::Li { rd, imm } => format!("li r{rd}, {imm}"),
        Inst::Ld { rd, base, offset } => format!("ld r{rd}, {offset}(r{base})"),
        Inst::St { src, base, offset } => format!("st r{src}, {offset}(r{base})"),
        Inst::Br {
            cond,
            rs1,
            rs2,
            target,
        } => {
            format!("{} r{rs1}, r{rs2}, {target}", br_mnemonic(cond))
        }
        Inst::Jmp { target } => format!("jmp {target}"),
        Inst::Jr { rs1 } => format!("jr r{rs1}"),
        Inst::Halt => "halt".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(
            disasm(&Inst::Alu {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3
            }),
            "add r1, r2, r3"
        );
        assert_eq!(
            disasm(&Inst::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                imm: -4
            }),
            "addi r1, r2, -4"
        );
        assert_eq!(
            disasm(&Inst::Ld {
                rd: 9,
                base: 8,
                offset: 16
            }),
            "ld r9, 16(r8)"
        );
        assert_eq!(
            disasm(&Inst::St {
                src: 9,
                base: 8,
                offset: -8
            }),
            "st r9, -8(r8)"
        );
        assert_eq!(
            disasm(&Inst::Br {
                cond: Cond::Le,
                rs1: 1,
                rs2: 2,
                target: 7
            }),
            "ble r1, r2, 7"
        );
        assert_eq!(disasm(&Inst::Jmp { target: 0 }), "jmp 0");
        assert_eq!(disasm(&Inst::Jr { rs1: 3 }), "jr r3");
        assert_eq!(disasm(&Inst::Li { rd: 2, imm: 100 }), "li r2, 100");
        assert_eq!(
            disasm(&Inst::Fp {
                op: FpOp::Fmul,
                rd: 1,
                rs1: 1,
                rs2: 1
            }),
            "fmul r1, r1, r1"
        );
        assert_eq!(disasm(&Inst::Halt), "halt");
        assert_eq!(disasm(&Inst::Nop), "nop");
    }
}
