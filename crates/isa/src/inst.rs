//! Instruction definitions and classification helpers.

use core::fmt;

/// A logical register identifier (`r0`..`r63`). `r0` reads as zero and
/// writes to it are discarded.
pub type Reg = u8;

/// Integer ALU operation. `Slt`/`Sltu`/`Seq`/`Sne`/`Sge` produce 0/1,
/// which together with conditional branches gives the compare idioms the
/// workloads need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Seq,
    Sne,
    Sge,
}

impl AluOp {
    /// Evaluate the operation on two 64-bit values (two's complement).
    /// Division by zero yields 0, matching the emulator's trap-free
    /// semantics (SimpleScalar's fast mode behaves comparably).
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u64
                }
            }
            AluOp::Rem => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => (sa.wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Slt => (sa < sb) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Seq => (a == b) as u64,
            AluOp::Sne => (a != b) as u64,
            AluOp::Sge => (sa >= sb) as u64,
        }
    }

    /// `true` for multiply (2-cycle FU per Table 1 of the paper).
    #[inline]
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul)
    }

    /// `true` for divide/remainder (12-cycle FU per Table 1).
    #[inline]
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }
}

/// Floating-point operation over `f64` values stored bit-for-bit in the
/// 64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
}

impl FpOp {
    /// Evaluate on raw register bits (interpreted as `f64`).
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        let r = match self {
            FpOp::Fadd => fa + fb,
            FpOp::Fsub => fa - fb,
            FpOp::Fmul => fa * fb,
            FpOp::Fdiv => fa / fb,
        };
        r.to_bits()
    }

    /// `true` for the long-latency mul/div class (Table 1: FP mult/div unit).
    #[inline]
    pub fn is_muldiv(self) -> bool {
        matches!(self, FpOp::Fmul | FpOp::Fdiv)
    }
}

/// Branch condition comparing `rs1` against `rs2` as signed integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl Cond {
    /// Evaluate the condition on two register values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Ge => sa >= sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
        }
    }
}

/// Functional-unit class an instruction executes on, mirroring Table 1
/// of the paper (6 simple int, 3 int mul/div, 4 simple FP, 2 FP mul/div,
/// load/store units tied to the D-cache ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer op, branches and jumps. Latency 1.
    IntAlu,
    /// Integer multiply. Latency 2.
    IntMul,
    /// Integer divide. Latency 12.
    IntDiv,
    /// Simple FP. Latency 2.
    FpAlu,
    /// FP multiply. Latency 4.
    FpMul,
    /// FP divide. Latency 14.
    FpDiv,
    /// Load (latency set by the cache hierarchy).
    Load,
    /// Store address generation. Latency 1; data written at commit.
    Store,
}

impl FuClass {
    /// Fixed execution latency; `None` for loads (cache-determined).
    #[inline]
    pub fn latency(self) -> Option<u32> {
        match self {
            FuClass::IntAlu | FuClass::Store => Some(1),
            FuClass::IntMul => Some(2),
            FuClass::IntDiv => Some(12),
            FuClass::FpAlu => Some(2),
            FuClass::FpMul => Some(4),
            FuClass::FpDiv => Some(14),
            FuClass::Load => None,
        }
    }
}

/// One architectural instruction. Branch/jump targets are instruction
/// indices into the owning [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = rs1 <op> rs2`
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm`
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    /// `rd = rs1 <op> rs2` over f64 bits
    Fp {
        op: FpOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `rd = imm` (64-bit immediate load)
    Li { rd: Reg, imm: i64 },
    /// `rd = mem[rs(base) + offset]` (8-byte word)
    Ld { rd: Reg, base: Reg, offset: i64 },
    /// `mem[rs(base) + offset] = src`
    St { src: Reg, base: Reg, offset: i64 },
    /// Conditional branch to `target` when `cond(rs1, rs2)`.
    Br {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// Unconditional direct jump.
    Jmp { target: u32 },
    /// Unconditional indirect jump to the instruction index in `rs1`.
    Jr { rs1: Reg },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Destination logical register, if any (writes to `r0` count as no
    /// destination: they are architecturally discarded).
    #[inline]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Fp { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::Ld { rd, .. } => rd,
            _ => return None,
        };
        if rd == 0 {
            None
        } else {
            Some(rd)
        }
    }

    /// Source logical registers (up to two). Reads of `r0` are reported —
    /// rename must map them to the always-ready zero register.
    #[inline]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. } | Inst::Fp { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluImm { rs1, .. } => [Some(rs1), None],
            Inst::Li { .. } => [None, None],
            Inst::Ld { base, .. } => [Some(base), None],
            Inst::St { src, base, .. } => [Some(base), Some(src)],
            Inst::Br { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Jmp { .. } | Inst::Halt | Inst::Nop => [None, None],
            Inst::Jr { rs1 } => [Some(rs1), None],
        }
    }

    /// Functional-unit class.
    #[inline]
    pub fn class(&self) -> FuClass {
        match *self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => {
                if op.is_div() {
                    FuClass::IntDiv
                } else if op.is_mul() {
                    FuClass::IntMul
                } else {
                    FuClass::IntAlu
                }
            }
            Inst::Fp { op, .. } => {
                if op.is_muldiv() {
                    if matches!(op, FpOp::Fdiv) {
                        FuClass::FpDiv
                    } else {
                        FuClass::FpMul
                    }
                } else {
                    FuClass::FpAlu
                }
            }
            Inst::Ld { .. } => FuClass::Load,
            Inst::St { .. } => FuClass::Store,
            _ => FuClass::IntAlu,
        }
    }

    /// `true` for a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Br { .. })
    }

    /// `true` for any control-flow transfer (conditional or not).
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Jmp { .. } | Inst::Jr { .. })
    }

    /// `true` for a direct unconditional jump (`Jmp`). Used by the
    /// re-convergent-point heuristic to recognise if-then-else hammocks.
    #[inline]
    pub fn is_uncond_direct(&self) -> bool {
        matches!(self, Inst::Jmp { .. })
    }

    /// Static target for direct control transfers.
    #[inline]
    pub fn static_target(&self) -> Option<u32> {
        match *self {
            Inst::Br { target, .. } | Inst::Jmp { target } => Some(target),
            _ => None,
        }
    }

    /// `true` if this is a *forward* direct branch/jump relative to `pc`.
    #[inline]
    pub fn is_forward_from(&self, pc: u32) -> bool {
        self.static_target().map(|t| t > pc).unwrap_or(false)
    }

    /// `true` for loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Ld { .. })
    }

    /// `true` for stores.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::St { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disasm(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), (-1i64) as u64);
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
        assert_eq!(AluOp::Div.eval((-12i64) as u64, 4), (-3i64) as u64);
        assert_eq!(AluOp::Div.eval(5, 0), 0, "div by zero is 0, not a trap");
        assert_eq!(AluOp::Rem.eval(7, 3), 1);
        assert_eq!(AluOp::Rem.eval(7, 0), 0);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn alu_eval_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1, "shift amounts wrap mod 64");
        assert_eq!(AluOp::Sll.eval(1, 3), 8);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn alu_eval_compares() {
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Seq.eval(5, 5), 1);
        assert_eq!(AluOp::Sne.eval(5, 5), 0);
        assert_eq!(AluOp::Sge.eval(5, 5), 1);
        assert_eq!(AluOp::Sge.eval((-5i64) as u64, 5), 0);
    }

    #[test]
    fn alu_overflow_wraps() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Mul.eval(u64::MAX, 2), u64::MAX.wrapping_mul(2));
        // i64::MIN / -1 overflows in two's complement; must not panic.
        assert_eq!(
            AluOp::Div.eval(i64::MIN as u64, (-1i64) as u64),
            (i64::MIN).wrapping_div(-1) as u64
        );
    }

    #[test]
    fn fp_eval() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Fadd.eval(a, b)), 3.5);
        assert_eq!(f64::from_bits(FpOp::Fsub.eval(a, b)), -0.5);
        assert_eq!(f64::from_bits(FpOp::Fmul.eval(a, b)), 3.0);
        assert_eq!(f64::from_bits(FpOp::Fdiv.eval(a, b)), 0.75);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval((-3i64) as u64, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(Cond::Le.eval(2, 2));
        assert!(Cond::Gt.eval(3, 2));
        assert!(!Cond::Gt.eval((-3i64) as u64, 2));
    }

    #[test]
    fn dest_r0_is_discarded() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: 0,
            rs1: 1,
            rs2: 2,
        };
        assert_eq!(i.dest(), None);
        let i = Inst::Li { rd: 5, imm: 7 };
        assert_eq!(i.dest(), Some(5));
    }

    #[test]
    fn sources_per_format() {
        let st = Inst::St {
            src: 3,
            base: 4,
            offset: 8,
        };
        assert_eq!(st.sources(), [Some(4), Some(3)]);
        assert_eq!(st.dest(), None);
        let ld = Inst::Ld {
            rd: 2,
            base: 9,
            offset: 0,
        };
        assert_eq!(ld.sources(), [Some(9), None]);
        let br = Inst::Br {
            cond: Cond::Eq,
            rs1: 1,
            rs2: 0,
            target: 3,
        };
        assert_eq!(br.sources(), [Some(1), Some(0)]);
        assert_eq!(Inst::Halt.sources(), [None, None]);
    }

    #[test]
    fn classes_and_latencies() {
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: 1,
            rs1: 2,
            rs2: 3,
        };
        assert_eq!(mul.class(), FuClass::IntMul);
        assert_eq!(mul.class().latency(), Some(2));
        let div = Inst::AluImm {
            op: AluOp::Div,
            rd: 1,
            rs1: 2,
            imm: 3,
        };
        assert_eq!(div.class(), FuClass::IntDiv);
        assert_eq!(div.class().latency(), Some(12));
        let fdiv = Inst::Fp {
            op: FpOp::Fdiv,
            rd: 1,
            rs1: 2,
            rs2: 3,
        };
        assert_eq!(fdiv.class(), FuClass::FpDiv);
        assert_eq!(fdiv.class().latency(), Some(14));
        let fmul = Inst::Fp {
            op: FpOp::Fmul,
            rd: 1,
            rs1: 2,
            rs2: 3,
        };
        assert_eq!(fmul.class().latency(), Some(4));
        let ld = Inst::Ld {
            rd: 1,
            base: 2,
            offset: 0,
        };
        assert_eq!(ld.class(), FuClass::Load);
        assert_eq!(ld.class().latency(), None);
    }

    #[test]
    fn branch_direction_helpers() {
        let fwd = Inst::Br {
            cond: Cond::Eq,
            rs1: 1,
            rs2: 2,
            target: 10,
        };
        assert!(fwd.is_forward_from(5));
        assert!(!fwd.is_forward_from(10));
        assert!(!fwd.is_forward_from(15));
        assert!(fwd.is_cond_branch());
        assert!(fwd.is_control());
        let jmp = Inst::Jmp { target: 3 };
        assert!(jmp.is_uncond_direct());
        assert!(!jmp.is_cond_branch());
        let jr = Inst::Jr { rs1: 4 };
        assert!(jr.is_control());
        assert_eq!(jr.static_target(), None);
        assert!(!jr.is_uncond_direct());
    }
}
