//! # cfir-isa
//!
//! Instruction-set architecture for the CFIR (Control-Flow Independence
//! Reuse) simulator suite: a 64-register load/store RISC ISA, close in
//! spirit to the Alpha ISA that the original paper (Pajuelo et al.,
//! IPDPS 2005) targeted through SimpleScalar.
//!
//! The crate provides:
//!
//! * [`Inst`] — the instruction type, with the operand/classification
//!   helpers every pipeline stage of the simulator needs
//!   ([`Inst::dest`], [`Inst::sources`], [`Inst::class`], ...).
//! * [`Program`] — an assembled program (instruction memory is
//!   word-indexed; `byte_pc` gives the byte PC used by predictors).
//! * [`asm`] — a textual assembler with labels, used by tests,
//!   examples and the workload generators.
//! * [`ProgramBuilder`] — a programmatic builder with label patching,
//!   used by the synthetic SpecInt-like workload generators.
//!
//! Instruction and data memories are separate (Harvard style): branch
//! targets are instruction indices, data addresses are byte addresses
//! into the 8-byte-aligned word memory of `cfir-emu`.
//!
//! ```
//! use cfir_isa::{assemble, AluOp, Cond, Inst, ProgramBuilder};
//!
//! // Text in, instructions out:
//! let p = assemble("demo", "li r1, 5\nadd r2, r1, r1\nhalt").unwrap();
//! assert_eq!(p.insts[1], Inst::Alu { op: AluOp::Add, rd: 2, rs1: 1, rs2: 1 });
//!
//! // Or build programmatically with label patching:
//! let mut b = ProgramBuilder::new("demo");
//! b.li(1, 0);
//! let top = b.label_here();
//! b.alui(AluOp::Add, 1, 1, 1);
//! b.br(Cond::Lt, 1, 2, top);
//! b.halt();
//! let p = b.finish();
//! assert!(p.validate().is_ok());
//! ```

pub mod asm;
pub mod builder;
pub mod disasm;
pub mod inst;
pub mod program;

pub use asm::{assemble, AsmError};
pub use builder::{Label, ProgramBuilder};
pub use inst::{AluOp, Cond, FpOp, FuClass, Inst, Reg};
pub use program::Program;

/// Number of architectural (logical) integer registers. Register `r0`
/// is hard-wired to zero, as in MIPS/Alpha ($31). The paper's per-branch
/// write masks are 64 bits wide — one bit per logical register.
pub const NUM_LOGICAL_REGS: usize = 64;

/// Architectural instruction size in bytes. Instruction memory is
/// word-indexed in this simulator; predictors hash `index * INST_BYTES`
/// so that their aliasing behaviour resembles a byte-addressed PC.
pub const INST_BYTES: u64 = 4;
