//! Programmatic program construction with forward-label patching.
//!
//! The synthetic workload generators build thousands of instructions;
//! doing that through text would be slow and error-prone, so this
//! builder emits [`Inst`]s directly and patches branch targets once
//! labels are bound.

use crate::inst::{AluOp, Cond, FpOp, Inst, Reg};
use crate::Program;

/// An opaque label handle created by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Patch {
    Br(usize),
    Jmp(usize),
}

/// Builder for [`Program`]s. All `br_*`/`jmp` methods accept labels that
/// may be bound later with [`ProgramBuilder::bind`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    patches: Vec<(Label, Patch)>,
}

impl ProgramBuilder {
    /// Start a new program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Current instruction index (the PC of the next emitted instruction).
    #[inline]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create a label already bound to the current position.
    pub fn label_here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Bind `label` to the current position. Panics if already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// `rd = rs1 <op> rs2`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 <op> imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 <fop> rs2`
    pub fn fp(&mut self, op: FpOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Fp { op, rd, rs1, rs2 })
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Li { rd, imm })
    }

    /// `rd = rs` (encoded as `add rd, rs, r0`)
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, 0)
    }

    /// `rd = mem[base + offset]`
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::Ld { rd, base, offset })
    }

    /// `mem[base + offset] = src`
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::St { src, base, offset })
    }

    /// Conditional branch to `target` label.
    pub fn br(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.patches.push((target, Patch::Br(self.insts.len())));
        self.emit(Inst::Br {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        })
    }

    /// Unconditional jump to `target` label.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.patches.push((target, Patch::Jmp(self.insts.len())));
        self.emit(Inst::Jmp { target: u32::MAX })
    }

    /// Indirect jump through `rs1`.
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.emit(Inst::Jr { rs1 })
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    /// Resolve all labels and produce the program.
    ///
    /// # Panics
    /// Panics on unbound labels or out-of-range targets — these are
    /// programming errors in a generator, not runtime conditions.
    pub fn finish(mut self) -> Program {
        for (label, patch) in &self.patches {
            let target = self.labels[label.0].expect("unbound label at finish()");
            match *patch {
                Patch::Br(i) => {
                    if let Inst::Br { target: t, .. } = &mut self.insts[i] {
                        *t = target;
                    } else {
                        unreachable!("patch site is not a branch")
                    }
                }
                Patch::Jmp(i) => {
                    if let Inst::Jmp { target: t } = &mut self.insts[i] {
                        *t = target;
                    } else {
                        unreachable!("patch site is not a jump")
                    }
                }
            }
        }
        let prog = Program::from_insts(self.name, self.insts);
        assert!(prog.validate().is_ok(), "builder produced invalid targets");
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop_with_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        b.li(1, 0).li(2, 10);
        let exit = b.label();
        let top = b.label_here();
        b.br(Cond::Ge, 1, 2, exit);
        b.alui(AluOp::Add, 1, 1, 1);
        b.jmp(top);
        b.bind(exit);
        b.halt();
        let p = b.finish();
        assert_eq!(
            p.insts[2],
            Inst::Br {
                cond: Cond::Ge,
                rs1: 1,
                rs2: 2,
                target: 5
            }
        );
        assert_eq!(p.insts[4], Inst::Jmp { target: 2 });
        assert!(p.validate().is_ok());
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.here(), 0);
        b.nop().nop();
        assert_eq!(b.here(), 2);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp(l);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn mov_encoding() {
        let mut b = ProgramBuilder::new("t");
        b.mov(3, 4).halt();
        let p = b.finish();
        assert_eq!(
            p.insts[0],
            Inst::Alu {
                op: AluOp::Add,
                rd: 3,
                rs1: 4,
                rs2: 0
            }
        );
    }
}
